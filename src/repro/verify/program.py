"""Static verification of compiled switch programs.

``verify_program`` runs three families of passes over a
:class:`~repro.deploy.ir.SwitchProgram` and returns a
:class:`~repro.verify.diagnostics.DiagnosticReport`:

* **structural** — every entry's match values fit the declared key
  widths (REP001/REP002/REP003), entries only reference declared key
  fields (REP004) and known actions (REP005), action parameters are
  well-typed (REP006), and key widths themselves are sane (REP007);
* **semantic** — interval/dataflow reasoning over the
  EXACT/RANGE/TERNARY/LPM lattice: shadowed entries that can never win
  a lookup (REP101), ambiguous same-priority overlaps (REP102),
  unreachable defaults (REP103), and per-feature coverage gaps
  (REP104);
* **resource pre-check** — the target-fit analysis from
  :mod:`repro.verify.resources`, run *before* deployment so budget
  misfits surface as ``REP2xx`` diagnostics instead of late failures.

Entries with structural errors are excluded from the semantic passes;
entries whose ternary masks are not interval-representable are
reported (REP105) and handled conservatively, so a semantic finding is
always sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.deploy.ir import (
    MatchActionTable,
    MatchKind,
    SwitchProgram,
    TableEntry,
)
from repro.verify.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    ProgramVerificationError,
    Severity,
    diag,
)
from repro.verify.intervals import (
    Rect,
    entry_rect,
    interval_union_gaps,
    rect_intersect,
    subtract_all,
)


@dataclass(frozen=True)
class ParamSpec:
    """One action parameter: accepted python types + requiredness."""

    types: Tuple[type, ...]
    required: bool = True


@dataclass
class ActionSpec:
    """What a data-plane action accepts."""

    name: str
    params: Dict[str, ParamSpec] = field(default_factory=dict)


#: The actions the emulated switch runtime understands.  Callers with
#: richer targets pass their own spec table to the verifier.
DEFAULT_ACTIONS: Dict[str, ActionSpec] = {
    "set_class": ActionSpec("set_class", {
        "class_id": ParamSpec((int,), required=True),
        "confidence": ParamSpec((int, float), required=False),
    }),
    "NoAction": ActionSpec("NoAction", {}),
}

#: Above this many entries the O(n^2) interval passes are skipped
#: (REP106) rather than stalling the devloop.
MAX_SEMANTIC_ENTRIES = 512


class ProgramVerifier:
    """Runs every pass family and accumulates one report."""

    def __init__(self, action_specs: Optional[Dict[str, ActionSpec]] = None,
                 resource_model=None):
        self.action_specs = dict(DEFAULT_ACTIONS if action_specs is None
                                 else action_specs)
        self.resource_model = resource_model

    def verify(self, program: SwitchProgram,
               compile_result=None) -> DiagnosticReport:
        report = DiagnosticReport(subject=program.name)
        for table in program.tables:
            clean = self._check_table_structure(program, table, report)
            self._check_table_semantics(program, table, clean, report)
        if compile_result is not None:
            from repro.verify.resources import resource_precheck
            report.extend(resource_precheck(
                compile_result, model=self.resource_model))
        return report

    # -- structural ----------------------------------------------------------

    def _check_table_structure(self, program: SwitchProgram,
                               table: MatchActionTable,
                               report: DiagnosticReport) -> List[int]:
        """Validate widths, matches, actions.  Returns the indices of
        entries with no structural problems (semantic-pass input)."""
        loc = dict(program=program.name, table=table.name)
        for name in table.key_fields:
            width = table.key_widths.get(name)
            if not isinstance(width, int) or width <= 0:
                report.add(diag(
                    "REP007",
                    f"key field {name!r} has width {width!r}",
                    field=name, **loc))
        self._check_action(table.default_action, table.default_params,
                           report, entry=None, **loc)
        clean: List[int] = []
        for index, entry in enumerate(table.entries):
            before = len(report.errors)
            for name, match in entry.matches.items():
                if name not in table.key_widths:
                    report.add(diag(
                        "REP004",
                        f"matches undeclared key field {name!r}",
                        entry=index, field=name, **loc))
                    continue
                width = table.key_widths[name]
                if not isinstance(width, int) or width <= 0:
                    continue              # REP007 already reported
                self._check_match(match, name, width, index, report, loc)
            self._check_action(entry.action, entry.params, report,
                               entry=index, **loc)
            if len(report.errors) == before:
                clean.append(index)
        return clean

    def _check_match(self, match, name: str, width: int, index: int,
                     report: DiagnosticReport, loc: Dict[str, str]) -> None:
        full_hi = (1 << width) - 1
        if match.kind is MatchKind.EXACT:
            if not 0 <= match.value <= full_hi:
                report.add(diag(
                    "REP001",
                    f"exact value {match.value} does not fit "
                    f"bit<{width}>", entry=index, field=name, **loc))
        elif match.kind is MatchKind.TERNARY:
            if not 0 <= match.value <= full_hi or \
                    not 0 <= match.mask <= full_hi:
                report.add(diag(
                    "REP001",
                    f"ternary value/mask {match.value}/{match.mask} "
                    f"does not fit bit<{width}>",
                    entry=index, field=name, **loc))
        elif match.kind is MatchKind.RANGE:
            if match.lo > match.hi:
                report.add(diag(
                    "REP002",
                    f"empty range [{match.lo}, {match.hi}]",
                    entry=index, field=name, **loc))
            elif match.lo < 0 or match.hi > full_hi:
                report.add(diag(
                    "REP002",
                    f"range [{match.lo}, {match.hi}] exceeds "
                    f"bit<{width}>", entry=index, field=name, **loc))
        elif match.kind is MatchKind.LPM:
            if not 0 <= match.prefix_len <= width:
                report.add(diag(
                    "REP003",
                    f"prefix length {match.prefix_len} outside "
                    f"[0, {width}]", entry=index, field=name, **loc))
            elif not 0 <= match.value <= full_hi:
                report.add(diag(
                    "REP001",
                    f"LPM value {match.value} does not fit bit<{width}>",
                    entry=index, field=name, **loc))

    def _check_action(self, action: str, params: Dict[str, object],
                      report: DiagnosticReport, *, entry: Optional[int],
                      program: str, table: str) -> None:
        spec = self.action_specs.get(action)
        if spec is None:
            known = ", ".join(sorted(self.action_specs))
            report.add(diag(
                "REP005",
                f"unknown action {action!r} (known: {known})",
                program=program, table=table, entry=entry))
            return
        for name, pspec in spec.params.items():
            if name not in params:
                if pspec.required:
                    report.add(diag(
                        "REP006",
                        f"action {action!r} missing required parameter "
                        f"{name!r}", program=program, table=table,
                        entry=entry, field=name))
                continue
            value = params[name]
            # bool is an int subclass but never a valid wire value here
            if isinstance(value, bool) or \
                    not isinstance(value, pspec.types):
                expected = "/".join(t.__name__ for t in pspec.types)
                report.add(diag(
                    "REP006",
                    f"action {action!r} parameter {name!r} has type "
                    f"{type(value).__name__}, expected {expected}",
                    program=program, table=table, entry=entry, field=name))
        for name in params:
            if name not in spec.params:
                report.add(diag(
                    "REP006",
                    f"action {action!r} got unexpected parameter {name!r}",
                    severity=Severity.WARNING, program=program,
                    table=table, entry=entry, field=name))

    # -- semantic ------------------------------------------------------------

    def _check_table_semantics(self, program: SwitchProgram,
                               table: MatchActionTable,
                               clean_indices: List[int],
                               report: DiagnosticReport) -> None:
        loc = dict(program=program.name, table=table.name)
        if len(clean_indices) > MAX_SEMANTIC_ENTRIES:
            report.add(diag(
                "REP106",
                f"{len(clean_indices)} entries exceed the semantic "
                f"analysis cap of {MAX_SEMANTIC_ENTRIES}", **loc))
            return
        order = list(table.key_fields)
        rects: Dict[int, Rect] = {}
        for index in clean_indices:
            rect = entry_rect(table.entries[index], order, table.key_widths)
            if rect is None:
                report.add(diag(
                    "REP105",
                    "non-prefix ternary mask excluded from interval "
                    "analysis", entry=index, **loc))
            else:
                rects[index] = rect
        self._check_shadowing(table, rects, order, report, loc)
        self._check_overlaps(table, rects, report, loc)
        self._check_default_reachability(table, rects, order, report, loc)
        self._check_coverage(table, rects, report, loc)

    def _check_shadowing(self, table, rects: Dict[int, Rect],
                         order: List[str], report, loc) -> None:
        """REP101: an entry fully covered by entries that beat it.

        Entry j beats entry i when it has strictly higher priority, or
        equal priority and an earlier position (the lookup tie-break).
        Covered means removing the entry cannot change any ``lookup``.
        """
        for i, rect in rects.items():
            entry = table.entries[i]
            cutters = [
                rects[j] for j in rects
                if j != i and (
                    table.entries[j].priority > entry.priority
                    or (table.entries[j].priority == entry.priority
                        and j < i))
            ]
            if not cutters:
                continue
            if not subtract_all([rect], cutters, order):
                report.add(diag(
                    "REP101",
                    f"entry (priority {entry.priority}, action "
                    f"{entry.action!r}) is dead: every matching input "
                    f"is claimed by a winning entry", entry=i, **loc))

    def _check_overlaps(self, table, rects: Dict[int, Rect],
                        report, loc) -> None:
        """REP102: same-priority entries whose regions intersect but
        whose outcomes differ — resolution depends on install order."""
        indices = sorted(rects)
        for a_pos, i in enumerate(indices):
            for j in indices[a_pos + 1:]:
                ea, eb = table.entries[i], table.entries[j]
                if ea.priority != eb.priority:
                    continue
                if (ea.action, ea.params) == (eb.action, eb.params):
                    continue
                if rect_intersect(rects[i], rects[j]) is not None:
                    report.add(diag(
                        "REP102",
                        f"entries {i} and {j} (priority {ea.priority}) "
                        f"overlap with different outcomes "
                        f"({ea.action!r} vs {eb.action!r})",
                        entry=i, **loc))

    def _check_default_reachability(self, table, rects: Dict[int, Rect],
                                    order: List[str], report, loc) -> None:
        if not rects or not order:
            return
        full: Rect = {
            name: (0, (1 << table.key_widths[name]) - 1)
            for name in order
            if isinstance(table.key_widths.get(name), int)
            and table.key_widths[name] > 0
        }
        if len(full) != len(order):
            return                      # widths broken; REP007 covers it
        if not subtract_all([full], list(rects.values()), order):
            report.add(diag(
                "REP103",
                f"default action {table.default_action!r} can never "
                f"fire: entries cover the whole key space", **loc))

    def _check_coverage(self, table, rects: Dict[int, Rect],
                        report, loc) -> None:
        """REP104: per-feature projection gaps.

        Warns when the table's default is ``NoAction`` (inputs in the
        gap silently fall through); informs otherwise.
        """
        if not rects:
            return
        severity = (Severity.WARNING
                    if table.default_action == "NoAction" else Severity.INFO)
        for name in table.key_fields:
            width = table.key_widths.get(name)
            if not isinstance(width, int) or width <= 0:
                continue
            gaps = interval_union_gaps(
                [rect[name] for rect in rects.values()], width)
            if gaps:
                shown = ", ".join(f"[{lo}, {hi}]" for lo, hi in gaps[:4])
                more = "" if len(gaps) <= 4 else f" (+{len(gaps) - 4} more)"
                report.add(diag(
                    "REP104",
                    f"no entry matches {name!r} in {shown}{more}",
                    severity=severity, field=name, **loc))


def verify_program(program: SwitchProgram, compile_result=None,
                   resource_model=None,
                   action_specs: Optional[Dict[str, ActionSpec]] = None
                   ) -> DiagnosticReport:
    """Convenience wrapper around :class:`ProgramVerifier`."""
    verifier = ProgramVerifier(action_specs=action_specs,
                               resource_model=resource_model)
    return verifier.verify(program, compile_result=compile_result)


def check_deployable(program: SwitchProgram, compile_result=None,
                     resource_model=None) -> DiagnosticReport:
    """Verify and raise :class:`ProgramVerificationError` on errors.

    The single gate both :mod:`repro.core.devloop` and the emulated
    switch load path call before letting a program run.
    """
    report = verify_program(program, compile_result=compile_result,
                            resource_model=resource_model)
    if not report.ok:
        raise ProgramVerificationError(report)
    return report
