"""Repo-wide static analysis: the lint engine and its rule plugins.

Grown from a single-AST-node pattern lint (PR 1) into a real static
analysis suite.  One :class:`LintEngine` run does exactly **one parse
per file** into a :class:`ParsedModule` cache; every rule family is a
plugin over that shared cache (and, for the dataflow families, over
the shared CFG/dataflow IR in :mod:`repro.verify.cfg` /
:mod:`repro.verify.dataflow`):

* **REP3xx** (:class:`PatternRules`) — the original single-node
  rules: mutable defaults, bare except, unseeded RNG, wall-clock
  reads, lambdas in task submissions.
* **REP4xx** (:class:`TaintRule`) — privacy taint flow over per-
  function CFGs with cross-module call-graph summaries
  (:mod:`repro.verify.taint`): no raw ``src_ip``/``dst_ip``/payload
  may reach an export/print sink without passing a
  :mod:`repro.privacy` sanitizer.
* **REP5xx** (:class:`ParallelRule`) — parallel-safety passes
  (:mod:`repro.verify.parallel_rules`): shipped functions must not
  mutate module globals, be closures, or use import-scope RNG/locks.

Findings can be silenced three ways, in precedence order:

1. **inline suppression** — ``# rep: ignore[REP401]`` (or a bare
   ``# rep: ignore`` for every code) on the diagnostic's line;
2. **committed baseline** — ``lint-baseline.json`` next to
   ``pyproject.toml`` maps finding fingerprints
   (``code:file:function``) to a one-line justification, for gradual
   adoption: old findings are tracked, new ones still fail CI;
3. **config exemptions** — the PR-1 ``exemptions`` list in
   ``[tool.repro.lint]`` (``"relative/path.py:REPxxx"``).

Configuration lives in ``pyproject.toml`` under ``[tool.repro.lint]``:
rule scopes, taint source/sink/sanitizer pattern sets, and the
baseline filename.  Entrypoints: ``repro verify --lint`` (CLI),
:func:`lint_package` (the tier-1 pytest gate), and
:func:`lint_package_cached` (the devloop verify stage).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.verify.diagnostics import Diagnostic, DiagnosticReport, diag

#: numpy.random attributes that are explicitly seed-disciplined.
_SEEDED_NP_ATTRS = {"default_rng", "Generator", "SeedSequence",
                    "PCG64", "Philox", "SFC64", "MT19937"}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = {"list", "dict", "set"}

#: method names that ship their arguments into worker processes.
_SUBMIT_METHODS = {"submit", "map_tasks"}

#: ``time`` module attributes that read a wall clock (REP306).
_WALLCLOCK_ATTRS = {"time", "monotonic", "perf_counter",
                    "time_ns", "monotonic_ns", "perf_counter_ns"}

#: segment-scan internals only the planner/executor layer may call
#: (REP307).  Everyone else goes through execute_query/plan_query so
#: stats pruning, predicate ordering, and EXPLAIN stay accurate.
_QUERY_INTERNALS = {"_scan_segment", "_columnar_scan", "_record_scan",
                    "_candidate_positions", "columnar_positions"}

#: list-mutation methods that bypass the store's segment lifecycle
#: when called on a segment list (REP308).  Splice assignment inside
#: the tiering layer is the sanctioned publication primitive; everyone
#: else goes through evict_segment()/the compactor so registry state,
#: tier gauges, and on-disk cold segments stay consistent.
_SEGMENT_MUTATORS = {"append", "extend", "insert", "remove", "pop",
                     "clear", "sort", "reverse"}

#: record-at-a-time constructors/materializers forbidden inside the
#: fluid engine's hot path (REP309).  The engine's whole performance
#: contract is tap-side columnar synthesis — packets exist only as
#: :class:`~repro.netsim.packets.PacketColumns` arrays; one
#: ``PacketRecord`` per packet would reintroduce the per-object cost
#: the engine exists to eliminate.
_FLUID_SCALAR_CALLS = {"PacketRecord", "synthesize_packets",
                       "iter_records", "record", "from_records"}

#: inline suppression comment: ``# rep: ignore`` or
#: ``# rep: ignore[REP401]`` / ``# rep: ignore[REP401,REP503]``.
_SUPPRESS_RE = re.compile(
    r"#\s*rep:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


# ---------------------------------------------------------------------------
# parsed-module cache
# ---------------------------------------------------------------------------

@dataclass
class ParsedModule:
    """One source file, parsed exactly once, shared by every rule."""

    rel_path: str
    source: str
    tree: ast.Module
    lines: List[str]

    def suppressions(self, line: int) -> Optional[Set[str]]:
        """Codes suppressed on ``line`` (empty set == all codes)."""
        if not (1 <= line <= len(self.lines)):
            return None
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if match is None:
            return None
        codes = match.group("codes")
        if codes is None:
            return set()
        return {c.strip() for c in codes.split(",") if c.strip()}

    def suppresses(self, line: int, code: str) -> bool:
        codes = self.suppressions(line)
        if codes is None:
            return False
        return not codes or code in codes


def parse_module(source: str, rel_path: str) -> ParsedModule:
    """The single parse chokepoint.

    Every rule consumes the :class:`ParsedModule` this returns; the
    regression suite spies on :func:`ast.parse` to pin "one parse per
    file" across the whole rule suite.
    """
    tree = ast.parse(source, filename=rel_path)
    return ParsedModule(rel_path=rel_path, source=source, tree=tree,
                        lines=source.splitlines())


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

@dataclass
class LintConfig:
    """What to lint and where each scoped rule applies.

    Paths are POSIX-style prefixes relative to the lint root (the
    package directory for :func:`lint_package`).  Taint pattern lists
    of ``None`` mean "use the built-in defaults from
    :class:`~repro.verify.taint.TaintRules`".
    """

    seeded_random_scope: List[str] = field(
        default_factory=lambda: ["netsim", "learning"])
    wallclock_scope: List[str] = field(
        default_factory=lambda: ["netsim", "capture", "deploy", "events",
                                 "testbed"])
    obs_clock_scope: List[str] = field(default_factory=lambda: ["obs"])
    #: the only modules allowed to call segment-scan internals (REP307).
    query_internal_scope: List[str] = field(
        default_factory=lambda: ["datastore/query.py",
                                 "datastore/planner.py",
                                 "parallel/kernels.py"])
    #: the only modules allowed to mutate segment lists in place
    #: (REP308); everyone else goes through evict_segment()/compaction.
    segment_mutation_scope: List[str] = field(
        default_factory=lambda: ["datastore/store.py",
                                 "datastore/tiers.py"])
    #: fluid-engine hot-path modules where per-packet record
    #: construction is forbidden (REP309) — packets must stay columnar.
    fluid_hot_scope: List[str] = field(
        default_factory=lambda: ["netsim/fluid.py"])
    exclude: List[str] = field(
        default_factory=lambda: ["__pycache__", ".egg-info"])
    #: checked-in intentional exceptions: "relative/path.py:REP303"
    #: (or "relative/path.py:*" for every rule in one file).
    exemptions: Set[str] = field(default_factory=set)

    # -- REP4xx taint configuration --
    #: path prefixes the taint pass *reports* on (None == everywhere).
    taint_scope: Optional[List[str]] = None
    #: path prefixes exempt from taint reporting (the privacy layer
    #: itself handles raw values by design).
    taint_exempt_scope: List[str] = field(
        default_factory=lambda: ["privacy"])
    taint_source_fields: Optional[List[str]] = None
    taint_source_calls: Optional[List[str]] = None
    taint_sinks: Optional[List[str]] = None
    taint_sanitizers: Optional[List[str]] = None
    #: REP403 federation boundary sinks: gateway send APIs / release
    #: envelope constructors; a tainted argument is a cross-site leak.
    taint_boundary_sinks: Optional[List[str]] = None

    #: committed findings baseline, relative to the pyproject directory.
    baseline: Optional[str] = "lint-baseline.json"
    #: directory pyproject.toml was found in (anchors the baseline).
    config_dir: Optional[Path] = None

    @classmethod
    def from_pyproject(cls, start: Path) -> "LintConfig":
        """Load ``[tool.repro.lint]`` from the nearest pyproject.toml.

        Falls back to defaults when no pyproject is found or the
        interpreter predates :mod:`tomllib`.
        """
        try:
            import tomllib
        except ImportError:
            return cls()
        start = Path(start).resolve()
        for directory in [start, *start.parents]:
            candidate = directory / "pyproject.toml"
            if candidate.is_file():
                with open(candidate, "rb") as handle:
                    data = tomllib.load(handle)
                section = data.get("tool", {}).get("repro", {}) \
                              .get("lint", {})
                config = cls(config_dir=directory)
                simple_lists = {
                    "seeded-random-scope": "seeded_random_scope",
                    "wallclock-scope": "wallclock_scope",
                    "obs-clock-scope": "obs_clock_scope",
                    "query-internal-scope": "query_internal_scope",
                    "segment-mutation-scope": "segment_mutation_scope",
                    "fluid-hot-scope": "fluid_hot_scope",
                    "exclude": "exclude",
                    "taint-scope": "taint_scope",
                    "taint-exempt-scope": "taint_exempt_scope",
                    "taint-source-fields": "taint_source_fields",
                    "taint-source-calls": "taint_source_calls",
                    "taint-sinks": "taint_sinks",
                    "taint-sanitizers": "taint_sanitizers",
                    "taint-boundary-sinks": "taint_boundary_sinks",
                }
                for key, attr in simple_lists.items():
                    if key in section:
                        setattr(config, attr, list(section[key]))
                if "exemptions" in section:
                    config.exemptions = set(section["exemptions"])
                if "baseline" in section:
                    config.baseline = section["baseline"] or None
                return config
        return cls()

    def in_scope(self, rel_path: str, scope: Sequence[str]) -> bool:
        return any(rel_path == prefix or rel_path.startswith(prefix + "/")
                   for prefix in scope)

    def exempt(self, rel_path: str, code: str) -> bool:
        return (f"{rel_path}:{code}" in self.exemptions
                or f"{rel_path}:*" in self.exemptions)

    def baseline_path(self) -> Optional[Path]:
        if self.baseline is None or self.config_dir is None:
            return None
        return self.config_dir / self.baseline

    def taint_rules(self):
        from repro.verify.taint import TaintRules

        rules = TaintRules()
        if self.taint_source_fields is not None:
            rules.source_fields = set(self.taint_source_fields)
        if self.taint_source_calls is not None:
            rules.source_calls = list(self.taint_source_calls)
        if self.taint_sinks is not None:
            rules.sinks = list(self.taint_sinks)
        if self.taint_sanitizers is not None:
            rules.sanitizers = list(self.taint_sanitizers)
        if self.taint_boundary_sinks is not None:
            rules.boundary_sinks = list(self.taint_boundary_sinks)
        return rules


# ---------------------------------------------------------------------------
# rule plugins
# ---------------------------------------------------------------------------

class LintContext:
    """Everything a rule may consume: config + the parsed-module cache.

    The cross-module :class:`~repro.verify.taint.ProjectIndex` is
    built once, lazily, and shared by the taint and parallel passes.
    """

    def __init__(self, config: LintConfig,
                 modules: Dict[str, ParsedModule]):
        self.config = config
        self.modules = modules
        self._index = None

    @property
    def index(self):
        if self._index is None:
            from repro.verify.taint import ProjectIndex

            self._index = ProjectIndex(
                {rel: pm.tree for rel, pm in self.modules.items()})
        return self._index


class _PatternVisitor(ast.NodeVisitor):
    """The REP3xx single-node rules, one AST walk per module."""

    def __init__(self, module: ParsedModule, config: LintConfig):
        self.module = module
        self.rel_path = module.rel_path
        self.config = config
        self.findings: List[Diagnostic] = []
        self._symbols: List[str] = []
        self._check_rng = config.in_scope(self.rel_path,
                                          config.seeded_random_scope)
        self._check_clock = config.in_scope(self.rel_path,
                                            config.wallclock_scope)
        self._check_obs_clock = config.in_scope(self.rel_path,
                                                config.obs_clock_scope)
        self._check_query_internals = not config.in_scope(
            self.rel_path, config.query_internal_scope)
        self._check_segment_mutation = not config.in_scope(
            self.rel_path, config.segment_mutation_scope)
        self._check_fluid_hot = config.in_scope(
            self.rel_path, config.fluid_hot_scope)

    def _report(self, code: str, message: str, line: int) -> None:
        self.findings.append(diag(
            code, message, file=self.rel_path, line=line,
            symbol=".".join(self._symbols) or None))

    # -- REP301 --------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS)
            if mutable:
                self._report(
                    "REP301",
                    f"function {node.name!r} has a mutable default "
                    f"argument", default.lineno)

    def _visit_scoped(self, node) -> None:
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    def visit_FunctionDef(self, node) -> None:
        self._check_defaults(node)
        self._visit_scoped(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._check_defaults(node)
        self._visit_scoped(node)

    def visit_ClassDef(self, node) -> None:
        self._visit_scoped(node)

    # -- REP302 --------------------------------------------------------------

    def visit_ExceptHandler(self, node) -> None:
        if node.type is None:
            self._report("REP302", "bare except swallows every exception "
                         "including KeyboardInterrupt", node.lineno)
        self.generic_visit(node)

    # -- REP303 / REP304 / REP305 / REP306 -----------------------------------

    @staticmethod
    def _attr_chain(node) -> List[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        else:
            return []
        return parts[::-1]

    @staticmethod
    def _is_segment_list(node) -> bool:
        """Does this expression denote a store's segment list (REP308)?

        Two shapes: ``<expr>.segments(...)`` (the public accessor) and
        ``<expr>._segments[...]`` (the private per-collection map).
        """
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "segments":
            return True
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Attribute) and \
                    value.attr == "_segments":
                return True
            if isinstance(value, ast.Name) and value.id == "_segments":
                return True
        return False

    def visit_Call(self, node) -> None:
        chain = self._attr_chain(node.func)
        if self._check_rng and chain:
            if chain[0] == "random" and len(chain) == 2:
                self._report(
                    "REP303",
                    f"module-level RNG call random.{chain[1]}() is "
                    f"unseeded; thread a np.random.default_rng(seed)",
                    node.lineno)
            elif chain[0] in ("np", "numpy") and len(chain) == 3 and \
                    chain[1] == "random" and \
                    chain[2] not in _SEEDED_NP_ATTRS:
                self._report(
                    "REP303",
                    f"{chain[0]}.random.{chain[2]}() uses the global "
                    f"numpy RNG; thread a np.random.default_rng(seed)",
                    node.lineno)
        if self._check_clock and chain == ["time", "time"]:
            self._report(
                "REP304",
                "wall-clock time.time() in simulator code; use the "
                "event loop's simulated clock", node.lineno)
        if self._check_obs_clock and len(chain) == 2 and \
                chain[0] == "time" and chain[1] in _WALLCLOCK_ATTRS:
            self._report(
                "REP306",
                f"direct wall-clock time.{chain[1]}() in observability "
                f"code; read the injectable clock instead", node.lineno)
        if self._check_query_internals and chain and \
                chain[-1] in _QUERY_INTERNALS:
            self._report(
                "REP307",
                f"{chain[-1]}() is a segment-scan internal; call "
                f"execute_query/plan_query so planning (stats pruning, "
                f"predicate ordering, EXPLAIN) stays in the loop",
                node.lineno)
        if self._check_segment_mutation and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SEGMENT_MUTATORS and \
                self._is_segment_list(node.func.value):
            self._report(
                "REP308",
                f".{node.func.attr}() mutates a segment list directly; "
                f"call store.evict_segment() (or leave lifecycle to the "
                f"compactor) so registry state, tier gauges, and "
                f"on-disk cold segments stay consistent",
                node.lineno)
        if self._check_fluid_hot and chain and \
                chain[-1] in _FLUID_SCALAR_CALLS:
            self._report(
                "REP309",
                f"{chain[-1]}() materializes per-packet records inside "
                f"the fluid hot path; synthesize straight into "
                f"PacketColumns.from_arrays so packets stay columnar "
                f"from tap to store",
                node.lineno)
        if len(chain) >= 2 and chain[-1] in _SUBMIT_METHODS:
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    self._report(
                        "REP305",
                        f"lambda passed to .{chain[-1]}() cannot be "
                        f"pickled into a worker process; use a "
                        f"module-level function", arg.lineno)
        self.generic_visit(node)


class PatternRules:
    """Plugin wrapper for the REP3xx per-module pattern rules."""

    codes = ("REP301", "REP302", "REP303", "REP304", "REP305", "REP306",
             "REP307", "REP308", "REP309")

    def check(self, ctx: LintContext) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for module in ctx.modules.values():
            visitor = _PatternVisitor(module, ctx.config)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
        return findings


class TaintRule:
    """Plugin wrapper for the REP4xx privacy taint analysis."""

    codes = ("REP401", "REP402", "REP403")

    def check(self, ctx: LintContext) -> List[Diagnostic]:
        from repro.verify.taint import TaintAnalysis

        analysis = TaintAnalysis(
            {rel: pm.tree for rel, pm in ctx.modules.items()},
            rules=ctx.config.taint_rules(),
            index=ctx.index,
            report_scope=ctx.config.taint_scope,
            exempt_scope=ctx.config.taint_exempt_scope,
        )
        return analysis.run()


class ParallelRule:
    """Plugin wrapper for the REP5xx parallel-safety analysis."""

    codes = ("REP501", "REP502", "REP503")

    def check(self, ctx: LintContext) -> List[Diagnostic]:
        from repro.verify.parallel_rules import ParallelSafetyAnalysis

        analysis = ParallelSafetyAnalysis(
            {rel: pm.tree for rel, pm in ctx.modules.items()},
            index=ctx.index)
        return analysis.run()


#: the default rule suite, in reporting order.
DEFAULT_RULES: Tuple = (PatternRules, TaintRule, ParallelRule)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def load_baseline(path: Optional[Path]) -> Dict[str, str]:
    """fingerprint -> justification from a committed baseline file."""
    if path is None or not Path(path).is_file():
        return {}
    data = json.loads(Path(path).read_text())
    entries = data.get("entries", [])
    return {entry["fingerprint"]: entry.get("justification", "")
            for entry in entries}


def write_baseline(diagnostics: Iterable[Diagnostic], path: Path,
                   previous: Optional[Dict[str, str]] = None) -> int:
    """Write the baseline for the given findings; returns entry count.

    Justifications from an existing baseline are preserved; new
    entries get a ``TODO`` placeholder a reviewer must replace.
    """
    previous = previous or {}
    fingerprints = sorted({d.fingerprint for d in diagnostics})
    entries = [{"fingerprint": fp,
                "justification": previous.get(
                    fp, "TODO: justify or fix")}
               for fp in fingerprints]
    payload = {
        "version": 1,
        "comment": "Committed lint findings baseline: every entry is "
                   "an intentional, justified exception. New findings "
                   "not listed here fail `repro verify --lint`.",
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class LintEngine:
    """Run the full rule suite over a set of modules, once."""

    def __init__(self, config: Optional[LintConfig] = None,
                 rules: Optional[Sequence] = None,
                 use_baseline: bool = True):
        self.config = config or LintConfig()
        self.rules = [rule() for rule in (rules or DEFAULT_RULES)]
        self.use_baseline = use_baseline

    def run_sources(self, sources: Dict[str, str],
                    subject: str = "lint") -> DiagnosticReport:
        """Lint in-memory sources: rel_path -> text."""
        report = DiagnosticReport(subject=subject)
        modules: Dict[str, ParsedModule] = {}
        for rel, source in sorted(sources.items()):
            try:
                modules[rel] = parse_module(source, rel)
            except SyntaxError as exc:
                report.add(diag("REP300", f"unparseable module: {exc}",
                                file=rel, line=exc.lineno or 0))
        ctx = LintContext(self.config, modules)

        findings: List[Diagnostic] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        findings.sort(key=lambda d: (d.location.file or "",
                                     d.location.line or 0, d.code))

        kept: List[Diagnostic] = []
        for diagnostic in findings:
            rel = diagnostic.location.file or ""
            line = diagnostic.location.line or 0
            if self.config.exempt(rel, diagnostic.code):
                continue
            module = modules.get(rel)
            if module is not None and \
                    module.suppresses(line, diagnostic.code):
                report.suppressed += 1
                continue
            kept.append(diagnostic)

        baseline = load_baseline(self.config.baseline_path()) \
            if self.use_baseline else {}
        for diagnostic in kept:
            if diagnostic.fingerprint in baseline:
                report.baselined += 1
            else:
                report.add(diagnostic)
        return report

    def run(self, root: Path, subject: Optional[str] = None
            ) -> DiagnosticReport:
        """Lint every ``*.py`` under ``root``."""
        root = Path(root)
        sources: Dict[str, str] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if any(marker in rel for marker in self.config.exclude):
                continue
            sources[rel] = path.read_text()
        return self.run_sources(sources,
                                subject=subject or f"lint:{root.name}")


# ---------------------------------------------------------------------------
# entrypoints (API-compatible with the PR-1 lint)
# ---------------------------------------------------------------------------

def lint_source(source: str, rel_path: str,
                config: Optional[LintConfig] = None) -> List[Diagnostic]:
    """Lint one module's text.  ``rel_path`` drives scoping/exemptions.

    Single-module convenience for tests and tooling: the full rule
    suite runs, but cross-module call edges obviously cannot resolve.
    """
    engine = LintEngine(config=config or LintConfig(),
                        use_baseline=False)
    report = engine.run_sources({rel_path: source}, subject=rel_path)
    return list(report.diagnostics)


def lint_path(root: Path,
              config: Optional[LintConfig] = None) -> DiagnosticReport:
    """Lint every ``*.py`` under ``root``; paths report relative to it."""
    root = Path(root)
    config = config or LintConfig.from_pyproject(root)
    return LintEngine(config=config).run(root)


def lint_package(config: Optional[LintConfig] = None) -> DiagnosticReport:
    """Lint the installed :mod:`repro` package tree (the tier-1 gate)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    return lint_path(root, config=config)


_PACKAGE_REPORT_CACHE: Optional[DiagnosticReport] = None


def lint_package_cached() -> DiagnosticReport:
    """One lint of the installed package per process.

    The devloop verify stage gates on this; caching keeps repeated
    ``develop()`` calls (cross-validation, per-class training) from
    re-analyzing an unchanged tree.
    """
    global _PACKAGE_REPORT_CACHE
    if _PACKAGE_REPORT_CACHE is None:
        _PACKAGE_REPORT_CACHE = lint_package()
    return _PACKAGE_REPORT_CACHE


def update_baseline(root: Optional[Path] = None,
                    config: Optional[LintConfig] = None) -> int:
    """Re-baseline: record every current finding as intentional.

    Returns the number of entries written.  Justifications already in
    the baseline are preserved; new entries get a TODO placeholder.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    config = config or LintConfig.from_pyproject(Path(root))
    path = config.baseline_path()
    if path is None:
        raise ValueError("no baseline path configured "
                         "([tool.repro.lint] baseline / pyproject dir)")
    engine = LintEngine(config=config, use_baseline=False)
    report = engine.run(Path(root))
    previous = load_baseline(path)
    return write_baseline(report.diagnostics, path, previous=previous)
