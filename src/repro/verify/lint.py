"""Repo-wide AST lint: project rules as ``REP3xx`` diagnostics.

Six rules, each encoding a discipline the platform depends on:

* **REP301** — no mutable default arguments (``def f(x=[])``): shared
  state across calls breaks the "fresh network per seed" contract.
* **REP302** — no bare ``except:``: swallows ``KeyboardInterrupt`` and
  hides simulator bugs behind silent recovery.
* **REP303** — no unseeded module-level RNG calls (``np.random.rand``,
  ``random.random``, ...) inside seed-disciplined packages: every
  experiment must be exactly reproducible from its seed, so randomness
  flows through explicit ``np.random.default_rng(seed)`` generators.
* **REP304** — no wall-clock ``time.time()`` inside simulator code:
  simulated time comes from the event loop, and wall-clock reads make
  runs machine-dependent.
* **REP305** — no lambdas in parallel task submissions
  (``.submit(lambda: ...)`` / ``.map_tasks(lambda ...)``): lambdas
  and closures cannot be pickled into worker processes, and closures
  are how live platform objects (an ``EventBus``, an
  ``EmulatedSwitch``) leak across the process boundary.  Tasks must
  be module-level functions taking picklable arguments (the runtime
  twin of this rule is ``ParallelExecutor.assert_shippable``).
* **REP306** — no direct wall-clock reads (``time.time()``,
  ``time.monotonic()``, ``time.perf_counter()``, or their ``_ns``
  twins) inside observability code: spans and latency histograms must
  read the injectable clock, so a ``VirtualClock`` makes traces
  exactly reproducible and two processes never mix clock domains.

Configuration lives in ``pyproject.toml`` under ``[tool.repro.lint]``
(scopes for the scoped rules, plus an explicit ``exemptions`` list of
``"relative/path.py:REPxxx"`` strings — intentional exceptions are
checked in, never silently skipped).  The lint runs as a tier-1 pytest
(``tests/verify/test_lint.py``) and via ``repro verify --lint``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.verify.diagnostics import Diagnostic, DiagnosticReport, diag

#: numpy.random attributes that are explicitly seed-disciplined.
_SEEDED_NP_ATTRS = {"default_rng", "Generator", "SeedSequence",
                    "PCG64", "Philox", "SFC64", "MT19937"}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = {"list", "dict", "set"}

#: method names that ship their arguments into worker processes.
_SUBMIT_METHODS = {"submit", "map_tasks"}

#: ``time`` module attributes that read a wall clock (REP306).
_WALLCLOCK_ATTRS = {"time", "monotonic", "perf_counter",
                    "time_ns", "monotonic_ns", "perf_counter_ns"}


@dataclass
class LintConfig:
    """What to lint and where each scoped rule applies.

    Paths are POSIX-style prefixes relative to the lint root (the
    package directory for :func:`lint_package`).
    """

    seeded_random_scope: List[str] = field(
        default_factory=lambda: ["netsim", "learning"])
    wallclock_scope: List[str] = field(
        default_factory=lambda: ["netsim", "capture", "deploy", "events",
                                 "testbed"])
    obs_clock_scope: List[str] = field(default_factory=lambda: ["obs"])
    exclude: List[str] = field(
        default_factory=lambda: ["__pycache__", ".egg-info"])
    #: checked-in intentional exceptions: "relative/path.py:REP303"
    #: (or "relative/path.py:*" for every rule in one file).
    exemptions: Set[str] = field(default_factory=set)

    @classmethod
    def from_pyproject(cls, start: Path) -> "LintConfig":
        """Load ``[tool.repro.lint]`` from the nearest pyproject.toml.

        Falls back to defaults when no pyproject is found or the
        interpreter predates :mod:`tomllib`.
        """
        try:
            import tomllib
        except ImportError:
            return cls()
        for directory in [start, *start.parents]:
            candidate = directory / "pyproject.toml"
            if candidate.is_file():
                with open(candidate, "rb") as handle:
                    data = tomllib.load(handle)
                section = data.get("tool", {}).get("repro", {}) \
                              .get("lint", {})
                config = cls()
                if "seeded-random-scope" in section:
                    config.seeded_random_scope = list(
                        section["seeded-random-scope"])
                if "wallclock-scope" in section:
                    config.wallclock_scope = list(section["wallclock-scope"])
                if "obs-clock-scope" in section:
                    config.obs_clock_scope = list(
                        section["obs-clock-scope"])
                if "exclude" in section:
                    config.exclude = list(section["exclude"])
                if "exemptions" in section:
                    config.exemptions = set(section["exemptions"])
                return config
        return cls()

    def in_scope(self, rel_path: str, scope: Sequence[str]) -> bool:
        return any(rel_path == prefix or rel_path.startswith(prefix + "/")
                   for prefix in scope)

    def exempt(self, rel_path: str, code: str) -> bool:
        return (f"{rel_path}:{code}" in self.exemptions
                or f"{rel_path}:*" in self.exemptions)


class _LintVisitor(ast.NodeVisitor):
    def __init__(self, rel_path: str, config: LintConfig):
        self.rel_path = rel_path
        self.config = config
        self.findings: List[Diagnostic] = []
        self._check_rng = config.in_scope(rel_path,
                                          config.seeded_random_scope)
        self._check_clock = config.in_scope(rel_path,
                                            config.wallclock_scope)
        self._check_obs_clock = config.in_scope(rel_path,
                                                config.obs_clock_scope)

    def _report(self, code: str, message: str, line: int) -> None:
        if not self.config.exempt(self.rel_path, code):
            self.findings.append(diag(code, message, file=self.rel_path,
                                      line=line))

    # -- REP301 --------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS)
            if mutable:
                self._report(
                    "REP301",
                    f"function {node.name!r} has a mutable default "
                    f"argument", default.lineno)

    def visit_FunctionDef(self, node) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- REP302 --------------------------------------------------------------

    def visit_ExceptHandler(self, node) -> None:
        if node.type is None:
            self._report("REP302", "bare except swallows every exception "
                         "including KeyboardInterrupt", node.lineno)
        self.generic_visit(node)

    # -- REP303 / REP304 -----------------------------------------------------

    @staticmethod
    def _attr_chain(node) -> List[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        else:
            return []
        return parts[::-1]

    def visit_Call(self, node) -> None:
        chain = self._attr_chain(node.func)
        if self._check_rng and chain:
            if chain[0] == "random" and len(chain) == 2:
                self._report(
                    "REP303",
                    f"module-level RNG call random.{chain[1]}() is "
                    f"unseeded; thread a np.random.default_rng(seed)",
                    node.lineno)
            elif chain[0] in ("np", "numpy") and len(chain) == 3 and \
                    chain[1] == "random" and \
                    chain[2] not in _SEEDED_NP_ATTRS:
                self._report(
                    "REP303",
                    f"{chain[0]}.random.{chain[2]}() uses the global "
                    f"numpy RNG; thread a np.random.default_rng(seed)",
                    node.lineno)
        if self._check_clock and chain == ["time", "time"]:
            self._report(
                "REP304",
                "wall-clock time.time() in simulator code; use the "
                "event loop's simulated clock", node.lineno)
        if self._check_obs_clock and len(chain) == 2 and \
                chain[0] == "time" and chain[1] in _WALLCLOCK_ATTRS:
            self._report(
                "REP306",
                f"direct wall-clock time.{chain[1]}() in observability "
                f"code; read the injectable clock instead", node.lineno)
        if len(chain) >= 2 and chain[-1] in _SUBMIT_METHODS:
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    self._report(
                        "REP305",
                        f"lambda passed to .{chain[-1]}() cannot be "
                        f"pickled into a worker process; use a "
                        f"module-level function", arg.lineno)
        self.generic_visit(node)


def lint_source(source: str, rel_path: str,
                config: Optional[LintConfig] = None) -> List[Diagnostic]:
    """Lint one module's text.  ``rel_path`` drives scoping/exemptions."""
    config = config or LintConfig()
    tree = ast.parse(source, filename=rel_path)
    visitor = _LintVisitor(rel_path, config)
    visitor.visit(tree)
    return visitor.findings


def lint_path(root: Path,
              config: Optional[LintConfig] = None) -> DiagnosticReport:
    """Lint every ``*.py`` under ``root``; paths report relative to it."""
    root = Path(root)
    config = config or LintConfig.from_pyproject(root)
    report = DiagnosticReport(subject=f"lint:{root.name}")
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if any(marker in rel for marker in config.exclude):
            continue
        try:
            findings = lint_source(path.read_text(), rel, config)
        except SyntaxError as exc:
            report.add(diag("REP300", f"unparseable module: {exc}",
                            file=rel, line=exc.lineno or 0))
            continue
        report.extend(findings)
    return report


def lint_package(config: Optional[LintConfig] = None) -> DiagnosticReport:
    """Lint the installed :mod:`repro` package tree (the tier-1 gate)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    return lint_path(root, config=config)
