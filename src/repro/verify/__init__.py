"""Static verification of compiled switch programs + repo-wide lint.

The trust gate between the slow development loop and the campus
network (Fig. 2): programs are verified structurally and semantically
(:mod:`repro.verify.program`), pre-checked against the target's
resources (:mod:`repro.verify.resources`), and the repository itself
is held to project AST rules (:mod:`repro.verify.lint`).  Everything
reports through the shared ``REPxxx`` diagnostics vocabulary
(:mod:`repro.verify.diagnostics`).
"""

from repro.verify.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    ProgramVerificationError,
    REP_CODES,
    Severity,
    SourceLocation,
    diag,
)
from repro.verify.program import (
    ActionSpec,
    DEFAULT_ACTIONS,
    ParamSpec,
    ProgramVerifier,
    check_deployable,
    verify_program,
)
from repro.verify.resources import resource_precheck
from repro.verify.lint import LintConfig, lint_package, lint_path

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "DiagnosticReport",
    "ProgramVerificationError",
    "REP_CODES",
    "diag",
    "ActionSpec",
    "ParamSpec",
    "DEFAULT_ACTIONS",
    "ProgramVerifier",
    "verify_program",
    "check_deployable",
    "resource_precheck",
    "LintConfig",
    "lint_path",
    "lint_package",
]
