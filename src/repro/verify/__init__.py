"""Static verification of compiled switch programs + repo-wide lint.

The trust gate between the slow development loop and the campus
network (Fig. 2): programs are verified structurally and semantically
(:mod:`repro.verify.program`), pre-checked against the target's
resources (:mod:`repro.verify.resources`), and the repository itself
is held to a static-analysis suite (:mod:`repro.verify.lint`) built
on a shared IR — per-function control-flow graphs
(:mod:`repro.verify.cfg`), a forward dataflow framework
(:mod:`repro.verify.dataflow`), privacy taint tracking
(:mod:`repro.verify.taint`) and parallel-safety passes
(:mod:`repro.verify.parallel_rules`).  Everything reports through the
shared ``REPxxx`` diagnostics vocabulary
(:mod:`repro.verify.diagnostics`).
"""

from repro.verify.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    ProgramVerificationError,
    REP_CODES,
    Severity,
    SourceLocation,
    TraceStep,
    diag,
)
from repro.verify.program import (
    ActionSpec,
    DEFAULT_ACTIONS,
    ParamSpec,
    ProgramVerifier,
    check_deployable,
    verify_program,
)
from repro.verify.resources import resource_precheck
from repro.verify.cfg import CFG, build_cfg, function_cfgs
from repro.verify.dataflow import ReachingDefinitions, solve_forward
from repro.verify.taint import ProjectIndex, TaintAnalysis, TaintRules
from repro.verify.parallel_rules import ParallelSafetyAnalysis
from repro.verify.lint import (
    LintConfig,
    LintEngine,
    lint_package,
    lint_package_cached,
    lint_path,
    lint_source,
    parse_module,
    update_baseline,
)

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "DiagnosticReport",
    "ProgramVerificationError",
    "REP_CODES",
    "diag",
    "ActionSpec",
    "ParamSpec",
    "DEFAULT_ACTIONS",
    "ProgramVerifier",
    "verify_program",
    "check_deployable",
    "resource_precheck",
    "TraceStep",
    "CFG",
    "build_cfg",
    "function_cfgs",
    "ReachingDefinitions",
    "solve_forward",
    "ProjectIndex",
    "TaintAnalysis",
    "TaintRules",
    "ParallelSafetyAnalysis",
    "LintConfig",
    "LintEngine",
    "lint_source",
    "lint_path",
    "lint_package",
    "lint_package_cached",
    "parse_module",
    "update_baseline",
]
