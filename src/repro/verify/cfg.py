"""Per-function control-flow graphs over the Python AST.

The shared IR under every dataflow pass in :mod:`repro.verify`: a
function body becomes a graph of :class:`Block` basic blocks, each a
straight-line run of statements, connected by control-flow edges.  The
builder covers the statement forms the analyses care about:

* straight-line code (``Assign``/``Expr``/``With``/...) extends the
  current block;
* ``if``/``elif``/``else`` forks to per-branch subgraphs that re-join;
* ``while``/``for`` build a header block with back edges from the body
  and exit edges to the ``else`` clause / loop exit; ``break`` and
  ``continue`` edge to the right place through a loop stack;
* ``try`` gives every statement in the body its own block with a
  may-raise edge to every handler (exceptions can occur mid-body, so
  handler entry states must join *every* prefix of the body);
  ``finally`` joins all paths;
* ``return`` / ``raise`` edge straight to the synthetic exit block.

Statements after a terminator open a fresh block with no predecessors;
:meth:`CFG.validate` reports such blocks as *unreachable* rather than
failing, so "every node reachable-or-reported" is a checkable
well-formedness invariant (the hypothesis suite leans on it).

Compound statements keep their *header* expression in the block (the
``if``/``while`` test, the ``for`` iterable) via :class:`BranchStmt`
wrappers, so transfer functions see the expressions evaluated at the
branch without re-descending into the nested bodies (those live in
their own blocks).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

__all__ = ["Block", "BranchStmt", "CFG", "build_cfg", "function_cfgs"]


@dataclass(frozen=True)
class BranchStmt:
    """Header of a compound statement, kept in its owning block.

    ``node`` is the full compound AST node; transfer functions must
    only evaluate its header expressions (``test``, ``iter``, ...) —
    the nested bodies are separate blocks.
    """

    node: ast.stmt

    @property
    def lineno(self) -> int:
        return self.node.lineno


Stmt = Union[ast.stmt, BranchStmt]


@dataclass
class Block:
    """A basic block: straight-line statements plus CFG edges."""

    id: int
    stmts: List[Stmt] = field(default_factory=list)
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)
    label: str = ""

    def first_line(self) -> Optional[int]:
        for stmt in self.stmts:
            return stmt.lineno
        return None


class CFG:
    """Control-flow graph for one function (or a module body)."""

    def __init__(self, name: str):
        self.name = name
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.entry = self._new_block("entry").id
        self.exit = self._new_block("exit").id

    def _new_block(self, label: str = "") -> Block:
        block = Block(id=self._next_id, label=label)
        self._next_id += 1
        self.blocks[block.id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.add(dst)
        self.blocks[dst].preds.add(src)

    # -- queries -------------------------------------------------------------

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs - seen)
        return seen

    def unreachable(self) -> List[int]:
        """Blocks no path from the entry reaches (dead code regions)."""
        reach = self.reachable()
        return sorted(bid for bid in self.blocks if bid not in reach)

    def rpo(self) -> List[int]:
        """Reverse postorder over reachable blocks (fixpoint ordering)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(sorted(self.blocks[bid].succs)))]
            seen.add(bid)
            while stack:
                current, succs = stack[-1]
                advanced = False
                for nxt in succs:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(
                            (nxt, iter(sorted(self.blocks[nxt].succs))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        return order[::-1]

    def validate(self) -> List[str]:
        """Well-formedness violations (empty list == well-formed).

        * edge symmetry: ``b in succs(a)`` iff ``a in preds(b)``;
        * the exit block has no successors;
        * the entry block has no predecessors;
        * every reachable non-exit block has at least one successor
          (no dangling control flow);
        * every block is reachable from the entry **or** reported by
          :meth:`unreachable` — together with the reporting contract
          this makes "reachable-or-reported" total.
        """
        problems: List[str] = []
        for block in self.blocks.values():
            for succ in block.succs:
                if succ not in self.blocks:
                    problems.append(
                        f"block {block.id} -> missing block {succ}")
                elif block.id not in self.blocks[succ].preds:
                    problems.append(
                        f"asymmetric edge {block.id} -> {succ}")
            for pred in block.preds:
                if pred not in self.blocks:
                    problems.append(
                        f"block {block.id} <- missing block {pred}")
                elif block.id not in self.blocks[pred].succs:
                    problems.append(
                        f"asymmetric edge {pred} -> {block.id} (pred side)")
        if self.blocks[self.exit].succs:
            problems.append("exit block has successors")
        if self.blocks[self.entry].preds:
            problems.append("entry block has predecessors")
        reach = self.reachable()
        dead = set(self.unreachable())
        for bid in self.blocks:
            if bid not in reach and bid not in dead:
                problems.append(f"block {bid} neither reachable nor "
                                f"reported unreachable")
        for bid in reach:
            if bid != self.exit and not self.blocks[bid].succs:
                problems.append(f"reachable block {bid} dangles "
                                f"(no successors)")
        return problems

    def render(self) -> str:
        """Debug rendering: one line per block."""
        lines = [f"cfg {self.name}"]
        for bid in sorted(self.blocks):
            block = self.blocks[bid]
            kinds = ",".join(type(getattr(s, "node", s)).__name__
                             for s in block.stmts) or "-"
            succs = ",".join(map(str, sorted(block.succs))) or "-"
            tag = f" [{block.label}]" if block.label else ""
            lines.append(f"  B{bid}{tag}: {kinds} -> {succs}")
        return "\n".join(lines)


class _Builder:
    """Single-use recursive builder; ``_loops`` is the (header, after)
    stack ``break``/``continue`` resolve against, ``_handlers`` the
    stack of active except-handler entry blocks for may-raise edges."""

    def __init__(self, name: str):
        self.cfg = CFG(name)
        self._loops: List[tuple] = []
        self._handlers: List[List[int]] = []

    def build(self, body: List[ast.stmt]) -> CFG:
        first = self.cfg._new_block("body")
        self.cfg.add_edge(self.cfg.entry, first.id)
        last = self._stmts(body, first)
        if last is not None:
            self.cfg.add_edge(last.id, self.cfg.exit)
        return self.cfg

    # Returns the open trailing block, or None when control cannot
    # fall through (every path ended in return/raise/break/continue).
    def _stmts(self, body: List[ast.stmt],
               current: Block) -> Optional[Block]:
        for stmt in body:
            if current is None:
                # dead code after a terminator: park it in a fresh
                # block with no preds; validate() reports it.
                current = self.cfg._new_block("dead")
            current = self._stmt(stmt, current)
        return current

    def _may_raise(self, block: Block) -> None:
        """Inside a try body every statement may jump to any handler."""
        for handlers in self._handlers:
            for entry in handlers:
                self.cfg.add_edge(block.id, entry)

    def _stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._loop(stmt, current, is_for=False)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt, current, is_for=True)
        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar")
                                         and isinstance(stmt, ast.TryStar)):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.stmts.append(BranchStmt(stmt))
            self._may_raise(current)
            return self._stmts(stmt.body, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.stmts.append(stmt)
            self._may_raise(current)
            self.cfg.add_edge(current.id, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self._loops:
                self.cfg.add_edge(current.id, self._loops[-1][1])
            else:
                self.cfg.add_edge(current.id, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self._loops:
                self.cfg.add_edge(current.id, self._loops[-1][0])
            else:
                self.cfg.add_edge(current.id, self.cfg.exit)
            return None
        # plain statement (incl. nested def/class, which the analyses
        # treat as an opaque binding, not control flow)
        current.stmts.append(stmt)
        if self._handlers:
            self._may_raise(current)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        current.stmts.append(BranchStmt(stmt))
        self._may_raise(current)
        join = self.cfg._new_block("if-join")

        then_entry = self.cfg._new_block("then")
        self.cfg.add_edge(current.id, then_entry.id)
        then_exit = self._stmts(stmt.body, then_entry)
        if then_exit is not None:
            self.cfg.add_edge(then_exit.id, join.id)

        if stmt.orelse:
            else_entry = self.cfg._new_block("else")
            self.cfg.add_edge(current.id, else_entry.id)
            else_exit = self._stmts(stmt.orelse, else_entry)
            if else_exit is not None:
                self.cfg.add_edge(else_exit.id, join.id)
        else:
            self.cfg.add_edge(current.id, join.id)

        if not join.preds:
            # both arms terminated: park the join as dead-and-empty?
            # No — drop it entirely so it never shows up unreachable.
            del self.cfg.blocks[join.id]
            return None
        return join

    def _loop(self, stmt, current: Block,
              is_for: bool) -> Optional[Block]:
        header = self.cfg._new_block("for-header" if is_for
                                     else "while-header")
        self.cfg.add_edge(current.id, header.id)
        header.stmts.append(BranchStmt(stmt))
        self._may_raise(header)

        after = self.cfg._new_block("loop-after")
        self._loops.append((header.id, after.id))
        body_entry = self.cfg._new_block("loop-body")
        self.cfg.add_edge(header.id, body_entry.id)
        body_exit = self._stmts(stmt.body, body_entry)
        if body_exit is not None:
            self.cfg.add_edge(body_exit.id, header.id)
        self._loops.pop()

        if stmt.orelse:
            else_entry = self.cfg._new_block("loop-else")
            self.cfg.add_edge(header.id, else_entry.id)
            else_exit = self._stmts(stmt.orelse, else_entry)
            if else_exit is not None:
                self.cfg.add_edge(else_exit.id, after.id)
        else:
            self.cfg.add_edge(header.id, after.id)
        if not after.preds:
            # e.g. `while True` with an else-less body that never
            # breaks: control cannot fall through; drop the block
            # (break statements would have edged into it).
            del self.cfg.blocks[after.id]
            return None
        return after

    def _try(self, stmt, current: Block) -> Optional[Block]:
        after = self.cfg._new_block("try-after")

        handler_entries: List[int] = []
        handler_blocks: List[Block] = []
        for handler in stmt.handlers:
            entry = self.cfg._new_block("except")
            entry.stmts.append(BranchStmt(handler))
            handler_entries.append(entry.id)
            handler_blocks.append(entry)

        body_entry = self.cfg._new_block("try-body")
        self.cfg.add_edge(current.id, body_entry.id)
        self._handlers.append(handler_entries)
        body_exit = self._stmts(stmt.body, body_entry)
        self._handlers.pop()
        # the entry itself may raise before the first statement runs
        for entry in handler_entries:
            self.cfg.add_edge(body_entry.id, entry)

        exits: List[Block] = []
        if stmt.orelse:
            if body_exit is not None:
                else_entry = self.cfg._new_block("try-else")
                self.cfg.add_edge(body_exit.id, else_entry.id)
                else_exit = self._stmts(stmt.orelse, else_entry)
                if else_exit is not None:
                    exits.append(else_exit)
        elif body_exit is not None:
            exits.append(body_exit)

        for entry_block, handler in zip(handler_blocks, stmt.handlers):
            handler_exit = self._stmts(handler.body, entry_block)
            if handler_exit is not None:
                exits.append(handler_exit)

        if stmt.finalbody:
            final_entry = self.cfg._new_block("finally")
            for block in exits:
                self.cfg.add_edge(block.id, final_entry.id)
            if not exits:
                # every path raised/returned; finally still runs on
                # the way out — approximate with an edge from entry.
                self.cfg.add_edge(current.id, final_entry.id)
            final_exit = self._stmts(stmt.finalbody, final_entry)
            if final_exit is not None:
                self.cfg.add_edge(final_exit.id, after.id)
        else:
            for block in exits:
                self.cfg.add_edge(block.id, after.id)

        if not after.preds:
            del self.cfg.blocks[after.id]
            return None
        return after

    def _match(self, stmt, current: Block) -> Optional[Block]:
        current.stmts.append(BranchStmt(stmt))
        self._may_raise(current)
        join = self.cfg._new_block("match-join")
        # no case may match: fall through
        self.cfg.add_edge(current.id, join.id)
        for case in stmt.cases:
            case_entry = self.cfg._new_block("case")
            self.cfg.add_edge(current.id, case_entry.id)
            case_exit = self._stmts(case.body, case_entry)
            if case_exit is not None:
                self.cfg.add_edge(case_exit.id, join.id)
        return join


def build_cfg(node, name: Optional[str] = None) -> CFG:
    """Build the CFG for a function def, module, or statement list."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return _Builder(name or node.name).build(node.body)
    if isinstance(node, ast.Module):
        return _Builder(name or "<module>").build(node.body)
    if isinstance(node, list):
        return _Builder(name or "<stmts>").build(node)
    raise TypeError(f"cannot build a CFG from {type(node).__name__}")


def function_cfgs(tree: ast.Module) -> Dict[str, CFG]:
    """CFGs for every function in a module, keyed by qualified name.

    Nested functions and methods get dotted names
    (``outer.inner``, ``Class.method``); each body is its own CFG.
    """
    out: Dict[str, CFG] = {}

    def walk(node, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                out[qualname] = build_cfg(child, name=qualname)
                walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    return out
