"""REP5xx parallel-safety analysis: what may cross a process boundary.

PR 4's :class:`~repro.parallel.executor.ParallelExecutor` ships tasks
into worker processes; :meth:`assert_shippable` catches unpicklable
tasks *at runtime*.  These passes state the same contract statically —
before a test run, on code paths the tier-1 suite never executes — and
add the invariants pickling alone cannot see:

* **REP501** — a shipped function (or a helper it calls, to a bounded
  depth) mutates module-level mutable state.  Each worker mutates its
  *own copy* of the module global; the parent never sees the write, so
  the code "works" and silently drops data.
* **REP502** — the shipped callable is a nested function or a
  ``functools.partial`` over one.  Closures cannot be pickled by
  qualified name; this generalizes the runtime-only REP305 (lambdas)
  to every closure form the AST can see.
* **REP503** — a module-level RNG / lock / condition object (created
  at import scope) is used inside a shipped function.  Every worker
  re-imports the module and gets an *independent* RNG stream or lock,
  breaking seed-reproducibility and providing no mutual exclusion.

Ship sites are calls to the configured ship methods
(``.submit(fn, ...)`` / ``.map_tasks(fn, ...)``) plus
``TaskGraph.add("name", fn, ...)`` — recognized by its
string-constant-then-callable argument shape so ``set.add`` stays
quiet.  Findings are reported at the ship site with a trace down to
the offending mutation/use, and resolution runs through the shared
:class:`~repro.verify.taint.ProjectIndex` so cross-module task
functions are analyzed too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.verify.dataflow import assigned_names
from repro.verify.diagnostics import Diagnostic, TraceStep, diag
from repro.verify.taint import FunctionInfo, ProjectIndex, dotted_name

__all__ = ["ParallelRules", "ParallelSafetyAnalysis"]

#: container methods that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "appendleft", "remove", "discard",
    "clear", "sort", "reverse", "__setitem__",
}

#: import-scope constructors that create per-process state (REP503).
_SYNC_FACTORIES = [
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Event", "multiprocessing.Lock", "multiprocessing.RLock",
    "random.Random", "random.SystemRandom",
    "np.random.default_rng", "numpy.random.default_rng",
]

#: constructors of module-level *mutable* containers (REP501 targets).
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.Counter",
    "collections.deque", "collections.OrderedDict",
    "defaultdict", "Counter", "deque", "OrderedDict",
}

#: how deep helper-call chains are followed from a shipped function.
_MAX_CALL_DEPTH = 3


@dataclass
class ParallelRules:
    """Which call shapes ship their argument into worker processes."""

    ship_methods: List[str] = field(
        default_factory=lambda: ["submit", "map_tasks"])
    taskgraph_add_methods: List[str] = field(
        default_factory=lambda: ["add"])


@dataclass
class _ModuleFacts:
    """Import-scope facts about one module."""

    mutable_globals: Dict[str, int] = field(default_factory=dict)
    sync_globals: Dict[str, Tuple[int, str]] = field(default_factory=dict)


def _module_facts(tree: ast.Module) -> _ModuleFacts:
    facts = _ModuleFacts()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        sync: Optional[str] = None
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee in _MUTABLE_FACTORIES:
                mutable = True
            elif callee and any(callee == f or callee.endswith("." + f)
                                for f in _SYNC_FACTORIES):
                sync = callee
        for name in names:
            if mutable:
                facts.mutable_globals[name] = node.lineno
            if sync is not None:
                facts.sync_globals[name] = (node.lineno, sync)
    return facts


def _local_bindings(fn_node) -> Set[str]:
    """Names the function binds locally (params + every assignment)."""
    bound: Set[str] = set()
    args = fn_node.args
    for group in (getattr(args, "posonlyargs", []), args.args,
                  args.kwonlyargs):
        bound.update(p.arg for p in group)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.stmt):
            bound.update(assigned_names(node))
    return bound - declared_global


@dataclass
class _ShipSite:
    rel_path: str
    symbol: str  # enclosing function qualname ("" == module scope)
    line: int
    method: str
    shipped: ast.expr


class ParallelSafetyAnalysis:
    """Whole-project REP5xx pass over the parsed-module cache."""

    def __init__(self, modules: Dict[str, ast.Module],
                 index: Optional[ProjectIndex] = None,
                 rules: Optional[ParallelRules] = None):
        self.modules = modules
        self.index = index or ProjectIndex(modules)
        self.rules = rules or ParallelRules()
        self._facts: Dict[str, _ModuleFacts] = {}

    def facts(self, rel: str) -> _ModuleFacts:
        if rel not in self._facts:
            tree = self.modules.get(rel)
            self._facts[rel] = _module_facts(tree) if tree is not None \
                else _ModuleFacts()
        return self._facts[rel]

    # -- ship-site discovery -------------------------------------------------

    def _ship_sites(self, rel: str, tree: ast.Module) -> List[_ShipSite]:
        sites: List[_ShipSite] = []
        nested_defs: List[Tuple[str, Set[str]]] = []

        def walk(node, symbol: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = f"{symbol}.{child.name}" if symbol \
                        else child.name
                    walk(child, inner)
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{symbol}.{child.name}" if symbol
                         else child.name)
                else:
                    if isinstance(child, ast.Call):
                        self._match_site(rel, symbol, child, sites)
                    walk(child, symbol)

        walk(tree, "")
        del nested_defs
        return sites

    def _match_site(self, rel: str, symbol: str, call: ast.Call,
                    sites: List[_ShipSite]) -> None:
        name = dotted_name(call.func)
        if not name or "." not in name:
            return
        method = name.rsplit(".", 1)[1]
        if method in self.rules.ship_methods and call.args:
            sites.append(_ShipSite(rel, symbol, call.lineno, method,
                                   call.args[0]))
        elif method in self.rules.taskgraph_add_methods \
                and len(call.args) >= 2 \
                and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str) \
                and self._callable_candidate(rel, call.args[1]):
            sites.append(_ShipSite(rel, symbol, call.lineno, method,
                                   call.args[1]))

    def _callable_candidate(self, rel: str, node: ast.expr) -> bool:
        """Does a ``.add()`` second argument look like a task fn?"""
        if isinstance(node, ast.Lambda):
            return True
        name = dotted_name(node)
        if name is None:
            return False
        return self.index.resolve(rel, name) is not None

    # -- per-site checks -----------------------------------------------------

    def run(self) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for rel in sorted(self.modules):
            tree = self.modules[rel]
            nested = self._nested_function_names(tree)
            for site in self._ship_sites(rel, tree):
                findings.extend(self._check_site(site, nested))
        findings.sort(key=lambda d: (d.location.file or "",
                                     d.location.line or 0, d.code))
        return findings

    def _nested_function_names(self, tree: ast.Module) -> Set[str]:
        """Names of functions defined *inside* other functions."""
        nested: Set[str] = set()

        def walk(node, inside_fn: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_fn:
                        nested.add(child.name)
                    walk(child, True)
                else:
                    walk(child, inside_fn)

        walk(tree, False)
        return nested

    def _check_site(self, site: _ShipSite,
                    nested_names: Set[str]) -> List[Diagnostic]:
        shipped = site.shipped
        # unwrap functools.partial(fn, ...): the real task is arg 0
        if isinstance(shipped, ast.Call):
            callee = dotted_name(shipped.func)
            if callee in ("partial", "functools.partial") \
                    and shipped.args:
                shipped = shipped.args[0]

        if isinstance(shipped, ast.Lambda):
            # REP305 (pattern rule) already owns bare lambdas
            return []

        name = dotted_name(shipped)
        if name is None:
            return []

        if "." not in name and name in nested_names \
                and self.index.resolve(site.rel_path, name) is None:
            return [diag(
                "REP502",
                f"{name!r} shipped via .{site.method}() is a nested "
                f"function; closures cannot be pickled into worker "
                f"processes — hoist it to module level",
                file=site.rel_path, line=site.line,
                symbol=site.symbol or "<module>",
                trace=(TraceStep(site.rel_path, site.line,
                                 f"{name!r} shipped to workers "
                                 f"via .{site.method}()"),),
            )]

        target = self.index.resolve(site.rel_path, name)
        if target is None:
            return []
        return self._check_task_function(site, name, target)

    def _check_task_function(self, site: _ShipSite, name: str,
                             target: FunctionInfo) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        ship_step = TraceStep(
            site.rel_path, site.line,
            f"{name!r} shipped to workers via .{site.method}()")

        mutation = self._find_global_mutation(target, depth=0,
                                              visited=set())
        if mutation is not None:
            global_name, steps = mutation
            findings.append(diag(
                "REP501",
                f"task function {name!r} mutates module-level state "
                f"{global_name!r}; each worker mutates its own copy "
                f"and the parent never sees the write",
                file=site.rel_path, line=site.line,
                symbol=site.symbol or "<module>",
                trace=(ship_step,) + steps,
            ))

        sync_use = self._find_sync_use(target)
        if sync_use is not None:
            global_name, line, factory = sync_use
            findings.append(diag(
                "REP503",
                f"task function {name!r} uses import-scope "
                f"{factory}() object {global_name!r}; every worker "
                f"re-imports its own instance, so it synchronizes "
                f"nothing and breaks seed-reproducibility",
                file=site.rel_path, line=site.line,
                symbol=site.symbol or "<module>",
                trace=(ship_step,
                       TraceStep(target.rel_path, line,
                                 f"{global_name!r} used inside "
                                 f"{target.qualname}()")),
            ))
        return findings

    def _find_global_mutation(
            self, info: FunctionInfo, depth: int,
            visited: Set[Tuple[str, str]]
    ) -> Optional[Tuple[str, Tuple[TraceStep, ...]]]:
        key = (info.rel_path, info.qualname)
        if key in visited or depth > _MAX_CALL_DEPTH:
            return None
        visited.add(key)
        facts = self.facts(info.rel_path)
        local = _local_bindings(info.node)
        declared_global: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def is_module_global(target_name: str) -> bool:
            if target_name in declared_global:
                return True
            return target_name in facts.mutable_globals \
                and target_name not in local

        for node in ast.walk(info.node):
            # rebinding through `global X`
            if isinstance(node, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id in declared_global:
                        return (target.id, (TraceStep(
                            info.rel_path, node.lineno,
                            f"rebinds module global {target.id!r} "
                            f"inside {info.qualname}()"),))
                    if isinstance(target, ast.Subscript):
                        base = target.value
                        if isinstance(base, ast.Name) \
                                and is_module_global(base.id):
                            return (base.id, (TraceStep(
                                info.rel_path, node.lineno,
                                f"item-assigns module-level "
                                f"{base.id!r} inside "
                                f"{info.qualname}()"),))
            # in-place mutator methods on module-level containers
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS:
                base = node.func.value
                if isinstance(base, ast.Name) \
                        and is_module_global(base.id):
                    return (base.id, (TraceStep(
                        info.rel_path, node.lineno,
                        f".{node.func.attr}() on module-level "
                        f"{base.id!r} inside {info.qualname}()"),))

        # follow direct helper calls, bounded
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                callee_name = dotted_name(node.func)
                if not callee_name:
                    continue
                callee = self.index.resolve(info.rel_path, callee_name)
                if callee is None:
                    continue
                found = self._find_global_mutation(callee, depth + 1,
                                                   visited)
                if found is not None:
                    global_name, steps = found
                    call_step = TraceStep(
                        info.rel_path, node.lineno,
                        f"{info.qualname}() calls {callee_name}()")
                    return (global_name, (call_step,) + steps)
        return None

    def _find_sync_use(self, info: FunctionInfo
                       ) -> Optional[Tuple[str, int, str]]:
        facts = self.facts(info.rel_path)
        if not facts.sync_globals:
            return None
        local = _local_bindings(info.node)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id in facts.sync_globals \
                    and node.id not in local:
                line, factory = facts.sync_globals[node.id]
                return (node.id, node.lineno, factory)
        return None
