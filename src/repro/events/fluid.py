"""Fluid-engine overlays for labeled events.

The discrete generators in this package schedule per-flow callbacks on
a :class:`~repro.netsim.network.CampusNetwork`.  At fluid scale there
is no per-flow scheduler, so each event becomes a
:class:`~repro.netsim.fluid.FluidOverlay`: a labeled Poisson flow
process with fixed endpoints superimposed on the cohort baseline and
expanded through the same tap-side columnar synthesis.  Ground truth
is registered exactly as for the discrete generators — the same
:class:`~repro.events.base.EventWindow` records, the same
:class:`~repro.events.base.GroundTruth` registry — so detectors and
evaluation code cannot tell which engine produced the day.

The shapes mirror the discrete generators, not each other: DNS
amplification is inbound UDP/53 with an extreme forward byte ratio,
the port scan is one external source probing many campus addresses
with tiny SYN flows, exfiltration is one compromised host trickling
large outbound chunks to a single drop point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.events.base import EventWindow, GroundTruth
from repro.events.scan import COMMON_PORTS
from repro.netsim.fluid import (CAMPUS_BASE_U32, INTERNET_BASE_U32,
                                FluidOverlay, FluidTrafficEngine)
from repro.netsim.packets import Protocol, u32_to_ip

GBPS = 1_000_000_000.0


def _register(ground_truth: GroundTruth, kind: str, label: str,
              start_time: float, duration: float, victims, actors,
              **details) -> EventWindow:
    return ground_truth.add(EventWindow(
        kind=kind, label=label, start_time=start_time,
        end_time=start_time + duration,
        victims=[u32_to_ip(int(v)) for v in victims],
        actors=[u32_to_ip(int(a)) for a in actors],
        details=details))


def fluid_dns_amplification(engine: FluidTrafficEngine,
                            ground_truth: GroundTruth, start_time: float,
                            duration: float, seed: Optional[int] = None,
                            resolvers: int = 12, attack_gbps: float = 2.0,
                            burst_seconds: float = 1.0,
                            amplification: float = 40.0) -> EventWindow:
    """Spoofed-source DNS reflection against one campus user."""
    rng = np.random.default_rng(seed)
    config = engine.config
    victim = np.uint32(
        CAMPUS_BASE_U32 + int(rng.integers(0, config.n_users)))
    resolver_ips = (INTERNET_BASE_U32 + rng.choice(
        config.internet_hosts, size=min(resolvers, config.internet_hosts),
        replace=False)).astype(np.uint32)
    # One reflection flow per resolver per burst, each carrying the
    # per-resolver share of the burst volume — the discrete generator's
    # rate, expressed as a Poisson intensity.
    flows_per_second = len(resolver_ips) / burst_seconds
    bytes_per_flow = (attack_gbps * GBPS / 8.0 * burst_seconds
                      / max(len(resolver_ips), 1))
    fwd_fraction = amplification / (amplification + 1.0)
    engine.add_overlay(FluidOverlay(
        label="ddos-dns-amp", app="dns",
        start_time=start_time, end_time=start_time + duration,
        flows_per_second=flows_per_second,
        size_sampler=lambda r, n: np.full(int(n), bytes_per_flow),
        src_ips=resolver_ips, dst_ips=np.array([victim], dtype=np.uint32),
        protocol=int(Protocol.UDP), fwd_fraction=fwd_fraction,
        src_port=53,
        dst_ports=tuple(int(p) for p in rng.integers(1024, 65535, 64)),
        src_internal=False,
        flow_rate_bps=bytes_per_flow * 8.0 / burst_seconds,
        ttl=56))
    return _register(ground_truth, "ddos", "ddos-dns-amp", start_time,
                     duration, victims=[victim], actors=resolver_ips,
                     attack_gbps=attack_gbps, amplification=amplification)


def fluid_port_scan(engine: FluidTrafficEngine, ground_truth: GroundTruth,
                    start_time: float, duration: float,
                    seed: Optional[int] = None,
                    probes_per_s: float = 50.0,
                    targets: int = 256) -> EventWindow:
    """One external scanner probing many campus addresses."""
    rng = np.random.default_rng(seed)
    config = engine.config
    scanner = np.uint32(
        INTERNET_BASE_U32 + int(rng.integers(0, config.internet_hosts)))
    target_ips = (CAMPUS_BASE_U32 + rng.choice(
        config.n_users, size=min(targets, config.n_users),
        replace=False)).astype(np.uint32)
    engine.add_overlay(FluidOverlay(
        label="port-scan", app="scan",
        start_time=start_time, end_time=start_time + duration,
        flows_per_second=probes_per_s,
        size_sampler=lambda r, n: np.full(int(n), 44.0),
        src_ips=np.array([scanner], dtype=np.uint32),
        dst_ips=target_ips,
        protocol=int(Protocol.TCP), fwd_fraction=0.9,
        dst_ports=tuple(COMMON_PORTS), src_internal=False,
        flow_rate_bps=44.0 * 8.0 / 0.01,   # probe lasts ~10 ms
        ttl=52))
    return _register(ground_truth, "scan", "port-scan", start_time,
                     duration, victims=target_ips, actors=[scanner],
                     probes_per_s=probes_per_s)


def fluid_exfiltration(engine: FluidTrafficEngine,
                       ground_truth: GroundTruth, start_time: float,
                       duration: float, seed: Optional[int] = None,
                       total_bytes: float = 200e6,
                       chunk_interval_s: float = 10.0) -> EventWindow:
    """Low-and-slow upload from one compromised host to a drop point."""
    rng = np.random.default_rng(seed)
    config = engine.config
    compromised = np.uint32(
        CAMPUS_BASE_U32 + int(rng.integers(0, config.n_users)))
    drop_point = np.uint32(
        INTERNET_BASE_U32 + int(rng.integers(0, config.internet_hosts)))
    n_chunks = max(int(duration / chunk_interval_s), 1)
    chunk_bytes = total_bytes / n_chunks
    engine.add_overlay(FluidOverlay(
        label="exfiltration", app="https",
        start_time=start_time, end_time=start_time + duration,
        flows_per_second=1.0 / chunk_interval_s,
        size_sampler=lambda r, n: chunk_bytes * r.uniform(
            0.7, 1.3, size=int(n)),
        src_ips=np.array([compromised], dtype=np.uint32),
        dst_ips=np.array([drop_point], dtype=np.uint32),
        protocol=int(Protocol.TCP), fwd_fraction=0.97,
        dst_ports=(443,), src_internal=True,
        flow_rate_bps=5e6, ttl=64))
    return _register(ground_truth, "exfil", "exfiltration", start_time,
                     duration, victims=[compromised], actors=[drop_point],
                     total_bytes=total_bytes)


#: kind -> builder, the fluid counterpart of the CLI's --attack choices.
FLUID_EVENTS = {
    "ddos": fluid_dns_amplification,
    "scan": fluid_port_scan,
    "exfil": fluid_exfiltration,
}


def add_fluid_event(engine: FluidTrafficEngine, ground_truth: GroundTruth,
                    kind: str, start_time: float, duration: float,
                    seed: Optional[int] = None) -> EventWindow:
    """Attach one named event overlay; raises KeyError on unknown kind."""
    try:
        builder = FLUID_EVENTS[kind]
    except KeyError:
        known = ", ".join(sorted(FLUID_EVENTS))
        raise KeyError(f"unknown fluid event {kind!r}; one of: {known}")
    return builder(engine, ground_truth, start_time, duration, seed=seed)
