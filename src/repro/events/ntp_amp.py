"""NTP 'monlist' amplification — a *variant* the detector didn't train on.

Same reflection mechanics as DNS amplification but on UDP/123 with a
different (larger) amplification factor and no DNS payload signature.
Its role in the experiment suite is drift: a detector trained only on
DNS amplification days partially misses NTP days, and continual
retraining from the data store (the §6 Puffer idea) recovers it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol
from repro.netsim.traffic.payloads import ntp_payload

GBPS = 1_000_000_000


class NtpAmplificationAttack(EventGenerator):
    """Spoofed-source NTP monlist reflection against one campus host."""

    kind = "ddos"
    label = "ddos-ntp-amp"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 victim: Optional[str] = None, reflectors: int = 10,
                 attack_gbps: float = 1.5, burst_seconds: float = 1.0,
                 amplification: float = 200.0):
        super().__init__(network, ground_truth, seed)
        topo = network.topology
        self.victim = victim or str(self.rng.choice(topo.hosts))
        pool = topo.internet_hosts
        if reflectors > len(pool):
            reflectors = len(pool)
        chosen = self.rng.choice(len(pool), size=reflectors, replace=False)
        self.reflectors: List[str] = [pool[i] for i in chosen]
        self.attack_gbps = float(attack_gbps)
        self.burst_seconds = float(burst_seconds)
        self.amplification = float(amplification)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        victim_ip = network.topology.ip(self.victim)
        window = self._register(
            start_time, duration,
            victims=[victim_ip],
            actors=[network.topology.ip(r) for r in self.reflectors],
            attack_gbps=self.attack_gbps,
            amplification=self.amplification,
            vector="ntp-monlist",
        )
        bytes_per_burst = self.attack_gbps * GBPS / 8.0 * self.burst_seconds
        per_reflector = bytes_per_burst / max(len(self.reflectors), 1)
        n_bursts = max(int(duration / self.burst_seconds), 1)

        def launch_burst(index: int) -> None:
            if network.now >= window.end_time:
                return
            fwd_fraction = self.amplification / (self.amplification + 1.0)
            for reflector in self.reflectors:
                flow = network.make_flow(
                    src_node=reflector,
                    dst_node=self.victim,
                    size_bytes=per_reflector,
                    app="ntp",
                    label=self.label,
                    protocol=int(Protocol.UDP),
                    dst_port=int(self.rng.integers(1024, 65535)),
                    src_port=123,
                    fwd_fraction=fwd_fraction,
                    payload_fn=ntp_payload,
                    ttl=int(self.rng.integers(48, 64)),
                )
                network.inject_flow(flow)
            if index + 1 < n_bursts:
                network.simulator.schedule_at(
                    start_time + (index + 1) * self.burst_seconds,
                    lambda: launch_burst(index + 1),
                    name="ntp-burst",
                )

        network.simulator.schedule_at(
            start_time, lambda: launch_burst(0), name="ntp-start"
        )
        return window
