"""Labeled network-event generators.

The paper's core example automation task is detecting and mitigating a
DNS-amplification DDoS attack (§2); the data store's value comes from
labeled ground truth (§3).  This subpackage injects *labeled* events
into a running :class:`~repro.netsim.network.CampusNetwork`:

* security events — DNS amplification, SYN flood, port scan, SSH brute
  force, data exfiltration;
* performance incidents — link congestion, link flap, degraded links
  (e.g. duplex mismatch), misconfigured rate limits.

Every generator stamps its flows with a ``label`` and registers a
ground-truth :class:`EventWindow` so that evaluation never depends on
the detectors under test.
"""

from repro.events.base import EventGenerator, EventWindow, GroundTruth
from repro.events.ddos import DnsAmplificationAttack
from repro.events.ntp_amp import NtpAmplificationAttack
from repro.events.synflood import SynFloodAttack
from repro.events.scan import PortScanAttack
from repro.events.bruteforce import SshBruteForceAttack
from repro.events.exfil import DataExfiltration
from repro.events.performance import LinkCongestionIncident, LinkFlapIncident, \
    LinkDegradationIncident
from repro.events.scenario import Scenario, ScenarioStep, run_scenario
from repro.events.library import SCENARIO_LIBRARY, make_scenario
from repro.events.fluid import (FLUID_EVENTS, add_fluid_event,
                                fluid_dns_amplification,
                                fluid_exfiltration, fluid_port_scan)

__all__ = [
    "EventGenerator",
    "EventWindow",
    "GroundTruth",
    "DnsAmplificationAttack",
    "NtpAmplificationAttack",
    "SynFloodAttack",
    "PortScanAttack",
    "SshBruteForceAttack",
    "DataExfiltration",
    "LinkCongestionIncident",
    "LinkFlapIncident",
    "LinkDegradationIncident",
    "Scenario",
    "ScenarioStep",
    "run_scenario",
    "SCENARIO_LIBRARY",
    "make_scenario",
    "FLUID_EVENTS",
    "add_fluid_event",
    "fluid_dns_amplification",
    "fluid_port_scan",
    "fluid_exfiltration",
]
