"""Ground-truth bookkeeping shared by all event generators."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class EventWindow:
    """Ground truth for one network event.

    ``victims`` / ``actors`` hold the IPs involved, so evaluation can
    attribute per-flow and per-source labels without consulting the
    detectors under test.
    """

    kind: str
    label: str
    start_time: float
    end_time: float
    victims: List[str] = field(default_factory=list)
    actors: List[str] = field(default_factory=list)
    details: Dict = field(default_factory=dict)

    def contains(self, timestamp: float) -> bool:
        return self.start_time <= timestamp <= self.end_time

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class GroundTruth:
    """Registry of every event injected into a simulation run."""

    def __init__(self):
        self.windows: List[EventWindow] = []

    def add(self, window: EventWindow) -> EventWindow:
        self.windows.append(window)
        return window

    def active_at(self, timestamp: float) -> List[EventWindow]:
        return [w for w in self.windows if w.contains(timestamp)]

    def windows_of_kind(self, kind: str) -> List[EventWindow]:
        return [w for w in self.windows if w.kind == kind]

    def label_for(self, timestamp: float, src_ip: str, dst_ip: str) -> str:
        """Ground-truth label for a packet/flow, 'benign' if no event."""
        for window in self.windows:
            if not window.contains(timestamp):
                continue
            involved = set(window.actors) | set(window.victims)
            if src_ip in involved or dst_ip in involved:
                return window.label
        return "benign"


class EventGenerator(abc.ABC):
    """Base class: schedules labeled flows/incidents onto a network."""

    #: event kind recorded in ground truth windows
    kind: str = "event"
    #: label stamped on malicious/affected flows
    label: str = "event"

    def __init__(self, network, ground_truth: GroundTruth,
                 seed: Optional[int] = None):
        self.network = network
        self.ground_truth = ground_truth
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def schedule(self, start_time: float, duration: float) -> EventWindow:
        """Arrange for the event to occur during the given window."""

    def _register(self, start_time: float, duration: float,
                  victims: List[str], actors: List[str],
                  **details) -> EventWindow:
        window = EventWindow(
            kind=self.kind,
            label=self.label,
            start_time=start_time,
            end_time=start_time + duration,
            victims=victims,
            actors=actors,
            details=details,
        )
        return self.ground_truth.add(window)
