"""SSH brute-force against campus servers.

Repeated short SSH sessions from one external source to one or a few
servers: each attempt is a small, roughly symmetric TCP/22 flow that
terminates quickly (failed auth).  Server logs (see
:mod:`repro.capture.sensors`) record the matching ``auth-fail`` lines —
the complementary data source the paper's data store links to packets.
"""

from __future__ import annotations

from typing import Optional

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol
from repro.netsim.traffic.payloads import ssh_payload


class SshBruteForceAttack(EventGenerator):
    """Password-guessing loop over SSH."""

    kind = "bruteforce"
    label = "ssh-bruteforce"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 attacker: Optional[str] = None, target: Optional[str] = None,
                 attempts_per_s: float = 5.0):
        super().__init__(network, ground_truth, seed)
        topo = network.topology
        self.attacker = attacker or str(self.rng.choice(topo.internet_hosts))
        servers = topo.servers or topo.hosts
        self.target = target or str(self.rng.choice(servers))
        self.attempts_per_s = float(attempts_per_s)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        attacker_ip = network.topology.ip(self.attacker)
        target_ip = network.topology.ip(self.target)
        window = self._register(
            start_time, duration,
            victims=[target_ip],
            actors=[attacker_ip],
            attempts_per_s=self.attempts_per_s,
        )
        interval = 1.0 / self.attempts_per_s
        n_attempts = int(duration * self.attempts_per_s)

        def attempt(index: int) -> None:
            if network.now >= window.end_time:
                return
            flow = network.make_flow(
                src_node=self.attacker,
                dst_node=self.target,
                size_bytes=float(self.rng.integers(1800, 3600)),
                app="ssh",
                label=self.label,
                protocol=int(Protocol.TCP),
                dst_port=22,
                fwd_fraction=0.5,
                payload_fn=ssh_payload,
            )
            network.inject_flow(flow)
            if index + 1 < n_attempts:
                network.simulator.schedule_at(
                    start_time + (index + 1) * interval,
                    lambda: attempt(index + 1),
                    name="brute-attempt",
                )

        network.simulator.schedule_at(
            start_time, lambda: attempt(0), name="brute-start"
        )
        return window
