"""SYN flood against a campus server.

Many half-open connection attempts from spoofed sources: lots of tiny
TCP flows (one SYN, no payload to speak of, no completion handshake)
toward one destination port of one server.
"""

from __future__ import annotations

from typing import Optional

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol


class SynFloodAttack(EventGenerator):
    """High-rate half-open TCP connections toward one server port."""

    kind = "synflood"
    label = "syn-flood"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 victim: Optional[str] = None, dst_port: int = 443,
                 syn_rate_per_s: float = 2000.0, spoofed_sources: int = 200):
        super().__init__(network, ground_truth, seed)
        topo = network.topology
        servers = topo.servers or topo.hosts
        self.victim = victim or str(self.rng.choice(servers))
        self.dst_port = int(dst_port)
        self.syn_rate_per_s = float(syn_rate_per_s)
        self.spoofed_sources = int(spoofed_sources)
        self.origin = str(self.rng.choice(topo.internet_hosts))

    def _spoofed_ip(self) -> str:
        octets = self.rng.integers(1, 255, size=4)
        octets[0] = 20 + int(octets[0]) % 160
        return ".".join(str(int(o)) for o in octets)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        victim_ip = network.topology.ip(self.victim)
        window = self._register(
            start_time, duration,
            victims=[victim_ip],
            actors=[network.topology.ip(self.origin)],
            syn_rate_per_s=self.syn_rate_per_s,
            dst_port=self.dst_port,
        )
        # Batch SYNs into 100ms volleys to bound event count.
        volley_interval = 0.1
        syns_per_volley = max(int(self.syn_rate_per_s * volley_interval), 1)
        n_volleys = max(int(duration / volley_interval), 1)
        spoofed_pool = [self._spoofed_ip() for _ in range(self.spoofed_sources)]

        def launch_volley(index: int) -> None:
            if network.now >= window.end_time:
                return
            # One fluid flow stands in for the volley: `syns_per_volley`
            # 40-byte SYN packets with spoofed sources.
            src_ip = spoofed_pool[int(self.rng.integers(len(spoofed_pool)))]
            flow = network.make_flow(
                src_node=self.origin,
                dst_node=self.victim,
                size_bytes=40.0 * syns_per_volley,
                app="synflood",
                label=self.label,
                protocol=int(Protocol.TCP),
                dst_port=self.dst_port,
                src_port=int(self.rng.integers(1024, 65535)),
                fwd_fraction=1.0,
                src_ip=src_ip,
                ttl=int(self.rng.integers(32, 64)),
            )
            network.inject_flow(flow)
            if index + 1 < n_volleys:
                network.simulator.schedule_at(
                    start_time + (index + 1) * volley_interval,
                    lambda: launch_volley(index + 1),
                    name="syn-volley",
                )

        network.simulator.schedule_at(
            start_time, lambda: launch_volley(0), name="synflood-start"
        )
        return window
