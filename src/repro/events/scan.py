"""Horizontal port/host scanning from an external source.

A scanner probes many campus addresses on a set of well-known ports;
each probe is a tiny flow.  On the tap this shows as one external
source touching an anomalous number of distinct internal destinations.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol

COMMON_PORTS = [22, 23, 80, 443, 445, 3389, 8080, 3306, 5432, 6379]


class PortScanAttack(EventGenerator):
    """Sequential SYN scan across campus hosts and common ports."""

    kind = "scan"
    label = "port-scan"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 scanner: Optional[str] = None, probes_per_s: float = 50.0,
                 ports: Optional[List[int]] = None):
        super().__init__(network, ground_truth, seed)
        topo = network.topology
        self.scanner = scanner or str(self.rng.choice(topo.internet_hosts))
        self.probes_per_s = float(probes_per_s)
        self.ports = list(ports) if ports else list(COMMON_PORTS)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        targets = list(network.topology.hosts) + list(network.topology.servers)
        scanner_ip = network.topology.ip(self.scanner)
        window = self._register(
            start_time, duration,
            victims=[network.topology.ip(t) for t in targets],
            actors=[scanner_ip],
            probes_per_s=self.probes_per_s,
        )
        interval = 1.0 / self.probes_per_s
        n_probes = int(duration * self.probes_per_s)

        def probe(index: int) -> None:
            if network.now >= window.end_time:
                return
            target = targets[index % len(targets)]
            port = self.ports[(index // len(targets)) % len(self.ports)]
            flow = network.make_flow(
                src_node=self.scanner,
                dst_node=target,
                size_bytes=44.0,
                app="scan",
                label=self.label,
                protocol=int(Protocol.TCP),
                dst_port=port,
                fwd_fraction=0.9,
                ttl=int(self.rng.integers(40, 64)),
            )
            network.inject_flow(flow)
            if index + 1 < n_probes:
                network.simulator.schedule_at(
                    start_time + (index + 1) * interval,
                    lambda: probe(index + 1),
                    name="scan-probe",
                )

        network.simulator.schedule_at(
            start_time, lambda: probe(0), name="scan-start"
        )
        return window
