"""Slow data exfiltration from a compromised campus host.

A compromised host trickles a large volume outward to a single external
endpoint over an extended period — low and slow, designed to hide under
per-interval volume thresholds.  The interesting evaluation property is
that window-based detectors need longer horizons to see it.
"""

from __future__ import annotations

from typing import Optional

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol
from repro.netsim.traffic.payloads import opaque_payload


class DataExfiltration(EventGenerator):
    """Periodic modest-size uploads to one external drop point."""

    kind = "exfil"
    label = "exfiltration"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 compromised: Optional[str] = None,
                 drop_point: Optional[str] = None,
                 total_bytes: float = 200e6, chunk_interval_s: float = 10.0):
        super().__init__(network, ground_truth, seed)
        topo = network.topology
        self.compromised = compromised or str(self.rng.choice(topo.hosts))
        self.drop_point = drop_point or str(self.rng.choice(topo.internet_hosts))
        self.total_bytes = float(total_bytes)
        self.chunk_interval_s = float(chunk_interval_s)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        src_ip = network.topology.ip(self.compromised)
        dst_ip = network.topology.ip(self.drop_point)
        window = self._register(
            start_time, duration,
            victims=[src_ip],
            actors=[dst_ip],
            total_bytes=self.total_bytes,
        )
        n_chunks = max(int(duration / self.chunk_interval_s), 1)
        chunk_bytes = self.total_bytes / n_chunks

        def send_chunk(index: int) -> None:
            if network.now >= window.end_time:
                return
            flow = network.make_flow(
                src_node=self.compromised,
                dst_node=self.drop_point,
                size_bytes=chunk_bytes * float(self.rng.uniform(0.7, 1.3)),
                app="https",
                label=self.label,
                protocol=int(Protocol.TCP),
                dst_port=443,
                fwd_fraction=0.97,
                payload_fn=opaque_payload,
            )
            network.inject_flow(flow)
            if index + 1 < n_chunks:
                network.simulator.schedule_at(
                    start_time + (index + 1) * self.chunk_interval_s,
                    lambda: send_chunk(index + 1),
                    name="exfil-chunk",
                )

        network.simulator.schedule_at(
            start_time, lambda: send_chunk(0), name="exfil-start"
        )
        return window
