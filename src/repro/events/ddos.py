"""DNS amplification DDoS — the paper's running example (§2).

Reflection attack shape: the attacker spoofs the victim's address in
tiny ANY queries sent to many open resolvers; the resolvers send large
responses to the victim.  On the border tap this appears as a storm of
inbound UDP/53 flows from many distinct resolver IPs toward one campus
host, with an extreme response/request byte ratio.

The generator injects many short spoofed "reflection" flows from
Internet resolver nodes toward the victim, each with a tiny forward
(query) component and a large reverse... — on the wire the resolver is
the *source* of the big responses, so each reflection flow is modeled
as resolver -> victim with a large forward fraction and ``src_internal
= False``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol
from repro.netsim.traffic.payloads import dns_amplification_payload

GBPS = 1_000_000_000


class DnsAmplificationAttack(EventGenerator):
    """Spoofed-source DNS reflection against one campus host."""

    kind = "ddos"
    label = "ddos-dns-amp"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 victim: Optional[str] = None, resolvers: int = 12,
                 attack_gbps: float = 2.0, burst_seconds: float = 1.0,
                 amplification: float = 40.0):
        super().__init__(network, ground_truth, seed)
        topo = network.topology
        self.victim = victim or str(self.rng.choice(topo.hosts))
        pool = topo.internet_hosts
        if resolvers > len(pool):
            resolvers = len(pool)
        chosen = self.rng.choice(len(pool), size=resolvers, replace=False)
        self.resolvers: List[str] = [pool[i] for i in chosen]
        self.attack_gbps = float(attack_gbps)
        self.burst_seconds = float(burst_seconds)
        self.amplification = float(amplification)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        victim_ip = network.topology.ip(self.victim)
        resolver_ips = [network.topology.ip(r) for r in self.resolvers]
        window = self._register(
            start_time, duration,
            victims=[victim_ip],
            actors=resolver_ips,
            attack_gbps=self.attack_gbps,
            amplification=self.amplification,
        )

        bytes_per_burst_total = self.attack_gbps * GBPS / 8.0 * self.burst_seconds
        bytes_per_resolver = bytes_per_burst_total / max(len(self.resolvers), 1)
        n_bursts = max(int(duration / self.burst_seconds), 1)

        def launch_burst(burst_index: int) -> None:
            if network.now >= window.end_time:
                return
            for resolver in self.resolvers:
                # Response bytes dominate; the spoofed query is the
                # reverse direction (victim never sent it, but on the
                # wire the ratio is what matters).
                fwd_fraction = self.amplification / (self.amplification + 1.0)
                flow = network.make_flow(
                    src_node=resolver,
                    dst_node=self.victim,
                    size_bytes=bytes_per_resolver,
                    app="dns",
                    label=self.label,
                    protocol=int(Protocol.UDP),
                    dst_port=int(self.rng.integers(1024, 65535)),
                    src_port=53,
                    fwd_fraction=fwd_fraction,
                    payload_fn=dns_amplification_payload,
                    ttl=int(self.rng.integers(48, 64)),
                )
                network.inject_flow(flow)
            if burst_index + 1 < n_bursts:
                network.simulator.schedule_at(
                    start_time + (burst_index + 1) * self.burst_seconds,
                    lambda: launch_burst(burst_index + 1),
                    name="ddos-burst",
                )

        network.simulator.schedule_at(
            start_time, lambda: launch_burst(0), name="ddos-start"
        )
        return window
