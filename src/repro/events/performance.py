"""Performance incidents: congestion, link flaps, degraded links.

The paper (§3) notes campus networks "are prone to network faults and
outages and experience performance issues" and that operators need to
pinpoint root causes.  These incident generators manipulate link state
so that performance-diagnosis tasks have labeled ground truth too.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.events.base import EventGenerator, EventWindow
from repro.netsim.packets import Protocol
from repro.netsim.traffic.payloads import opaque_payload


class LinkCongestionIncident(EventGenerator):
    """Elephant flows saturate a distribution link."""

    kind = "congestion"
    label = "congestion"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 department: int = 0, elephants: int = 4):
        super().__init__(network, ground_truth, seed)
        self.department = int(department)
        self.elephants = int(elephants)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        topo = network.topology
        dept = f"dept{self.department}"
        hosts = [h for h in topo.hosts if topo.department(h) == dept]
        if not hosts:
            raise ValueError(f"no hosts in department {dept}")
        window = self._register(
            start_time, duration,
            victims=[topo.ip(h) for h in hosts],
            actors=[],
            department=dept,
        )

        def launch() -> None:
            # Oversized so the transfers stay backlogged for the whole
            # window (whatever the actual bottleneck is), then aborted
            # at the window end: the incident ends when its flows end.
            capacity = topo.link_capacity(
                f"dist{self.department}",
                _core_neighbor(topo, self.department))
            flow_ids = []
            for i in range(self.elephants):
                src = hosts[i % len(hosts)]
                dst = str(self.rng.choice(topo.internet_hosts))
                flow = network.make_flow(
                    src_node=src,
                    dst_node=dst,
                    size_bytes=capacity / 8.0 * duration,
                    app="bulk",
                    label=self.label,
                    protocol=int(Protocol.TCP),
                    dst_port=443,
                    fwd_fraction=0.95,
                    payload_fn=opaque_payload,
                )
                network.inject_flow(flow)
                flow_ids.append(flow.flow_id)

            def stop() -> None:
                for flow_id in flow_ids:
                    network.flows.abort_flow(flow_id)

            network.simulator.schedule_at(start_time + duration, stop,
                                          name="congestion-stop")

        network.simulator.schedule_at(start_time, launch, name="congestion")
        return window


def _core_neighbor(topology, department: int) -> str:
    dist = f"dist{department}"
    for neighbor in topology.graph.neighbors(dist):
        if neighbor.startswith("core"):
            return neighbor
    raise ValueError(f"{dist} has no core neighbor")


class LinkFlapIncident(EventGenerator):
    """A link repeatedly fails and recovers."""

    kind = "linkflap"
    label = "link-flap"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 link: Optional[Tuple[str, str]] = None,
                 flap_period_s: float = 5.0):
        super().__init__(network, ground_truth, seed)
        if link is None:
            topo = network.topology
            link = ("dist0", _core_neighbor(topo, 0))
        self.link = link
        self.flap_period_s = float(flap_period_s)

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        window = self._register(
            start_time, duration,
            victims=list(self.link), actors=[],
            flap_period_s=self.flap_period_s,
        )
        link = network.links.get(*self.link)
        n_flaps = max(int(duration / self.flap_period_s), 1)

        def set_state(up: bool, index: int) -> None:
            link.set_up(up)
            network.router.set_link_state(self.link[0], self.link[1], up)
            network.flows.reallocate_now()
            next_index = index + 1
            if next_index < 2 * n_flaps:
                network.simulator.schedule(
                    self.flap_period_s / 2.0,
                    lambda: set_state(not up, next_index),
                    name="link-flap",
                )
            elif not up:
                # Never leave the link down after the window.
                network.simulator.schedule(
                    self.flap_period_s / 2.0,
                    lambda: set_state(True, next_index + 1),
                    name="link-flap-restore",
                )

        network.simulator.schedule_at(
            start_time, lambda: set_state(False, 0), name="flap-start"
        )
        return window


class LinkDegradationIncident(EventGenerator):
    """A link silently loses most of its capacity (duplex mismatch).

    Silent degradation is only *observable* under demand — the
    interface shows a utilisation plateau far below nameplate while
    transfers crawl.  ``demand_flows`` injects the user traffic (bulk
    transfers from hosts behind the link) that makes the plateau
    visible; set it to 0 to model a degradation nobody notices.
    """

    kind = "degradation"
    label = "link-degraded"

    def __init__(self, network, ground_truth, seed: Optional[int] = None,
                 link: Optional[Tuple[str, str]] = None, factor: float = 0.05,
                 demand_flows: int = 3):
        super().__init__(network, ground_truth, seed)
        if link is None:
            topo = network.topology
            link = ("dist0", _core_neighbor(topo, 0))
        self.link = link
        self.factor = float(factor)
        self.demand_flows = int(demand_flows)

    def _hosts_behind_link(self) -> list:
        """Hosts whose default path crosses the degraded link."""
        topo = self.network.topology
        router = self.network.router
        remote = topo.internet_hosts[0]
        behind = []
        for host in topo.hosts:
            try:
                path = router.path(host, remote)
            except Exception:
                continue
            if router.crosses(path, *self.link):
                behind.append(host)
        return behind

    def schedule(self, start_time: float, duration: float) -> EventWindow:
        network = self.network
        window = self._register(
            start_time, duration,
            victims=list(self.link), actors=[],
            factor=self.factor,
        )
        link = network.links.get(*self.link)

        demand_flow_ids: list = []

        def degrade() -> None:
            link.degrade(self.factor)
            network.flows.reallocate_now()
            hosts = self._hosts_behind_link()[: max(self.demand_flows, 0)]
            degraded_bps = link.nominal_capacity_bps * self.factor
            for i, host in enumerate(hosts):
                dst = str(self.rng.choice(network.topology.internet_hosts))
                flow = network.make_flow(
                    src_node=host,
                    dst_node=dst,
                    # backlogged for the whole window; aborted at restore
                    size_bytes=degraded_bps / 8.0 * duration * 2,
                    app="bulk",
                    label=self.label,
                    dst_port=443,
                    fwd_fraction=0.95,
                    payload_fn=opaque_payload,
                )
                network.inject_flow(flow)
                demand_flow_ids.append(flow.flow_id)

        def restore() -> None:
            link.restore()
            for flow_id in demand_flow_ids:
                network.flows.abort_flow(flow_id)
            network.flows.reallocate_now()

        network.simulator.schedule_at(start_time, degrade, name="degrade")
        network.simulator.schedule_at(start_time + duration, restore,
                                      name="degrade-restore")
        return window
