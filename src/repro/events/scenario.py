"""Scripted event timelines.

A :class:`Scenario` is a reproducible day-in-the-life script: background
traffic plus a list of timed, labeled events.  Experiments build their
train/test days from scenarios so that every run is replayable from a
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

from repro.events.base import EventGenerator, EventWindow, GroundTruth


@dataclass
class ScenarioStep:
    """One event occurrence within a scenario."""

    generator_cls: Type[EventGenerator]
    start_offset_s: float
    duration_s: float
    kwargs: Dict = field(default_factory=dict)


@dataclass
class Scenario:
    """A named, seedable traffic-plus-events script."""

    name: str
    duration_s: float
    steps: List[ScenarioStep] = field(default_factory=list)
    background: bool = True

    def add(self, generator_cls: Type[EventGenerator], start_offset_s: float,
            duration_s: float, **kwargs) -> "Scenario":
        self.steps.append(ScenarioStep(generator_cls, start_offset_s,
                                       duration_s, kwargs))
        return self


def run_scenario(network, scenario: Scenario,
                 seed: int = 0) -> GroundTruth:
    """Execute ``scenario`` on ``network`` and return its ground truth.

    The network is run from its current time for ``scenario.duration_s``
    seconds and then drained, so all packet observers have seen every
    (possibly truncated) flow when this returns.
    """
    ground_truth = GroundTruth()
    start = network.now
    if scenario.background:
        network.start_background_traffic()
    for i, step in enumerate(scenario.steps):
        if step.start_offset_s + step.duration_s > scenario.duration_s:
            raise ValueError(
                f"step {i} ({step.generator_cls.__name__}) exceeds scenario "
                f"duration"
            )
        generator = step.generator_cls(
            network, ground_truth, seed=seed + 101 * (i + 1), **step.kwargs
        )
        generator.schedule(start + step.start_offset_s, step.duration_s)
    network.run_until(start + scenario.duration_s)
    network.finish()
    return ground_truth
