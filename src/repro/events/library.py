"""Canned, named scenarios.

A shared vocabulary of campus days used by the CLI, the examples, and
downstream users: each entry is a factory ``(duration_s) -> Scenario``
so callers can stretch or shrink the day while keeping its structure
(offsets scale proportionally).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.events.bruteforce import SshBruteForceAttack
from repro.events.ddos import DnsAmplificationAttack
from repro.events.exfil import DataExfiltration
from repro.events.ntp_amp import NtpAmplificationAttack
from repro.events.performance import (
    LinkCongestionIncident,
    LinkDegradationIncident,
    LinkFlapIncident,
)
from repro.events.scan import PortScanAttack
from repro.events.scenario import Scenario
from repro.events.synflood import SynFloodAttack


def quiet_day(duration_s: float = 300.0) -> Scenario:
    """Background traffic only — the baseline day."""
    return Scenario("quiet-day", duration_s=duration_s)


def ddos_day(duration_s: float = 300.0) -> Scenario:
    """One DNS amplification burst mid-day."""
    scenario = Scenario("ddos-day", duration_s=duration_s)
    scenario.add(DnsAmplificationAttack, duration_s * 0.3,
                 duration_s * 0.2, attack_gbps=0.08)
    return scenario


def security_day(duration_s: float = 300.0) -> Scenario:
    """The full §2 menagerie: amplification, scan, brute force, exfil."""
    scenario = Scenario("security-day", duration_s=duration_s)
    scenario.add(DnsAmplificationAttack, duration_s * 0.10,
                 duration_s * 0.12, attack_gbps=0.08)
    scenario.add(PortScanAttack, duration_s * 0.35, duration_s * 0.10,
                 probes_per_s=40.0)
    scenario.add(SshBruteForceAttack, duration_s * 0.55,
                 duration_s * 0.15, attempts_per_s=4.0)
    scenario.add(DataExfiltration, duration_s * 0.75, duration_s * 0.20,
                 total_bytes=50e6, chunk_interval_s=duration_s * 0.02)
    return scenario


def variant_day(duration_s: float = 300.0) -> Scenario:
    """The drift day: a low-rate NTP monlist variant (see E14)."""
    scenario = Scenario("variant-day", duration_s=duration_s)
    scenario.add(NtpAmplificationAttack, duration_s * 0.3,
                 duration_s * 0.2, attack_gbps=0.004)
    return scenario


def incident_day(duration_s: float = 300.0) -> Scenario:
    """Performance incidents: congestion, flap, silent degradation."""
    scenario = Scenario("incident-day", duration_s=duration_s)
    scenario.add(LinkCongestionIncident, duration_s * 0.12,
                 duration_s * 0.12, department=0)
    scenario.add(LinkFlapIncident, duration_s * 0.42, duration_s * 0.10,
                 flap_period_s=max(duration_s * 0.03, 4.0),
                 link=("dist1", "core1"))
    scenario.add(LinkDegradationIncident, duration_s * 0.70,
                 duration_s * 0.17, factor=0.1)
    return scenario


def synflood_day(duration_s: float = 300.0) -> Scenario:
    """A SYN flood against a campus server."""
    scenario = Scenario("synflood-day", duration_s=duration_s)
    scenario.add(SynFloodAttack, duration_s * 0.3, duration_s * 0.25,
                 syn_rate_per_s=1500.0)
    return scenario


SCENARIO_LIBRARY: Dict[str, Callable[[float], Scenario]] = {
    "quiet": quiet_day,
    "ddos": ddos_day,
    "security": security_day,
    "variant": variant_day,
    "incidents": incident_day,
    "synflood": synflood_day,
}


def make_scenario(name: str, duration_s: float = 300.0) -> Scenario:
    """Instantiate a library scenario by name."""
    try:
        factory = SCENARIO_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_LIBRARY))
        raise KeyError(f"unknown scenario {name!r}; one of: {known}")
    return factory(duration_s)
