"""Federation configuration and per-site stream derivation.

Determinism contract: everything random at site *i* of a federation
seeded ``s`` — the campus build, the traffic day, the ingest Crypto-PAn
key, the boundary Crypto-PAn key, and the site's DP noise stream — is
derived from the ``(s, i)`` pair and from nothing else.  Two
consequences the test suite pins:

* an N-site run is bit-identical under a fixed seed **regardless of
  site evaluation order** (the coordinator may fan out over threads);
* no two sites ever share a pseudonym space or a noise stream, because
  every substream mixes the site id into its derivation.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

#: substream indexes per (seed, site) pair — append-only, part of the
#: replay format exactly like the chaos injector's kind streams.
STREAM_PLATFORM = 0   # the site's CampusPlatform seed
STREAM_DP = 1         # the site's DP accountant noise stream
STREAM_ROADTEST = 2   # per-site road-test day seeds (+ phase index)
STREAM_FAULTS = 100   # per-site chaos plan seed (high: road-test
#                       phases consume 2, 3, 4, ... above)


def site_stream_seed(seed: int, site_id: int, stream: int) -> int:
    """One 63-bit seed from the ``seed x site_id`` substream family."""
    sequence = np.random.SeedSequence([seed, site_id, stream])
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


def site_key(seed: int, site_id: int, purpose: str) -> bytes:
    """A 32-byte per-site Crypto-PAn key for ``purpose``.

    ``purpose`` separates the site's *ingest* key (what the store's
    privacy transform uses) from its *boundary* key (what the gateway
    re-keys outbound addresses under), so even within one site the two
    pseudonym spaces are unlinkable.
    """
    material = struct.pack("!qq", seed, site_id) + purpose.encode()
    return hashlib.sha256(b"repro-federation-key:" + material).digest()


@dataclass(frozen=True)
class SiteSpec:
    """Identity and locally-derived parameters of one federated site."""

    site_id: int
    name: str
    platform_seed: int
    dp_seed: int
    ingest_key: bytes
    boundary_key: bytes

    @classmethod
    def derive(cls, seed: int, site_id: int,
               name: Optional[str] = None) -> "SiteSpec":
        return cls(
            site_id=site_id,
            name=name or f"campus-{site_id}",
            platform_seed=site_stream_seed(seed, site_id, STREAM_PLATFORM),
            dp_seed=site_stream_seed(seed, site_id, STREAM_DP),
            ingest_key=site_key(seed, site_id, "ingest"),
            boundary_key=site_key(seed, site_id, "boundary"),
        )

    def roadtest_seed(self, phase_index: int, seed: int) -> int:
        return site_stream_seed(seed, self.site_id,
                                STREAM_ROADTEST + phase_index)


@dataclass
class FederationConfig:
    """Shared knobs for one federation of N campuses."""

    n_sites: int = 3
    seed: int = 0
    #: per-site DP budget (each site runs its own accountant).
    epsilon_total: float = 1.0
    #: confidence level the coordinator's merged bounds are stated at.
    confidence: float = 0.95
    #: released aggregates must be k-anonymous at this k.
    k_anon: int = 5
    #: minimum fraction of sites that must answer a federated query.
    quorum_fraction: float = 0.5
    #: sites whose (simulated) answer latency exceeds this are treated
    #: as unavailable for the query being merged.
    timeout_s: float = 2.0
    #: simulated per-call gateway round-trip (0 = co-located).
    rtt_s: float = 0.0
    campus_profile: str = "tiny"
    duration_s: float = 180.0
    window_s: float = 5.0
    workers: int = 0

    def __post_init__(self):
        if self.n_sites < 1:
            raise ValueError("a federation needs at least one site")
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in (0, 1]")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @property
    def quorum(self) -> int:
        """Minimum number of answering sites for a valid merge."""
        return max(1, int(np.ceil(self.n_sites * self.quorum_fraction)))

    def site_specs(self, names: Optional[List[str]] = None
                   ) -> Tuple[SiteSpec, ...]:
        names = names or [None] * self.n_sites
        return tuple(SiteSpec.derive(self.seed, i, name=names[i])
                     for i in range(self.n_sites))
