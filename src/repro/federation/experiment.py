"""The democratization experiment: K campuses beat any one campus.

This is the paper's core federation claim made runnable.  Each training
campus sees a *different slice* of the attack landscape (attacks rotate
across sites); a held-out campus sees all of them.  The coordinator
assembles a cross-site training set through the privacy gateways and
:class:`~repro.core.devloop.DevelopmentLoop` turns it into a deployable
tool; per-site models trained on any single campus are the baseline.
Because no single campus has labeled examples of every attack, the
federated model's macro-F1 on the held-out campus beats every
single-campus model — with nothing but DP aggregates, boundary
pseudonyms, and k-anonymous feature rows ever crossing a boundary.

The same tool is then road-tested *at each site* through the existing
shadow/canary/full machinery, yielding per-site precision/recall and a
divergence figure (how differently the one tool behaves across
campuses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.faults import FaultPlan
from repro.core.devloop import DevelopmentLoop
from repro.federation.config import FederationConfig, SiteSpec
from repro.federation.coordinator import (AssemblyReport,
                                          FederationCoordinator)
from repro.federation.site import SITE_ATTACKS, CampusSite
from repro.learning.metrics import f1_score
from repro.learning.training import train_and_evaluate
from repro.testbed import Guardrail

__all__ = ["FederatedExperiment", "FederationReport", "SiteRoadTest",
           "macro_f1"]


def macro_f1(model, test) -> float:
    """Unweighted mean F1 over the classes present in ``test``."""
    y_pred = model.predict(test.X)
    present = sorted(set(int(v) for v in test.y))
    if not present:
        return 0.0
    return sum(f1_score(test.y, y_pred, positive=c)
               for c in present) / len(present)


@dataclass
class SiteRoadTest:
    """One site's road-test verdict for the shared federated tool."""

    site: str
    deployed: bool
    rolled_back_at: Optional[str]
    precision: float
    recall: float
    f1: float


@dataclass
class FederationReport:
    """Everything the e2e federated experiment produced."""

    federated_f1: float
    single_site_f1: Dict[str, float] = field(default_factory=dict)
    assembly: Optional[AssemblyReport] = None
    class_names: Tuple[str, ...] = ()
    holdout_site: str = ""
    roadtests: List[SiteRoadTest] = field(default_factory=list)
    budget: List[Dict] = field(default_factory=list)
    degradations: List[str] = field(default_factory=list)

    @property
    def best_single_f1(self) -> float:
        return max(self.single_site_f1.values(), default=0.0)

    @property
    def federation_wins(self) -> bool:
        return self.federated_f1 > self.best_single_f1

    @property
    def roadtest_divergence(self) -> float:
        """Spread of the tool's F1 across the sites it road-tested on."""
        scores = [rt.f1 for rt in self.roadtests]
        if len(scores) < 2:
            return 0.0
        return max(scores) - min(scores)

    def to_dict(self) -> Dict:
        return {
            "federated_f1": self.federated_f1,
            "single_site_f1": dict(self.single_site_f1),
            "best_single_f1": self.best_single_f1,
            "federation_wins": self.federation_wins,
            "holdout_site": self.holdout_site,
            "class_names": list(self.class_names),
            "rows": self.assembly.rows if self.assembly else 0,
            "rows_per_site": dict(self.assembly.rows_per_site)
            if self.assembly else {},
            "suppressed_per_site": dict(self.assembly.suppressed_per_site)
            if self.assembly else {},
            "roadtests": [
                {"site": rt.site, "deployed": rt.deployed,
                 "rolled_back_at": rt.rolled_back_at,
                 "precision": rt.precision, "recall": rt.recall,
                 "f1": rt.f1}
                for rt in self.roadtests
            ],
            "roadtest_divergence": self.roadtest_divergence,
            "budget": list(self.budget),
            "degradations": list(self.degradations),
        }


class FederatedExperiment:
    """Stand up N training campuses + 1 held-out campus and compare."""

    def __init__(self, config: FederationConfig,
                 attacks: Sequence[str] = ("dns-amp", "scan", "synflood"),
                 model_name: str = "forest",
                 fault_plan: Optional[FaultPlan] = None,
                 obs=None, clock=None):
        self.config = config
        self.attacks = tuple(attacks)
        self.model_name = model_name
        self.obs = obs
        self.sites = [
            CampusSite(spec, config,
                       attacks=(self.attacks[i % len(self.attacks)],),
                       fault_plan=fault_plan, obs=obs, clock=clock)
            for i, spec in enumerate(config.site_specs())
        ]
        # The held-out campus sits OUTSIDE the federation: full attack
        # mix, no chaos plan, never contributes training data.
        holdout_spec = SiteSpec.derive(config.seed, config.n_sites,
                                       name="campus-holdout")
        self.holdout = CampusSite(holdout_spec, config,
                                  attacks=self.attacks, obs=obs)
        self.coordinator = FederationCoordinator(self.sites, config,
                                                 obs=obs)

    def _positive_label(self, class_names: Sequence[str]) -> str:
        generator_cls, _ = SITE_ATTACKS[self.attacks[0]]
        if generator_cls.label in class_names:
            return generator_cls.label
        non_benign = [n for n in class_names if n != "benign"]
        return non_benign[0] if non_benign else class_names[0]

    def run(self, roadtest: bool = True) -> FederationReport:
        """collect → assemble → develop → compare → road-test."""
        for site in self.sites:
            site.run_day()
        self.holdout.run_day()

        vocabulary = sorted(
            set(self.coordinator.class_vocabulary())
            | set(self.holdout.local_label_names()))
        federated, assembly = self.coordinator.assemble(
            class_names=vocabulary)
        evaluation = self.holdout.local_dataset(class_names=vocabulary)

        federated_result = train_and_evaluate(self.model_name, federated,
                                              evaluation)
        report = FederationReport(
            federated_f1=macro_f1(federated_result.model, evaluation),
            assembly=assembly, class_names=tuple(vocabulary),
            holdout_site=self.holdout.name)
        for site in self.sites:
            local = site.local_dataset(class_names=vocabulary)
            result = train_and_evaluate(self.model_name, local,
                                        evaluation)
            report.single_site_f1[site.name] = macro_f1(result.model,
                                                        evaluation)

        if roadtest:
            self._roadtest(federated, vocabulary, report)

        report.budget = self.coordinator.budget_summary()
        report.degradations = [
            f"{entry.stage}/{entry.mode}: {entry.reason}"
            for entry in self.coordinator.ledger.entries]
        return report

    def _roadtest(self, federated, vocabulary: Sequence[str],
                  report: FederationReport) -> None:
        """Develop one tool from the federated set; road-test per site."""
        positive = self._positive_label(vocabulary)
        binarized = federated.binarize(positive)
        # Shallow student: the tool must clear the switch resource
        # verifier before any site will let it touch a campus network.
        loop = DevelopmentLoop(teacher_name=self.model_name,
                               student_max_depth=3,
                               strict_verify=False, obs=self.obs)
        tool, _ = loop.develop(binarized, tool_name="federated-detector",
                               seed=self.config.seed)

        def deploy_fn(network, config):
            return tool.deploy(network, config)

        # Same promotion criteria at every campus; the rehearsal below
        # injects the target attack so recall is measurable everywhere.
        rails = [Guardrail("recall-floor", "recall", 0.1, "min"),
                 Guardrail("fp-ceiling", "false_positive_rate", 0.5,
                           "max")]
        for site in [*self.sites, self.holdout]:
            if site.gateway.down:
                continue   # a dark site cannot host a road-test
            if self.obs is not None:
                span = self.obs.span("federation.roadtest",
                                     site=site.name)
            else:
                from contextlib import nullcontext
                span = nullcontext()
            with span:
                pipeline = site.roadtest_factory(
                    tool.switch_config, guardrails=rails,
                    extra_attacks=(self.attacks[0],))(deploy_fn)
                outcome = pipeline.run(
                    seed=site.spec.roadtest_seed(0, self.config.seed))
            final = outcome.phases[-1] if outcome.phases else None
            metrics = final.metrics if final is not None else {}
            report.roadtests.append(SiteRoadTest(
                site=site.name,
                deployed=outcome.deployed,
                rolled_back_at=(outcome.rolled_back_at.value
                                if outcome.rolled_back_at else None),
                precision=float(metrics.get("precision", 0.0)),
                recall=float(metrics.get("recall", 0.0)),
                f1=float(metrics.get("f1", 0.0))))

    def close(self) -> None:
        self.coordinator.close()
        self.holdout.close()
