"""Cross-site orchestration over privacy-gated gateways.

The :class:`FederationCoordinator` is the untrusted middle: it sees
only what the per-site gateways release — DP-noised aggregates,
boundary pseudonyms, sanitized feature rows — and merges them into
federated answers with *composed* error bounds.

Degradation semantics (the chaos suite pins these):

* a site that is dark / partitioned / past the query timeout is
  recorded as unavailable, not retried into a hang;
* as long as a **quorum** of sites answers, the merge imputes the
  missing sites at the answering mean and widens the bound by one
  max-site envelope per missing site (see
  :func:`repro.federation.bounds.scale_for_missing`), and the
  :class:`~repro.chaos.resilience.DegradationLedger` gets an entry;
* below quorum the coordinator raises :class:`QuorumLost` — a loud
  failure, never a silently wrong answer.

Determinism: gateway calls fan out over threads, but every per-site
random stream (DP noise, chaos draws) is owned by that site, and
merges iterate sites in site-id order — so the merged answer is
bit-identical however the threads interleave.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.resilience import DegradationLedger
from repro.datastore.query import Query
from repro.federation.bounds import (compose_count_bound,
                                     laplace_quantile, scale_for_missing)
from repro.federation.budget import ReleaseRefused
from repro.federation.releases import SiteUnavailable
from repro.federation.site import CampusSite
from repro.learning.dataset import Dataset

__all__ = ["FederationCoordinator", "FederatedCount", "FederatedBins",
           "AssemblyReport", "QuorumLost"]


class QuorumLost(Exception):
    """Fewer sites answered than the federation's quorum."""

    def __init__(self, op: str, answered: int, quorum: int, total: int):
        super().__init__(
            f"{op}: only {answered}/{total} sites answered "
            f"(quorum is {quorum})")
        self.op = op
        self.answered = answered
        self.quorum = quorum
        self.total = total


@dataclass
class FederatedCount:
    """A merged scalar answer with a composed confidence bound."""

    value: float
    bound: float
    confidence: float
    n_sites: int
    n_answered: int
    degraded: bool
    releases: Tuple = ()
    unavailable: Tuple[Tuple[str, str], ...] = ()

    def interval(self) -> Tuple[float, float]:
        return self.value - self.bound, self.value + self.bound


@dataclass
class FederatedBins:
    """Merged per-value counts (histogram / heavy hitters).

    Address-valued bins never merge across sites — each site's
    pseudonym space is unlinkable by construction — so for address
    fields this is a *union* of per-site top values, which is exactly
    what the privacy story promises.
    """

    fld: str
    bins: Tuple[Tuple[object, float], ...]   # (value, merged noisy count)
    per_value_bound: float
    confidence: float
    n_sites: int
    n_answered: int
    degraded: bool
    releases: Tuple = ()
    unavailable: Tuple[Tuple[str, str], ...] = ()


@dataclass
class AssemblyReport:
    """Provenance of one federated dataset assembly."""

    rows: int
    rows_per_site: Dict[str, int] = field(default_factory=dict)
    suppressed_per_site: Dict[str, int] = field(default_factory=dict)
    class_names: Tuple[str, ...] = ()
    n_sites: int = 0
    n_answered: int = 0
    degraded: bool = False
    unavailable: Tuple[Tuple[str, str], ...] = ()


class FederationCoordinator:
    """Merges per-site releases; owns no raw data, ever."""

    def __init__(self, sites: Sequence[CampusSite], config,
                 obs=None, ledger: Optional[DegradationLedger] = None):
        if not sites:
            raise ValueError("a federation needs at least one site")
        self.sites = sorted(sites, key=lambda s: s.spec.site_id)
        self.config = config
        self.obs = obs
        self.ledger = ledger if ledger is not None else DegradationLedger()

    # -- fan-out machinery ---------------------------------------------------

    def _fan_out(self, op: str, call: Callable[[CampusSite], object]):
        """Call every gateway; split answers from unavailable sites.

        Results are re-ordered by site id before merging so thread
        completion order can never leak into the answer.
        """
        def one(site: CampusSite):
            try:
                release = call(site)
            except SiteUnavailable as exc:
                return site.name, None, exc.reason
            except ReleaseRefused as exc:
                return site.name, None, f"budget-exhausted: {exc}"
            if release.latency_s > self.config.timeout_s:
                return site.name, None, \
                    f"timeout ({release.latency_s:.2f}s)"
            return site.name, release, None

        with ThreadPoolExecutor(
                max_workers=max(1, len(self.sites))) as pool:
            results = list(pool.map(one, self.sites))

        releases, unavailable = [], []
        for name, release, reason in results:   # already site-id order
            if release is None:
                unavailable.append((name, reason))
            else:
                releases.append(release)
        return releases, unavailable

    def _quorum_gate(self, op: str, releases, unavailable):
        """Enforce quorum; ledger an entry when degraded but alive."""
        answered = len(releases)
        if answered < self.config.quorum:
            self.ledger.degrade("federation", "quorum-lost",
                                f"{op}: {answered}/{len(self.sites)} "
                                f"sites answered")
            raise QuorumLost(op, answered, self.config.quorum,
                             len(self.sites))
        degraded = bool(unavailable)
        if degraded:
            missing = ", ".join(f"{name} ({reason})"
                                for name, reason in unavailable)
            self.ledger.degrade("federation", "partial-merge",
                                f"{op}: missing {missing}")
        return degraded

    def _span(self, name: str, **attrs):
        if self.obs is None:
            from contextlib import nullcontext
            return nullcontext()
        return self.obs.span(name, **attrs)

    # -- federated queries -----------------------------------------------

    def query_count(self, query: Query, epsilon: float) -> FederatedCount:
        """Fan a COUNT to all sites; merge with a composed bound."""
        with self._span("federation.query", kind="count",
                        collection=query.collection):
            releases, unavailable = self._fan_out(
                "query_count",
                lambda site: site.gateway.send_count(query, epsilon))
            degraded = self._quorum_gate("query_count", releases,
                                         unavailable)
            value = sum(r.value for r in releases)
            bound = compose_count_bound(
                [r.epsilon for r in releases], self.config.confidence,
                local_bounds=[r.local_bound for r in releases])
            if degraded:
                alpha = (1.0 - self.config.confidence) / len(releases)
                upper = max(
                    r.value + laplace_quantile(r.epsilon, alpha)
                    + r.local_bound for r in releases)
                value, bound = scale_for_missing(
                    value, bound, len(self.sites), len(releases),
                    max_site_upper=upper)
            return FederatedCount(
                value=value, bound=bound,
                confidence=self.config.confidence,
                n_sites=len(self.sites), n_answered=len(releases),
                degraded=degraded, releases=tuple(releases),
                unavailable=tuple(unavailable))

    def _merge_bins(self, op: str, fld: str, releases, unavailable,
                    binned: Callable, top_k: Optional[int] = None
                    ) -> FederatedBins:
        degraded = self._quorum_gate(op, releases, unavailable)
        merged: Dict[object, float] = {}
        appearances: Dict[object, int] = {}
        for release in releases:               # site-id order
            for value, count in binned(release):
                merged[value] = merged.get(value, 0.0) + count
                appearances[value] = appearances.get(value, 0) + 1
        order = sorted(merged, key=lambda v: (-merged[v], str(v)))
        if top_k is not None:
            order = order[:top_k]
        alpha = 1.0 - self.config.confidence
        per_value_bound = 0.0
        if releases:
            quantile = laplace_quantile(
                releases[0].epsilon, alpha / max(len(merged), 1))
            worst = max(appearances.values(), default=1)
            per_value_bound = worst * quantile
        return FederatedBins(
            fld=fld,
            bins=tuple((v, merged[v]) for v in order),
            per_value_bound=per_value_bound,
            confidence=self.config.confidence,
            n_sites=len(self.sites), n_answered=len(releases),
            degraded=degraded, releases=tuple(releases),
            unavailable=tuple(unavailable))

    def query_histogram(self, query: Query, fld: str,
                        epsilon: float) -> FederatedBins:
        with self._span("federation.query", kind="histogram", fld=fld):
            releases, unavailable = self._fan_out(
                "query_histogram",
                lambda site: site.gateway.send_histogram(query, fld,
                                                         epsilon))
            return self._merge_bins("query_histogram", fld, releases,
                                    unavailable,
                                    lambda r: r.bins)

    def query_heavy_hitters(self, query: Query, fld: str, k: int,
                            epsilon: float) -> FederatedBins:
        with self._span("federation.query", kind="heavy_hitters",
                        fld=fld, k=k):
            releases, unavailable = self._fan_out(
                "query_heavy_hitters",
                lambda site: site.gateway.send_heavy_hitters(
                    query, fld, k, epsilon))
            return self._merge_bins("query_heavy_hitters", fld,
                                    releases, unavailable,
                                    lambda r: r.hitters, top_k=k)

    # -- federated dataset assembly ----------------------------------------

    def class_vocabulary(self) -> List[str]:
        """Union of per-site label vocabularies (names cross freely)."""
        releases, unavailable = self._fan_out(
            "class_vocabulary", lambda site: site.gateway.send_schema())
        self._quorum_gate("class_vocabulary", releases, unavailable)
        labels = set()
        for release in releases:
            labels |= set(release.label_names)
        return sorted(labels)

    def assemble(self, class_names: Optional[List[str]] = None,
                 time_range: Optional[Tuple] = None
                 ) -> Tuple[Dataset, AssemblyReport]:
        """Cross-site training set from sanitized per-site examples.

        Two boundary crossings per site: a schema release to fix a
        shared class vocabulary, then the sanitized examples release.
        The assembled :class:`Dataset` carries boundary pseudonyms as
        its row keys — the coordinator never sees a raw endpoint.
        """
        with self._span("federation.assemble") as span:
            if class_names is None:
                class_names = self.class_vocabulary()
            releases, unavailable = self._fan_out(
                "assemble",
                lambda site: site.gateway.send_examples(
                    class_names=class_names, time_range=time_range))
            degraded = self._quorum_gate("assemble", releases,
                                         unavailable)
            parts = [
                Dataset(r.X, r.y, list(r.feature_names),
                        list(r.class_names), keys=list(r.keys))
                for r in releases if len(r)
            ]
            if not parts:
                raise QuorumLost("assemble", 0, self.config.quorum,
                                 len(self.sites))
            dataset = Dataset.concatenate(parts)
            report = AssemblyReport(
                rows=len(dataset),
                rows_per_site={r.site: len(r) for r in releases},
                suppressed_per_site={r.site: r.suppressed_rows
                                     for r in releases},
                class_names=tuple(class_names),
                n_sites=len(self.sites), n_answered=len(releases),
                degraded=degraded, unavailable=tuple(unavailable))
            if span is not None and hasattr(span, "set"):
                span.set(rows=report.rows, sites=report.n_answered)
            return dataset, report

    # -- bookkeeping -------------------------------------------------------

    def budget_summary(self) -> List[Dict[str, float]]:
        return [site.budget.summary() for site in self.sites]

    def close(self) -> None:
        for site in self.sites:
            site.close()
