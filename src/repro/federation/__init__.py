"""Federated multi-campus analytics behind per-site privacy gateways.

The democratization story of the source paper, cross-campus edition: N
self-contained :class:`~repro.federation.site.CampusSite` enclaves
(own population, own store, own Crypto-PAn keys, own DP budget) answer
a :class:`~repro.federation.coordinator.FederationCoordinator` *only*
through their :class:`~repro.federation.gateway.SiteGateway` — counts,
histograms and heavy hitters leave as budget-charged DP releases,
addresses leave as boundary-key pseudonyms, feature rows leave
k-anonymized.  On top: federated queries with composed error bounds,
cross-site dataset assembly feeding the development loop, and per-site
road-testing of the resulting tool.
"""

from repro.federation.bounds import (compose_count_bound, laplace_quantile,
                                     scale_for_missing)
from repro.federation.budget import PrivacyBudget, ReleaseRefused
from repro.federation.config import (FederationConfig, SiteSpec, site_key,
                                     site_stream_seed)
from repro.federation.coordinator import (AssemblyReport, FederatedBins,
                                          FederatedCount,
                                          FederationCoordinator, QuorumLost)
from repro.federation.experiment import (FederatedExperiment,
                                         FederationReport, SiteRoadTest,
                                         macro_f1)
from repro.federation.gateway import ADDRESS_FIELDS, SiteGateway
from repro.federation.releases import (CountRelease, ExamplesRelease,
                                       HeavyHittersRelease, HistogramRelease,
                                       SchemaRelease, SiteUnavailable)
from repro.federation.site import (SITE_ATTACKS, CampusSite,
                                   make_site_scenario)

__all__ = [
    "FederationConfig",
    "SiteSpec",
    "site_key",
    "site_stream_seed",
    "PrivacyBudget",
    "ReleaseRefused",
    "laplace_quantile",
    "compose_count_bound",
    "scale_for_missing",
    "SiteGateway",
    "ADDRESS_FIELDS",
    "CampusSite",
    "SITE_ATTACKS",
    "make_site_scenario",
    "FederationCoordinator",
    "FederatedCount",
    "FederatedBins",
    "AssemblyReport",
    "QuorumLost",
    "SiteUnavailable",
    "CountRelease",
    "HistogramRelease",
    "HeavyHittersRelease",
    "SchemaRelease",
    "ExamplesRelease",
    "FederatedExperiment",
    "FederationReport",
    "SiteRoadTest",
    "macro_f1",
]
