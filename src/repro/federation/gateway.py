"""The only door out of a federated site.

A :class:`SiteGateway` is the single code path through which anything
leaves a campus.  Every outbound answer is routed through
``repro.privacy`` before it is wrapped in a release envelope:

* counts, histograms and heavy hitters leave only as DP releases
  charged to the site's :class:`~repro.federation.budget.PrivacyBudget`
  (a release that would overdraw is *refused*, not truncated);
* address-valued fields leave only as Crypto-PAn pseudonyms under the
  site's **boundary** key — a different key than the ingest-time
  anonymizer, so even a site's own stored pseudonyms are unlinkable to
  what it publishes;
* released aggregates and example rows pass the k-anonymity auditor,
  with under-k bins/rows suppressed before they become visible.

The gateway is also where the chaos plane bites: ``SITE_OUTAGE`` takes
the site down for the rest of the run, ``SITE_PARTITION`` loses a
single call, and ``SITE_SLOW`` inflates the per-call latency the
coordinator uses for its timeout accounting.  Latency is *accounting*
by default (no real sleeps); pass a ``clock`` to make it real — the
federation benchmark does, to demonstrate fan-out overlap honestly.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.faults import FaultInjector, FaultKind
from repro.datastore.query import Query
from repro.federation.budget import PrivacyBudget
from repro.federation.config import SiteSpec
from repro.federation.releases import (CountRelease, ExamplesRelease,
                                       HeavyHittersRelease,
                                       HistogramRelease, SchemaRelease,
                                       SiteUnavailable)
from repro.privacy.cryptopan import CryptoPan
from repro.privacy.kanon import KAnonymityAuditor, KAnonymityReport

__all__ = ["SiteGateway", "ADDRESS_FIELDS"]

#: fields whose values are network addresses and must never cross the
#: boundary un-pseudonymized.
ADDRESS_FIELDS = frozenset({"src_ip", "dst_ip", "client_ip", "server_ip"})

#: quasi-identifiers the example-release auditor groups rows by.
_EXAMPLE_QIS = ("label", "activity_bin")


def _qi_get(record: Dict, name: str):
    return record[name]


class SiteGateway:
    """Privacy-gated egress for one federated site."""

    def __init__(self, spec: SiteSpec, store, budget: PrivacyBudget,
                 dataset_provider: Callable[..., object],
                 schema_provider: Callable[[], Tuple[Sequence[str],
                                                     Sequence[str]]],
                 k_anon: int = 5,
                 fault_injector: Optional[FaultInjector] = None,
                 obs=None, clock=None, rtt_s: float = 0.0):
        self.spec = spec
        self.site = spec.name
        self.store = store
        self.budget = budget
        self._dataset_provider = dataset_provider
        self._schema_provider = schema_provider
        self._auditor = KAnonymityAuditor(k=k_anon)
        self._pan = CryptoPan(spec.boundary_key)
        self.fault_injector = fault_injector
        self.obs = obs
        self._clock = clock
        self.rtt_s = rtt_s
        self._down = False

    # -- boundary mechanics ----------------------------------------------

    @property
    def down(self) -> bool:
        return self._down

    def _boundary(self, op: str) -> float:
        """Cross the site boundary once; returns the call latency.

        Raises :class:`SiteUnavailable` when the chaos plane has taken
        the site dark (stateful) or partitioned this one call.
        """
        if self._down:
            raise SiteUnavailable(self.site, "outage")
        latency = self.rtt_s
        injector = self.fault_injector
        if injector is not None:
            if injector.should_fire(FaultKind.SITE_OUTAGE,
                                    site=self.site, op=op):
                self._down = True
                raise SiteUnavailable(self.site, "outage")
            if injector.should_fire(FaultKind.SITE_PARTITION,
                                    site=self.site, op=op):
                raise SiteUnavailable(self.site, "partition")
            if injector.should_fire(FaultKind.SITE_SLOW,
                                    site=self.site, op=op):
                latency += injector.magnitude(FaultKind.SITE_SLOW)
        if self._clock is not None and latency > 0:
            self._clock.sleep(latency)
        if self.obs is not None:
            self.obs.metrics.counter("repro_federation_boundary_calls",
                                     site=self.site, op=op).inc()
        return latency

    def _pseudonym(self, value) -> str:
        """Boundary-key pseudonym for an address-like value.

        Dotted-quad addresses get prefix-preserving Crypto-PAn under
        the site's boundary key; anything unparsable degrades to a
        keyed hash token (still never the raw value).
        """
        text = str(value)
        try:
            return self._pan.anonymize(text)
        except OSError:
            digest = hashlib.sha256(
                self.spec.boundary_key + text.encode()).hexdigest()
            return f"anon-{digest[:12]}"

    def _field(self, stored, fld: str):
        value = getattr(stored.record, fld, None)
        if value is None:
            value = stored.tags.get(fld)
        return value

    def _released_report(self, fld: str,
                         kept: Dict) -> KAnonymityReport:
        """Audit report over the *released* (post-suppression) bins."""
        counts = Counter()
        for value, count in kept.items():
            counts[(value,)] = int(count)
        violating = {c: n for c, n in counts.items()
                     if n < self._auditor.k}
        return KAnonymityReport(
            k=self._auditor.k,
            quasi_identifiers=(fld,),
            total_records=sum(counts.values()),
            distinct_combinations=len(counts),
            violating_combinations=len(violating),
            violating_records=sum(violating.values()),
            min_group_size=min(counts.values()) if counts else 0,
        )

    # -- releases ----------------------------------------------------------

    def send_count(self, query: Query, epsilon: float) -> CountRelease:
        """COUNT(*) of the query's matches as a DP release."""
        latency = self._boundary("count")
        answer = self.store.count_matching(query)
        noisy = self.budget.release_count(
            float(answer.value), epsilon,
            description=f"federated count:{query.collection}")
        return CountRelease(site=self.site, value=noisy, epsilon=epsilon,
                            local_bound=float(answer.bound),
                            source=answer.source, latency_s=latency)

    def send_histogram(self, query: Query, fld: str,
                       epsilon: float) -> HistogramRelease:
        """Per-value counts of ``fld``, k-anon suppressed, DP-noised."""
        latency = self._boundary("histogram")
        rows = self.store.query(query)
        counts = Counter()
        for stored in rows:
            value = self._field(stored, fld)
            if value is not None:
                counts[value] += 1
        kept = {v: c for v, c in counts.items() if c >= self._auditor.k}
        suppressed = len(counts) - len(kept)
        if fld in ADDRESS_FIELDS:
            kept = {self._pseudonym(v): c for v, c in kept.items()}
        # Deterministic bin order: by true count desc, then value.
        order = sorted(kept, key=lambda v: (-kept[v], str(v)))
        noisy = self.budget.release_histogram(
            kept, epsilon, description=f"federated histogram:{fld}")
        return HistogramRelease(
            site=self.site, fld=fld,
            bins=tuple((v, float(noisy[v])) for v in order),
            epsilon=epsilon, suppressed_bins=suppressed,
            kanon=self._released_report(fld, kept), latency_s=latency)

    def send_heavy_hitters(self, query: Query, fld: str, k: int,
                           epsilon: float) -> HeavyHittersRelease:
        """Top-k values of ``fld``; addresses leave pseudonymized."""
        latency = self._boundary("heavy_hitters")
        answer = self.store.heavy_hitters(query, fld, k=k)
        hitters = [(value, int(count)) for value, count in answer.value]
        visible = [(v, c) for v, c in hitters if c >= self._auditor.k]
        suppressed = len(hitters) - len(visible)
        if fld in ADDRESS_FIELDS:
            visible = [(self._pseudonym(v), c) for v, c in visible]
        kept = dict(visible)
        noisy = self.budget.release_histogram(
            kept, epsilon, description=f"federated heavy_hitters:{fld}")
        return HeavyHittersRelease(
            site=self.site, fld=fld, k=k,
            hitters=tuple((v, float(noisy[v])) for v, _ in visible),
            epsilon=epsilon, local_bound=float(answer.bound),
            source=answer.source, suppressed=suppressed,
            kanon=self._released_report(fld, kept), latency_s=latency)

    def send_schema(self) -> SchemaRelease:
        """Feature/label vocabulary — names only, charges nothing."""
        latency = self._boundary("schema")
        feature_names, label_names = self._schema_provider()
        return SchemaRelease(site=self.site,
                             feature_names=tuple(feature_names),
                             label_names=tuple(label_names),
                             latency_s=latency)

    def send_examples(self, class_names: Optional[List[str]] = None,
                      time_range: Optional[Tuple] = None
                      ) -> ExamplesRelease:
        """Sanitized labeled window examples for federated assembly.

        The featurizer keys each row by its *external* endpoint, which
        the ingest policy stores raw (it only anonymizes campus
        addresses) — so the gateway re-keys every endpoint under the
        boundary Crypto-PAn key before the row may leave.  Rows whose
        (label, coarse-activity) quasi-identifier combination occurs
        fewer than k times are suppressed.
        """
        latency = self._boundary("examples")
        dataset = self._dataset_provider(class_names=class_names,
                                         time_range=time_range)
        names = list(dataset.feature_names)
        activity_col = names.index("pkts") if "pkts" in names else 0
        records = []
        for i in range(len(dataset)):
            records.append({
                "label": dataset.class_names[int(dataset.y[i])],
                "activity_bin": int(np.log2(
                    1.0 + float(dataset.X[i, activity_col])) / 2.0),
                "row": i,
            })
        kept = self._auditor.suppress(records, _EXAMPLE_QIS,
                                      getter=_qi_get)
        report = self._auditor.audit(kept, _EXAMPLE_QIS, getter=_qi_get)
        sub = dataset.subset(np.array([r["row"] for r in kept],
                                      dtype=int))
        keys: Tuple[Tuple[float, str], ...] = ()
        if sub.keys is not None:
            keys = tuple((float(window_start), self._pseudonym(endpoint))
                         for window_start, endpoint in sub.keys)
        return ExamplesRelease(
            site=self.site,
            X=np.array(sub.X, dtype=float, copy=True),
            y=np.array(sub.y, copy=True),
            feature_names=tuple(sub.feature_names),
            class_names=tuple(sub.class_names),
            keys=keys,
            suppressed_rows=len(dataset) - len(kept),
            kanon=report, latency_s=latency)
