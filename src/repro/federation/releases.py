"""What may cross a site boundary, and in what form.

Every object a :class:`~repro.federation.gateway.SiteGateway` hands to
the coordinator is one of these envelopes.  Each envelope knows how to
enumerate every concrete field value it carries
(:meth:`payload_fields`), which is how the boundary-capture test
asserts that *no raw address, payload byte, or endpoint identifier*
ever appears in a cross-site payload — only Crypto-PAn pseudonyms under
the site's boundary key, DP-noised numbers, and feature aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.privacy.kanon import KAnonymityReport

__all__ = ["SiteUnavailable", "CountRelease", "HistogramRelease",
           "HeavyHittersRelease", "SchemaRelease", "ExamplesRelease"]


class SiteUnavailable(Exception):
    """A gateway call failed at the site boundary (outage/partition)."""

    def __init__(self, site: str, reason: str):
        super().__init__(f"site {site!r} unavailable: {reason}")
        self.site = site
        self.reason = reason


@dataclass(frozen=True)
class CountRelease:
    """One DP-noised scalar count."""

    site: str
    value: float          # noisy count
    epsilon: float        # charged to the site budget
    local_bound: float    # the site-local (sketch) approximation bound
    source: str           # the planner's answer source: sketch|hybrid|exact
    latency_s: float = 0.0

    def payload_fields(self) -> Iterator[object]:
        yield self.value


@dataclass(frozen=True)
class HistogramRelease:
    """DP-noised per-bin counts; address-valued bins are Crypto-PAn'd."""

    site: str
    fld: str
    bins: Tuple[Tuple[object, float], ...]   # (bin value, noisy count)
    epsilon: float
    suppressed_bins: int   # bins dropped by the k-anonymity auditor
    kanon: Optional[KAnonymityReport] = None
    latency_s: float = 0.0

    def payload_fields(self) -> Iterator[object]:
        for value, count in self.bins:
            yield value
            yield count


@dataclass(frozen=True)
class HeavyHittersRelease:
    """Top-k values of a field with DP-noised counts.

    Address-valued fields leave as boundary-key pseudonyms; the noisy
    counts share one epsilon charge (disjoint bins, parallel
    composition) and the k-anonymity auditor has dropped values backed
    by fewer than k records before any of them became visible.
    """

    site: str
    fld: str
    k: int
    hitters: Tuple[Tuple[object, float], ...]   # (value, noisy count)
    epsilon: float
    local_bound: float
    source: str
    suppressed: int
    kanon: Optional[KAnonymityReport] = None
    latency_s: float = 0.0

    def payload_fields(self) -> Iterator[object]:
        for value, count in self.hitters:
            yield value
            yield count


@dataclass(frozen=True)
class SchemaRelease:
    """Feature/label vocabulary — names only, never values."""

    site: str
    feature_names: Tuple[str, ...]
    label_names: Tuple[str, ...]
    latency_s: float = 0.0

    def payload_fields(self) -> Iterator[object]:
        yield from self.feature_names
        yield from self.label_names


@dataclass(frozen=True)
class ExamplesRelease:
    """Sanitized labeled feature examples for federated assembly.

    ``X`` rows are window aggregates (counts, byte totals, entropy-style
    ratios); ``keys`` pair each row's window start with the *boundary
    pseudonym* of its external endpoint — the raw endpoint never leaves
    the site.  The k-anonymity auditor has already suppressed rows whose
    quasi-identifier combination occurred fewer than k times.
    """

    site: str
    X: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...]
    class_names: Tuple[str, ...]
    keys: Tuple[Tuple[float, str], ...]
    suppressed_rows: int
    kanon: Optional[KAnonymityReport] = None
    latency_s: float = 0.0

    def __len__(self) -> int:
        return len(self.X)

    def payload_fields(self) -> Iterator[object]:
        for window_start, endpoint in self.keys:
            yield window_start
            yield endpoint
        yield from self.feature_names
        yield from self.class_names
        for value in self.X.ravel().tolist():
            yield value
        for label in self.y.tolist():
            yield label
