"""Error-bound composition for merged DP releases.

Each site adds independent ``Laplace(sensitivity / epsilon_i)`` noise
to its local answer.  The coordinator sums the noisy answers, so the
merged error is a sum of independent Laplace draws; the bound it
reports uses the exact Laplace tail with a union bound across sites:

    P(|X_i| > t_i) = exp(-t_i * eps_i / sens)

so choosing ``t_i = (sens / eps_i) * ln(n / alpha)`` gives each site a
miss probability of ``alpha / n`` and the event "every site is inside
its bound" probability at least ``1 - alpha``.  The composed bound
``sum(t_i)`` therefore contains the true all-sites total at the
declared confidence — the property the hypothesis suite checks for
random site counts and epsilon splits.

Sites may *also* answer approximately (sketch-backed planner answers
carry their own deterministic bound); those bounds are additive on top
of the noise quantiles and are composed here as well.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["laplace_quantile", "compose_count_bound", "scale_for_missing"]


def laplace_quantile(epsilon: float, alpha: float,
                     sensitivity: float = 1.0) -> float:
    """Two-sided Laplace tail quantile: P(|X| > t) = alpha at this t."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return (sensitivity / epsilon) * math.log(1.0 / alpha)


def compose_count_bound(epsilons: Sequence[float], confidence: float,
                        sensitivity: float = 1.0,
                        local_bounds: Sequence[float] = ()) -> float:
    """Bound on ``|sum(noisy_i) - sum(true_i)|`` at ``confidence``.

    ``local_bounds`` carries any per-site deterministic approximation
    error (e.g. a sketch-backed count's ``AggregateAnswer.bound``);
    these add linearly to the probabilistic noise quantiles.
    """
    if not epsilons:
        return float(sum(local_bounds))
    alpha = 1.0 - confidence
    per_site_alpha = alpha / len(epsilons)
    noise = sum(laplace_quantile(eps, per_site_alpha, sensitivity)
                for eps in epsilons)
    return noise + float(sum(local_bounds))


def scale_for_missing(value: float, bound: float, n_total: int,
                      n_answered: int, max_site_upper: float
                      ) -> "tuple[float, float]":
    """Widen a partial (quorum) merge to cover unanswered sites.

    The merged value imputes each missing site at the mean of the
    answering sites; the bound widens by one ``max_site_upper`` — the
    largest per-site upper envelope observed — per missing site, which
    covers any missing site whose true answer lies in ``[0,
    max_site_upper]``.  That cap is the stated degradation semantics: a
    quorum answer is honest about covering only sites that look like
    the ones that answered.
    """
    if n_answered <= 0:
        raise ValueError("cannot scale an empty merge")
    missing = n_total - n_answered
    if missing <= 0:
        return value, bound
    imputed = value + missing * (value / n_answered)
    widened = bound + missing * max(max_site_upper, 0.0)
    return imputed, widened
