"""Per-site differential-privacy budget with refusal accounting.

Thin policy layer over :class:`repro.privacy.dp.DpAccountant`: every
site owns exactly one budget, every outbound aggregate charges it, and
a release that would overdraw is *refused* — the underlying accountant
raises before appending to its ledger, so a refused release charges
nothing (property-tested in ``tests/federation/test_budget.py``).

When an :class:`repro.obs.Observability` is attached, the spent /
remaining / refused figures are mirrored into per-site gauges so a
federation run's budget posture is visible in the same report as its
latency spans.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.privacy.dp import DpAccountant, DpBudgetExceeded

__all__ = ["PrivacyBudget", "ReleaseRefused"]


class ReleaseRefused(Exception):
    """A site refused a release because its DP budget is exhausted."""

    def __init__(self, site: str, epsilon: float, remaining: float):
        super().__init__(
            f"site {site!r} refused release: needs eps={epsilon:g}, "
            f"only {remaining:.4f} of the budget remains")
        self.site = site
        self.epsilon = epsilon
        self.remaining = remaining


class PrivacyBudget:
    """One site's epsilon ledger + Laplace mechanism + obs mirror."""

    def __init__(self, site: str, total_epsilon: float = 1.0,
                 seed: int = 0, obs=None):
        self.site = site
        self.accountant = DpAccountant(total_epsilon=total_epsilon,
                                       seed=seed)
        self.refused = 0
        self.obs = obs
        self._publish()

    # -- accounting ----------------------------------------------------------

    @property
    def total_epsilon(self) -> float:
        return self.accountant.total_epsilon

    @property
    def spent(self) -> float:
        return self.accountant.spent

    @property
    def remaining(self) -> float:
        return self.accountant.remaining

    def _publish(self) -> None:
        if self.obs is None:
            return
        metrics = self.obs.metrics
        metrics.gauge("repro_federation_epsilon_spent",
                      site=self.site).set(self.spent)
        metrics.gauge("repro_federation_epsilon_remaining",
                      site=self.site).set(self.remaining)
        metrics.gauge("repro_federation_releases_refused",
                      site=self.site).set(self.refused)

    # -- releases ------------------------------------------------------------

    def release_count(self, true_count: float, epsilon: float,
                      description: str = "count",
                      sensitivity: float = 1.0) -> float:
        try:
            noisy = self.accountant.release_count(
                true_count, epsilon, description=description,
                sensitivity=sensitivity)
        except DpBudgetExceeded:
            self.refused += 1
            self._publish()
            raise ReleaseRefused(self.site, epsilon,
                                 self.remaining) from None
        self._publish()
        return noisy

    def release_histogram(self, histogram: Dict, epsilon: float,
                          description: str = "histogram",
                          sensitivity: float = 1.0) -> Dict:
        try:
            noisy = self.accountant.release_histogram(
                histogram, epsilon, description=description,
                sensitivity=sensitivity)
        except DpBudgetExceeded:
            self.refused += 1
            self._publish()
            raise ReleaseRefused(self.site, epsilon,
                                 self.remaining) from None
        self._publish()
        return noisy

    def summary(self) -> Dict[str, float]:
        return {
            "site": self.site,
            "total_epsilon": self.total_epsilon,
            "spent": self.spent,
            "remaining": self.remaining,
            "releases": len(self.accountant.ledger),
            "refused": self.refused,
        }
