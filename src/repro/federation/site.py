"""One federated campus: platform + budget + gateway, nothing shared.

A :class:`CampusSite` owns a full :class:`~repro.core.CampusPlatform`
(its own fluid population, capture pipeline, tiered store), its own
DP :class:`~repro.federation.budget.PrivacyBudget`, and the
:class:`~repro.federation.gateway.SiteGateway` that is the *only* way
anything it knows leaves the campus.  The coordinator never touches
``site.platform`` or ``site.store`` directly — it talks to
``site.gateway`` and gets release envelopes back.

Every random choice the site makes derives from its
:class:`~repro.federation.config.SiteSpec` (itself derived from
``(federation seed, site id)``), so a federation is reproducible
site-by-site regardless of the order sites are evaluated in.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chaos.faults import FaultInjector, FaultPlan
from repro.core import CampusPlatform, PlatformConfig
from repro.core.devloop import make_roadtest_factory
from repro.events import (DnsAmplificationAttack, GroundTruth,
                          PortScanAttack, Scenario, SynFloodAttack)
from repro.federation.budget import PrivacyBudget
from repro.federation.config import (STREAM_FAULTS, FederationConfig,
                                     SiteSpec, site_stream_seed)
from repro.federation.gateway import SiteGateway
from repro.learning.features import FEATURE_NAMES

__all__ = ["CampusSite", "SITE_ATTACKS", "make_site_scenario"]

#: attack menu for federated days; mirrors the CLI's ``--attack`` names.
SITE_ATTACKS = {
    "dns-amp": (DnsAmplificationAttack, {"attack_gbps": 0.08}),
    "scan": (PortScanAttack, {"probes_per_s": 40.0}),
    "synflood": (SynFloodAttack, {}),
}


def make_site_scenario(name: str, attacks: Sequence[str],
                       duration_s: float) -> Scenario:
    """A campus day with the named attacks staggered through it."""
    scenario = Scenario(f"{name}-day", duration_s=duration_s)
    n = max(len(attacks), 1)
    for i, attack in enumerate(attacks):
        generator_cls, kwargs = SITE_ATTACKS[attack]
        start = duration_s * (i + 0.5) / (n + 0.5)
        duration = min(duration_s * 0.15, 60.0)
        scenario.add(generator_cls, start, duration, **kwargs)
    return scenario


class CampusSite:
    """A self-contained campus enclave behind a privacy gateway."""

    def __init__(self, spec: SiteSpec, config: FederationConfig,
                 attacks: Sequence[str] = ("dns-amp",),
                 fault_plan: Optional[FaultPlan] = None,
                 obs=None, clock=None):
        self.spec = spec
        self.name = spec.name
        self.config = config
        self.attacks = tuple(attacks)
        self.obs = obs
        self.ground_truth: Optional[GroundTruth] = None
        self.platform = CampusPlatform(PlatformConfig(
            campus_profile=config.campus_profile,
            seed=spec.platform_seed,
            window_s=config.window_s,
            workers=config.workers,
            privacy_key=spec.ingest_key,
        ), obs=obs)
        self.budget = PrivacyBudget(site=self.name,
                                    total_epsilon=config.epsilon_total,
                                    seed=spec.dp_seed, obs=obs)
        injector = None
        if fault_plan is not None:
            # Each site runs its OWN injector on a site-derived seed:
            # faults are uncorrelated across sites and immune to the
            # coordinator's thread scheduling.
            site_plan = dataclasses.replace(
                fault_plan,
                seed=site_stream_seed(config.seed, spec.site_id,
                                      STREAM_FAULTS))
            injector = FaultInjector(site_plan)
        self.fault_injector = injector
        self.gateway = SiteGateway(
            spec=spec, store=self.platform.store, budget=self.budget,
            dataset_provider=self.local_dataset,
            schema_provider=self._local_schema,
            k_anon=config.k_anon, fault_injector=injector,
            obs=obs, clock=clock, rtt_s=config.rtt_s)

    # -- local (never crosses the boundary) --------------------------------

    @property
    def store(self):
        return self.platform.store

    def run_day(self, scenario: Optional[Scenario] = None):
        """Simulate one campus day and index it for the planner."""
        if scenario is None:
            scenario = make_site_scenario(self.name, self.attacks,
                                          self.config.duration_s)
        result = self.platform.collect(scenario,
                                       seed=self.spec.platform_seed)
        self.ground_truth = result.ground_truth
        self.platform.store.build_stats()
        return result

    def local_label_names(self) -> List[str]:
        labels = {"benign"}
        if self.ground_truth is not None:
            labels |= {w.label for w in self.ground_truth.windows}
        return sorted(labels)

    def _local_schema(self) -> Tuple[Sequence[str], Sequence[str]]:
        return list(FEATURE_NAMES), self.local_label_names()

    def local_dataset(self, class_names: Optional[List[str]] = None,
                       time_range: Optional[Tuple] = None):
        return self.platform.build_dataset(class_names=class_names,
                                           time_range=time_range)

    def roadtest_factory(self, base_config, guardrails=None,
                         extra_attacks: Sequence[str] = ()) -> Callable:
        """Road-test context over *this* site's campus and attack mix.

        ``extra_attacks`` lets the experimenter rehearse an attack the
        site has never seen (a fire drill), so recall is measurable at
        every campus, not just the ones the attack organically hits.
        """
        attacks = list(self.attacks) + [a for a in extra_attacks
                                        if a not in self.attacks]

        def scenario_builder(seed: int) -> Scenario:
            return make_site_scenario(self.name, attacks,
                                      self.config.duration_s)

        return make_roadtest_factory(self.platform, scenario_builder,
                                     base_config, guardrails=guardrails)

    def close(self) -> None:
        self.platform.close()
