"""Unit tests for the ``run_bench.py`` merge policy.

The regression this pins down: a ``--suite`` run used to fold the
committed results of suites it never executed straight into the new
payload, indistinguishable from fresh numbers.  ``merge_payload`` must
still carry them forward (partial runs must not clobber), but it has
to *say so* — skipped suites are returned to the caller and recorded
in the payload under ``skipped_suites``.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench", REPO_ROOT / "benchmarks" / "run_bench.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("run_bench", module)
    spec.loader.exec_module(module)
    return module


run_bench = _load_run_bench()

STATS_A = {"min": 1.0, "median": 1.5, "mean": 1.6, "stddev": 0.1,
           "rounds": 5}
STATS_B = {"min": 2.0, "median": 2.5, "mean": 2.6, "stddev": 0.2,
           "rounds": 5}
STATS_FRESH = {"min": 0.5, "median": 0.7, "mean": 0.8, "stddev": 0.05,
               "rounds": 9}

COMMITTED = {
    "suites": ["alpha.py", "beta.py"],
    "by_suite": {"alpha.py": ["test_a"], "beta.py": ["test_b"]},
    "units": "seconds",
    "baseline": {"test_a": STATS_A, "test_b": STATS_B},
    "results": {"test_a": STATS_A, "test_b": STATS_B},
}


def test_full_run_reports_no_skips():
    payload, skipped = run_bench.merge_payload(
        COMMITTED,
        {"alpha.py": {"test_a": STATS_FRESH},
         "beta.py": {"test_b": STATS_FRESH}},
        ("alpha.py", "beta.py"))
    assert skipped == []
    assert payload["skipped_suites"] == []
    assert payload["results"] == {"test_a": STATS_FRESH,
                                  "test_b": STATS_FRESH}


def test_partial_run_reports_skipped_suite_and_carries_results():
    payload, skipped = run_bench.merge_payload(
        COMMITTED,
        {"alpha.py": {"test_a": STATS_FRESH}},
        ("alpha.py", "beta.py"))
    assert skipped == ["beta.py"]
    assert payload["skipped_suites"] == ["beta.py"]
    # carried forward, not dropped — partial runs must not clobber
    assert payload["results"]["test_b"] == STATS_B
    assert payload["results"]["test_a"] == STATS_FRESH
    assert payload["by_suite"]["beta.py"] == ["test_b"]


def test_baseline_backfills_only_unseen_tests():
    payload, _ = run_bench.merge_payload(
        COMMITTED,
        {"alpha.py": {"test_a": STATS_FRESH, "test_a_new": STATS_FRESH}},
        ("alpha.py", "beta.py"))
    # frozen entries survive a faster fresh run
    assert payload["baseline"]["test_a"] == STATS_A
    # a test the baseline has never seen gets seeded from this run
    assert payload["baseline"]["test_a_new"] == STATS_FRESH
    assert sorted(payload["by_suite"]["alpha.py"]) == \
        ["test_a", "test_a_new"]


def test_new_suite_joins_suites_list_without_erasing_committed():
    payload, skipped = run_bench.merge_payload(
        COMMITTED,
        {"gamma.py": {"test_g": STATS_FRESH}},
        ("alpha.py", "beta.py", "gamma.py"))
    assert payload["suites"] == ["alpha.py", "beta.py", "gamma.py"]
    assert skipped == ["alpha.py", "beta.py"]
    assert payload["by_suite"]["gamma.py"] == ["test_g"]
    assert payload["results"]["test_g"] == STATS_FRESH
    assert payload["results"]["test_a"] == STATS_A


def test_legacy_committed_file_without_by_suite():
    legacy = {"suites": ["alpha.py"], "units": "seconds",
              "baseline": {"test_a": STATS_A},
              "results": {"test_a": STATS_A}}
    payload, skipped = run_bench.merge_payload(
        legacy, {"alpha.py": {"test_a": STATS_FRESH}}, ("alpha.py",))
    assert skipped == []
    assert payload["by_suite"] == {"alpha.py": ["test_a"]}

    # and with the suite not run at all: skipped, nothing invented
    payload, skipped = run_bench.merge_payload(
        legacy, {}, ("alpha.py",))
    assert skipped == ["alpha.py"]
    assert payload["results"] == {"test_a": STATS_A}
    assert payload["by_suite"] == {}


def test_tiers_suite_is_registered():
    assert any(s.name == "test_perf_tiers.py" for s in run_bench.SUITES)
