"""Shared-memory shipping round-trips columns bit-identically."""

import numpy as np
import pytest

from repro.netsim.packets import (
    NUMERIC_FIELDS,
    DictColumn,
    PacketColumns,
    PacketRecord,
)
from repro.parallel import attach_arrays, pack_arrays, shm_available
from repro.parallel.shm import pack_columns

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no POSIX shared memory here")


def _packets(n, ips=("10.0.0.1", "9.9.0.7")):
    return [PacketRecord(
        timestamp=i * 0.5, src_ip=ips[i % len(ips)], dst_ip=ips[0],
        src_port=40_000 + i, dst_port=53 if i % 2 else 443,
        protocol=17 if i % 2 else 6, size=100 + i, payload_len=i % 7,
        flags=0, ttl=60, payload=bytes([i % 251]) * (i % 5), flow_id=i,
        app="dns" if i % 2 else "web", label="", direction="in",
    ) for i in range(n)]


def _decoded(column, n):
    """Per-row values of a column regardless of its encoding."""
    if isinstance(column, DictColumn):
        return [column.decode(i) for i in range(n)]
    return [int(column[i]) for i in range(n)]


def test_pack_attach_arrays_round_trip():
    arrays = {
        "a": np.arange(10, dtype=np.float64),
        "b": np.arange(7, dtype=np.uint32),
        "c": np.array([1, 2, 3], dtype=np.int64),
        "empty": np.zeros(0, dtype=np.uint8),
    }
    handle, shipment = pack_arrays(arrays)
    try:
        shm, views = attach_arrays(shipment)
        try:
            for name, array in arrays.items():
                assert views[name].dtype == array.dtype
                assert np.array_equal(views[name], array)
        finally:
            shm.close()
    finally:
        handle.close()
        handle.unlink()


@pytest.mark.parametrize("weird_ips", [False, True])
@pytest.mark.parametrize("with_payload", [False, True])
def test_pack_columns_round_trip(weird_ips, with_payload):
    ips = ("not-an-ip", "10.0.0") if weird_ips else ("10.0.0.1", "9.9.0.7")
    cols = PacketColumns.from_records(_packets(23, ips=ips))
    if weird_ips:
        assert isinstance(cols.src_ip, DictColumn)
    handle, shipment = pack_columns(cols, with_payload=with_payload)
    try:
        shm, rebuilt = shipment.attach()
        try:
            for fld in NUMERIC_FIELDS:
                assert np.array_equal(getattr(rebuilt, fld),
                                      getattr(cols, fld))
            if with_payload:
                originals = list(cols.iter_records())
                assert list(rebuilt.payload) == [p.payload
                                                 for p in originals]
                assert list(rebuilt.iter_records()) == originals
            else:
                # records-free shipment: payload stays home, every
                # other column still matches value for value
                assert rebuilt.payload is None
                for fld in ("src_ip", "dst_ip", "direction", "app",
                            "label"):
                    assert _decoded(getattr(rebuilt, fld), len(cols)) \
                        == _decoded(getattr(cols, fld), len(cols))
        finally:
            shm.close()
    finally:
        handle.close()
        handle.unlink()
