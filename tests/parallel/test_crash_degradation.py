"""A worker crash mid-query degrades to serial — with identical answers.

The chaos kind ``parallel.worker_crash`` fires inside worker processes
on the injector's deterministic schedule; the executor's recovery path
re-runs the batch serially in the parent and records the fallback in
the :class:`DegradationLedger`.  Results must not change.
"""

import numpy as np
import pytest

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec
from repro.chaos.resilience import DegradationLedger
from repro.datastore.query import Query
from repro.datastore.store import DataStore, ShardedDataStore
from repro.learning.features import FeatureConfig, SourceWindowFeaturizer
from repro.netsim.packets import PacketColumns, PacketRecord
from repro.parallel import ParallelExecutor, shm_available

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="needs shared memory")


def _packets(n=2000):
    return [PacketRecord(
        timestamp=(i % 600) * 0.05, src_ip=f"10.0.{i % 7}.{i % 50}",
        dst_ip="9.9.0.7", src_port=40_000 + (i % 900),
        dst_port=53 if i % 3 else 443, protocol=17 if i % 3 else 6,
        size=100 + (i % 300), payload_len=0, flags=0, ttl=60, payload=b"",
        flow_id=i % 13, app="dns" if i % 3 else "web",
        label="scan" if i % 29 == 0 else "", direction="in",
    ) for i in range(n)]


def _crash_executor(ledger):
    plan = FaultPlan(name="worker-crash", seed=3,
                     specs=(FaultSpec(FaultKind.WORKER_CRASH, rate=1.0),))
    return ParallelExecutor(workers=2, ledger=ledger,
                            fault_injector=plan.injector())


def test_crash_mid_query_degrades_to_serial_with_same_answers():
    packets = _packets()
    serial = DataStore()
    serial.ingest_packets(list(packets))

    ledger = DegradationLedger()
    with _crash_executor(ledger) as ex:
        sharded = ShardedDataStore(n_shards=4, executor=ex)
        sharded.ingest_packets(PacketColumns.from_records(list(packets)))
        query = Query(collection="packets", where={"dst_port": 53},
                      order_by_time=True)
        got = [(s.rid, s.record) for s in sharded.query(query)]
        want = [(s.rid, s.record) for s in serial.query(query)]

    assert got == want
    assert ledger.degraded("parallel")
    entry = next(e for e in ledger.entries if e.stage == "parallel")
    assert entry.mode == "serial-fallback"
    assert "crash" in entry.reason


def test_crash_mid_featurize_degrades_to_serial_with_same_dataset():
    packets = _packets()
    serial = DataStore()
    serial.ingest_packets(list(packets))
    featurizer = SourceWindowFeaturizer(
        FeatureConfig(window_s=5.0, min_packets=1))
    want = featurizer.from_store(serial)

    ledger = DegradationLedger()
    with _crash_executor(ledger) as ex:
        sharded = ShardedDataStore(n_shards=4, executor=ex)
        sharded.ingest_packets(PacketColumns.from_records(list(packets)))
        got = featurizer.from_store(sharded, executor=ex)

    assert np.array_equal(want.X, got.X)
    assert np.array_equal(want.y, got.y)
    assert want.keys == got.keys
    assert ledger.degraded("parallel")


def test_crash_replay_is_deterministic():
    """Same plan seed => same degradation ledger shape, twice."""
    def run():
        ledger = DegradationLedger()
        with _crash_executor(ledger) as ex:
            sharded = ShardedDataStore(n_shards=2, executor=ex)
            sharded.ingest_packets(
                PacketColumns.from_records(_packets(800)))
            sharded.query(Query(collection="packets", order_by_time=True))
        return [(e.stage, e.mode) for e in ledger.entries]

    assert run() == run()
