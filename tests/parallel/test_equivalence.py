"""Sharded + parallel execution is bit-identical to serial execution.

The substrate's contract: for any shard count and worker count, ingest
order (record ids), query results (records *and* their order), and
featurized datasets are exactly what the serial, unsharded pipeline
produces.  Worker-process equivalence runs on fixed seeds (forking
inside hypothesis would be slow); the sharding logic itself is
property-tested across adversarial window boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capture.metadata import MetadataExtractor
from repro.datastore.query import Query
from repro.datastore.store import DataStore, ShardedDataStore
from repro.learning.features import FeatureConfig, SourceWindowFeaturizer
from repro.netsim.packets import PacketColumns, PacketRecord
from repro.parallel import ParallelExecutor, shm_available

WINDOW_S = 5.0
IPS = ["10.0.0.1", "10.0.0.2", "9.9.0.7", "192.168.1.20", "10.0.0"]
PORTS = [53, 80, 443, 40_001]
# timestamps hugging window boundaries: exact multiples, one ulp each
# side, and plain interior points
BOUNDARY_TIMES = sorted(
    {t for k in range(0, 5) for t in (
        k * WINDOW_S,
        float(np.nextafter(k * WINDOW_S, -np.inf)),
        float(np.nextafter(k * WINDOW_S, np.inf)),
        k * WINDOW_S + 1.7,
    ) if t >= 0.0}
)


def packet_strategy():
    return st.builds(
        PacketRecord,
        timestamp=st.sampled_from(BOUNDARY_TIMES),
        src_ip=st.sampled_from(IPS),
        dst_ip=st.sampled_from(IPS),
        src_port=st.sampled_from(PORTS),
        dst_port=st.sampled_from(PORTS),
        protocol=st.sampled_from([6, 17]),
        size=st.integers(min_value=40, max_value=1500),
        payload_len=st.integers(min_value=0, max_value=1460),
        flags=st.just(0), ttl=st.just(60),
        payload=st.sampled_from([b"", b"\x16\x03\x03\x01www.example.edu"]),
        flow_id=st.integers(min_value=0, max_value=9),
        app=st.sampled_from(["web", "dns", ""]),
        label=st.sampled_from(["", "benign", "scan"]),
        direction=st.sampled_from(["in", "out"]),
    )


def _serial_store(packets):
    store = DataStore(metadata_extractor=MetadataExtractor(),
                      segment_capacity=64)
    store.ingest_packets(list(packets))
    return store

def _sharded_store(packets, n_shards, columnar, executor=None):
    store = ShardedDataStore(n_shards=n_shards,
                             metadata_extractor=MetadataExtractor(),
                             segment_capacity=64, window_s=WINDOW_S,
                             executor=executor)
    batch = PacketColumns.from_records(list(packets)) if columnar \
        else list(packets)
    store.ingest_packets(batch)
    return store


def _snapshot(store, query):
    return [(s.rid, s.record, s.tags) for s in store.query(query)]


QUERIES = [
    Query(collection="packets", order_by_time=True),
    Query(collection="packets", order_by_time=False),
    Query(collection="packets", time_range=(4.0, 11.0),
          order_by_time=True),
    Query(collection="packets", where={"dst_port": 53},
          order_by_time=True),
    Query(collection="packets", where={"src_ip": "10.0.0.1"},
          order_by_time=False),
    Query(collection="packets", order_by_time=True, limit=7),
    Query(collection="packets", tags={"proto": "udp"},
          order_by_time=True),
]


@settings(max_examples=15, deadline=None)
@given(packets=st.lists(packet_strategy(), min_size=1, max_size=150),
       n_shards=st.sampled_from([1, 2, 4, 8]),
       columnar=st.booleans())
def test_sharded_store_matches_serial(packets, n_shards, columnar):
    serial = _serial_store(packets)
    sharded = _sharded_store(packets, n_shards, columnar)
    assert sharded.count("packets") == serial.count("packets")
    for query in QUERIES:
        assert _snapshot(sharded, query) == _snapshot(serial, query)


@settings(max_examples=10, deadline=None)
@given(packets=st.lists(packet_strategy(), min_size=1, max_size=150),
       n_shards=st.sampled_from([1, 2, 4, 8]),
       columnar=st.booleans())
def test_sharded_featurize_matches_serial(packets, n_shards, columnar):
    featurizer = SourceWindowFeaturizer(
        FeatureConfig(window_s=WINDOW_S, min_packets=1))
    serial = featurizer.from_store(_serial_store(packets))
    sharded = featurizer.from_store(_sharded_store(packets, n_shards,
                                                   columnar))
    assert np.array_equal(serial.X, sharded.X)
    assert np.array_equal(serial.y, sharded.y)
    assert serial.keys == sharded.keys
    assert serial.class_names == sharded.class_names


@pytest.mark.skipif(not shm_available(), reason="needs shared memory")
def test_worker_processes_match_serial_end_to_end():
    """Real worker pool: query + featurize identical to serial, and the
    tasks demonstrably ran in workers."""
    rng = np.random.default_rng(7)
    packets = [PacketRecord(
        timestamp=float(rng.uniform(0.0, 30.0)),
        src_ip=IPS[int(rng.integers(len(IPS)))],
        dst_ip=IPS[int(rng.integers(len(IPS) - 1))],
        src_port=int(rng.integers(1024, 60_000)),
        dst_port=int(PORTS[int(rng.integers(len(PORTS)))]),
        protocol=int(rng.choice([6, 17])), size=int(rng.integers(40, 1500)),
        payload_len=0, flags=0, ttl=60, payload=b"", flow_id=int(i % 11),
        app="web", label="scan" if i % 17 == 0 else "",
        direction="in" if i % 2 else "out",
    ) for i in range(3000)]

    serial = _serial_store(packets)
    featurizer = SourceWindowFeaturizer(
        FeatureConfig(window_s=WINDOW_S, min_packets=1))
    serial_ds = featurizer.from_store(serial)

    with ParallelExecutor(workers=2) as ex:
        sharded = _sharded_store(packets, 4, columnar=True, executor=ex)
        for query in QUERIES:
            assert _snapshot(sharded, query) == _snapshot(serial, query)
        parallel_ds = featurizer.from_store(sharded, executor=ex)
        assert ex.tasks_in_workers > 0
        assert ex.summary()["pool_failures"] == 0

    assert np.array_equal(serial_ds.X, parallel_ds.X)
    assert np.array_equal(serial_ds.y, parallel_ds.y)
    assert serial_ds.keys == parallel_ds.keys


def test_workers_zero_falls_back_to_serial_paths():
    """The workers=0 configuration (CI's guaranteed path) produces the
    same answers with zero worker tasks."""
    packets = [PacketRecord(
        timestamp=i * 0.01, src_ip=IPS[i % 4], dst_ip=IPS[(i + 1) % 4],
        src_port=40_000 + i, dst_port=PORTS[i % len(PORTS)],
        protocol=6, size=100, payload_len=0, flags=0, ttl=60, payload=b"",
        flow_id=i % 5, app="web", label="", direction="in",
    ) for i in range(500)]
    serial = _serial_store(packets)
    ex = ParallelExecutor(workers=0)
    sharded = _sharded_store(packets, 4, columnar=True, executor=ex)
    for query in QUERIES:
        assert _snapshot(sharded, query) == _snapshot(serial, query)
    assert ex.tasks_in_workers == 0
