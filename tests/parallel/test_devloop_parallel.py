"""Slow-loop parallelism: CV folds and per-class develop as task graphs."""

import numpy as np
import pytest

from repro.core.devloop import DevelopmentLoop
from repro.learning.dataset import Dataset
from repro.parallel import ParallelExecutor


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    n = 200
    X = rng.normal(size=(n, 4))
    y = np.zeros(n, dtype=int)
    y[X[:, 0] > 0.5] = 1
    y[X[:, 1] > 0.9] = 2
    return Dataset(X, y, [f"f{i}" for i in range(4)],
                   ["benign", "scan", "exfil"])


def test_cross_validate_serial(dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    summary = loop.cross_validate(dataset, k=4, seed=1)
    assert "accuracy" in summary
    assert len(summary["accuracy"]["folds"]) == 4
    assert 0.0 <= summary["accuracy"]["mean"] <= 1.0


def test_cross_validate_parallel_matches_serial(dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    serial = loop.cross_validate(dataset, k=3, seed=2)
    with ParallelExecutor(workers=2) as ex:
        parallel = loop.cross_validate(dataset, k=3, seed=2, executor=ex)
        assert ex.tasks_in_workers > 0
    assert serial == parallel


def test_cross_validate_rejects_bad_k(dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    with pytest.raises(ValueError):
        loop.cross_validate(dataset, k=1)
    with pytest.raises(ValueError):
        loop.cross_validate(dataset, k=len(dataset) + 1)


def test_develop_per_class_serial(dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    summary = loop.develop_per_class(dataset, seed=1)
    assert set(summary) == {"scan", "exfil"}
    for entry in summary.values():
        assert entry["verified"]
        assert 0.0 <= entry["holdout_fidelity"] <= 1.0
        assert entry["table_entries"] >= 1


def test_develop_per_class_parallel_matches_serial(dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    serial = loop.develop_per_class(dataset, seed=4)
    with ParallelExecutor(workers=2) as ex:
        parallel = loop.develop_per_class(dataset, seed=4, executor=ex)
        assert ex.tasks_in_workers > 0
    assert serial == parallel


def test_develop_per_class_rejects_unknown_class(dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    with pytest.raises(ValueError, match="unknown"):
        loop.develop_per_class(dataset, classes=["nope"])
