"""Shard routing: scalar and vectorized assignment must agree exactly."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.packets import PacketColumns, PacketRecord
from repro.parallel import ShardRouter

IPS = ["10.0.0.1", "10.0.0.2", "9.9.0.7", "192.168.1.20"]
WEIRD_IPS = ["host.example", "10.0.0", "::1"]
PORTS = [53, 443, 40_001]


def packet_strategy(ips):
    return st.builds(
        PacketRecord,
        timestamp=st.floats(min_value=0.0, max_value=60.0,
                            allow_nan=False, allow_infinity=False),
        src_ip=st.sampled_from(ips),
        dst_ip=st.sampled_from(ips),
        src_port=st.sampled_from(PORTS),
        dst_port=st.sampled_from(PORTS),
        protocol=st.sampled_from([1, 6, 17]),
        size=st.just(100), payload_len=st.just(0),
        flags=st.just(0), ttl=st.just(60),
        payload=st.just(b""), flow_id=st.integers(0, 5),
        app=st.just("web"), label=st.just(""),
        direction=st.sampled_from(["in", "out"]),
    )


@settings(max_examples=40, deadline=None)
@given(packets=st.lists(packet_strategy(IPS + WEIRD_IPS), min_size=1,
                        max_size=120),
       n_shards=st.sampled_from([1, 2, 4, 8]))
def test_scalar_and_vectorized_assignment_agree(packets, n_shards):
    router = ShardRouter(n_shards)
    scalar = router.assign_records(packets)
    vectorized = router.assign_columns(PacketColumns.from_records(packets))
    assert list(scalar) == list(vectorized)
    assert all(0 <= s < n_shards for s in scalar)


@settings(max_examples=25, deadline=None)
@given(packets=st.lists(packet_strategy(IPS), min_size=1, max_size=80),
       n_shards=st.sampled_from([2, 4, 8]))
def test_partition_positions_is_a_partition(packets, n_shards):
    router = ShardRouter(n_shards)
    assignments = np.asarray(router.assign_records(packets), dtype=np.int64)
    parts = router.partition_positions(assignments)
    assert len(parts) == n_shards
    seen = np.concatenate([p for p in parts]) if packets else np.array([])
    assert sorted(seen.tolist()) == list(range(len(packets)))
    for shard_id, positions in enumerate(parts):
        assert all(assignments[p] == shard_id for p in positions.tolist())


def _packet(**overrides):
    base = dict(timestamp=3.0, src_ip="10.0.0.1", dst_ip="9.9.0.7",
                src_port=40_001, dst_port=53, protocol=17, size=100,
                payload_len=0, flags=0, ttl=60, payload=b"", flow_id=0,
                app="dns", label="", direction="in")
    base.update(overrides)
    return PacketRecord(**base)


def test_flow_key_is_direction_insensitive():
    """Both directions of a conversation land on the same shard."""
    router = ShardRouter(8)
    fwd = _packet()
    rev = _packet(src_ip="9.9.0.7", dst_ip="10.0.0.1",
                  src_port=53, dst_port=40_001, direction="out")
    assert router.shard_of(fwd) == router.shard_of(rev)


def test_window_changes_shard_over_time():
    """The same flow spreads across shards as windows advance."""
    router = ShardRouter(8, window_s=5.0)
    shards = {router.shard_of(_packet(timestamp=t))
              for t in np.arange(0.0, 200.0, 5.0)}
    assert len(shards) > 1


def test_nonfinite_timestamps_route_deterministically():
    router = ShardRouter(4)
    weird = [_packet(timestamp=math.nan), _packet(timestamp=math.inf),
             _packet(timestamp=-math.inf)]
    scalar = router.assign_records(weird)
    vectorized = router.assign_columns(PacketColumns.from_records(weird))
    assert list(scalar) == list(vectorized)


def test_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        ShardRouter(0)
