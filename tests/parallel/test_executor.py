"""ParallelExecutor: serial fallback, shippability, crash recovery."""

import pytest

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec
from repro.chaos.resilience import DegradationLedger
from repro.core.eventbus import EventBus
from repro.parallel import NonShippableTaskError, ParallelExecutor


def _square(x):
    return x * x


def _add(a, b):
    return a + b


def test_workers_zero_runs_serial_in_process():
    ex = ParallelExecutor(workers=0)
    assert not ex.parallel
    assert ex.map_tasks(_square, [(i,) for i in range(5)]) == \
        [0, 1, 4, 9, 16]
    assert ex.tasks_run == 5
    assert ex.tasks_in_workers == 0


def test_workers_run_in_pool_with_ordered_results():
    with ParallelExecutor(workers=2) as ex:
        assert ex.map_tasks(_add, [(i, 10) for i in range(8)]) == \
            [i + 10 for i in range(8)]
        assert ex.tasks_in_workers == 8


def test_empty_batch_is_a_noop():
    ex = ParallelExecutor(workers=0)
    assert ex.map_tasks(_square, []) == []


def test_rejects_negative_workers():
    with pytest.raises(ValueError):
        ParallelExecutor(workers=-1)


def test_lambda_tasks_are_refused():
    with ParallelExecutor(workers=1) as ex:
        with pytest.raises(NonShippableTaskError, match="REP305"):
            ex.map_tasks(lambda x: x, [(1,)])


def test_closure_tasks_are_refused():
    def local_task(x):
        return x

    with ParallelExecutor(workers=1) as ex:
        with pytest.raises(NonShippableTaskError):
            ex.map_tasks(local_task, [(1,)])


def test_live_platform_objects_are_refused_as_arguments():
    with ParallelExecutor(workers=1) as ex:
        with pytest.raises(NonShippableTaskError, match="EventBus"):
            ex.map_tasks(_square, [(EventBus(),)])


def test_injected_worker_crash_degrades_to_serial():
    plan = FaultPlan(name="crashy", seed=11,
                     specs=(FaultSpec(FaultKind.WORKER_CRASH, rate=1.0),))
    ledger = DegradationLedger()
    with ParallelExecutor(workers=1, ledger=ledger,
                          fault_injector=plan.injector()) as ex:
        results = ex.map_tasks(_square, [(i,) for i in range(4)])
    assert results == [0, 1, 4, 9]
    assert ledger.degraded("parallel")
    assert any("crash" in entry.reason for entry in ledger.entries)


def test_repeated_failures_disable_the_pool():
    plan = FaultPlan(name="crashy", seed=11,
                     specs=(FaultSpec(FaultKind.WORKER_CRASH, rate=1.0),))
    ledger = DegradationLedger()
    with ParallelExecutor(workers=1, ledger=ledger,
                          fault_injector=plan.injector()) as ex:
        assert ex.parallel
        for _ in range(3):
            ex.map_tasks(_square, [(2,)])
        # after the failure cap the executor stops even trying workers
        assert not ex.parallel
        assert ex.map_tasks(_square, [(3,)]) == [9]
    assert len(ledger.entries) >= 2


def test_serial_results_match_parallel_results():
    tasks = [(i, i + 1) for i in range(12)]
    serial = ParallelExecutor(workers=0).map_tasks(_add, tasks)
    with ParallelExecutor(workers=2) as ex:
        assert ex.map_tasks(_add, tasks) == serial
