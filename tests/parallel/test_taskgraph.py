"""TaskGraph: dependency-aware scheduling with deterministic results."""

import pytest

from repro.parallel import Dep, ParallelExecutor, TaskGraph


def _const(value):
    return value


def _add(a, b):
    return a + b


def _join(*parts):
    return list(parts)


def test_dep_results_substitute_into_arguments():
    graph = TaskGraph()
    graph.add("a", _const, 2)
    graph.add("b", _const, 3)
    graph.add("sum", _add, Dep("a"), Dep("b"))
    results = graph.run(ParallelExecutor(0))
    assert results == {"a": 2, "b": 3, "sum": 5}


def test_diamond_runs_and_joins():
    graph = TaskGraph()
    graph.add("root", _const, 1)
    graph.add("left", _add, Dep("root"), 10)
    graph.add("right", _add, Dep("root"), 20)
    graph.add("join", _join, Dep("left"), Dep("right"))
    assert graph.run(ParallelExecutor(0))["join"] == [11, 21]


def test_duplicate_name_rejected():
    graph = TaskGraph()
    graph.add("a", _const, 1)
    with pytest.raises(ValueError):
        graph.add("a", _const, 2)


def test_unknown_dependency_rejected():
    graph = TaskGraph()
    graph.add("a", _add, Dep("missing"), 1)
    with pytest.raises(ValueError, match="missing"):
        graph.run(ParallelExecutor(0))


def test_cycle_detected():
    graph = TaskGraph()
    graph.add("a", _const, 1, deps=("b",))
    graph.add("b", _const, 2, deps=("a",))
    with pytest.raises(ValueError):
        graph.run(ParallelExecutor(0))


def test_same_wave_same_fn_batches_through_map_tasks():
    class Recorder(ParallelExecutor):
        def __init__(self):
            super().__init__(workers=0)
            self.batches = []

        def map_tasks(self, fn, tasks):
            tasks = list(tasks)
            self.batches.append((fn, len(tasks)))
            return super().map_tasks(fn, tasks)

    recorder = Recorder()
    graph = TaskGraph()
    for i in range(4):
        graph.add(f"leaf-{i}", _const, i)
    graph.add("join", _join, *[Dep(f"leaf-{i}") for i in range(4)])
    results = graph.run(recorder)
    assert results["join"] == [0, 1, 2, 3]
    # the four _const leaves went out as ONE batch, then the join
    assert (_const, 4) in recorder.batches


def test_parallel_and_serial_graphs_agree():
    def build():
        graph = TaskGraph()
        graph.add("x", _const, 5)
        graph.add("y", _add, Dep("x"), 7)
        graph.add("z", _add, Dep("y"), 100)
        return graph

    serial = build().run(ParallelExecutor(0))
    with ParallelExecutor(workers=2) as ex:
        parallel = build().run(ex)
    assert serial == parallel
