"""Detection-quality scoring and collateral accounting."""

import pytest

from repro.deploy.switch import Detection
from repro.events.base import EventWindow, GroundTruth
from repro.netsim.flows import Flow
from repro.netsim.packets import FiveTuple
from repro.testbed import evaluate_detections, measure_collateral


def _detection(window_start, endpoint, decided_at=None, acted=True):
    return Detection(
        window_start=window_start, endpoint=endpoint,
        class_name="ddos-dns-amp", confidence=0.95,
        decided_at=decided_at if decided_at is not None else window_start + 7,
        effective_at=window_start + 7, acted=acted,
    )


def _ground_truth():
    gt = GroundTruth()
    gt.add(EventWindow(kind="ddos", label="ddos-dns-amp",
                       start_time=100.0, end_time=130.0,
                       victims=["10.0.0.5"],
                       actors=["1.1.1.1", "2.2.2.2"]))
    return gt


def test_precision_recall_delay():
    gt = _ground_truth()
    detections = [
        _detection(105.0, "1.1.1.1"),         # TP
        _detection(110.0, "2.2.2.2"),         # TP
        _detection(105.0, "9.9.9.9"),         # FP: not an actor
        _detection(500.0, "1.1.1.1"),         # FP: way outside window
    ]
    quality = evaluate_detections(detections, gt, slack_s=30.0)
    assert quality.true_positives == 2
    assert quality.false_positives == 2
    assert quality.precision == pytest.approx(0.5)
    assert quality.actors_total == 2
    assert quality.recall == 1.0
    assert quality.detection_delay_s == pytest.approx(12.0)   # 112 - 100
    assert 0 < quality.f1 < 1


def test_no_detections():
    quality = evaluate_detections([], _ground_truth())
    assert quality.precision == 0.0
    assert quality.recall == 0.0
    assert quality.detection_delay_s is None


def test_repeated_detections_of_same_actor_count_once_for_recall():
    gt = _ground_truth()
    detections = [_detection(105.0 + i, "1.1.1.1") for i in range(5)]
    quality = evaluate_detections(detections, gt)
    assert quality.actors_detected == 1
    assert quality.recall == pytest.approx(0.5)
    assert quality.true_positives == 5


def _flow(src, dst, label, start, end, transferred=1000.0):
    flow = Flow(flow_id=1, key=FiveTuple(src, dst, 1, 2, 6),
                src_node="a", dst_node="b", size_bytes=transferred,
                label=label)
    flow.start_time = start
    flow.end_time = end
    flow.transferred_bytes = transferred
    return flow


def test_collateral_accounting():
    mitigations = {"1.1.1.1": 100.0}
    flows = [
        _flow("1.1.1.1", "10.0.0.5", "ddos-dns-amp", 90, 120),   # attack hit
        _flow("10.0.0.7", "1.1.1.1", "benign", 110, 115),        # benign hit
        _flow("10.0.0.7", "8.8.8.8", "benign", 110, 115),        # untouched
        _flow("1.1.1.1", "10.0.0.5", "ddos-dns-amp", 50, 80),    # before
    ]
    report = measure_collateral(flows, mitigations)
    assert report.attack_flows_total == 2
    assert report.attack_flows_hit == 1
    assert report.benign_flows_total == 2
    assert report.benign_flows_hit == 1
    assert report.collateral_fraction == pytest.approx(0.5)
    assert report.attack_coverage == pytest.approx(0.5)


def test_collateral_empty():
    report = measure_collateral([], {})
    assert report.collateral_fraction == 0.0
    assert report.attack_coverage == 0.0
