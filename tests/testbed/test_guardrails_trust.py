"""Guardrails and the operator trust model."""

import pytest

from repro.testbed import Guardrail, OperatorTrustModel, ReviewOutcome, \
    standard_guardrails


class TestGuardrails:
    def test_max_comparator(self):
        rail = Guardrail("fp", "false_positive_rate", 0.1, "max")
        assert rail.check({"false_positive_rate": 0.05}) is None
        violation = rail.check({"false_positive_rate": 0.2})
        assert violation is not None
        assert violation.observed == 0.2
        assert "fp" in violation.message

    def test_min_comparator(self):
        rail = Guardrail("recall", "recall", 0.5, "min")
        assert rail.check({"recall": 0.9}) is None
        assert rail.check({"recall": 0.3}) is not None

    def test_missing_metric_is_not_violation(self):
        rail = Guardrail("x", "nonexistent", 0.5)
        assert rail.check({}) is None

    def test_standard_set(self):
        rails = standard_guardrails()
        names = {r.name for r in rails}
        assert names == {"precision-floor", "recall-floor",
                         "collateral-ceiling"}
        good = {"false_positive_rate": 0.01, "recall": 0.95,
                "collateral_fraction": 0.001}
        assert all(r.check(good) is None for r in rails)
        bad = {"false_positive_rate": 0.5, "recall": 0.1,
               "collateral_fraction": 0.2}
        assert sum(1 for r in rails if r.check(bad)) == 3


class TestTrust:
    def test_agreed_reviews_build_trust_slowly(self):
        model = OperatorTrustModel(initial_trust=0.2)
        for _ in range(20):
            model.review(ReviewOutcome.AGREED, evidence_strength=1.0)
        assert 0.5 < model.trust < 1.0

    def test_surprise_builds_faster_than_agreement(self):
        agree = OperatorTrustModel(initial_trust=0.2)
        surprise = OperatorTrustModel(initial_trust=0.2)
        for _ in range(5):
            agree.review(ReviewOutcome.AGREED, 1.0)
            surprise.review(ReviewOutcome.SURPRISED_CORRECT, 1.0)
        assert surprise.trust > agree.trust

    def test_incorrect_decisions_hurt_fast(self):
        model = OperatorTrustModel(initial_trust=0.8)
        model.review(ReviewOutcome.INCORRECT)
        assert model.trust < 0.6
        gains_per_mistake = 0
        while model.trust < 0.8 and gains_per_mistake < 100:
            model.review(ReviewOutcome.AGREED, 1.0)
            gains_per_mistake += 1
        assert gains_per_mistake > 3     # asymmetry: slow to rebuild

    def test_trust_bounded(self):
        model = OperatorTrustModel(initial_trust=0.99)
        for _ in range(50):
            model.review(ReviewOutcome.SURPRISED_CORRECT, 1.0)
        assert model.trust <= 1.0
        for _ in range(50):
            model.review(ReviewOutcome.INCORRECT)
        assert model.trust >= 0.0

    def test_zero_evidence_strength_no_gain(self):
        model = OperatorTrustModel(initial_trust=0.3)
        model.review(ReviewOutcome.AGREED, evidence_strength=0.0)
        assert model.trust == pytest.approx(0.3)

    def test_deploy_threshold_and_trajectory(self):
        model = OperatorTrustModel(initial_trust=0.2,
                                   deploy_threshold=0.5)
        assert not model.would_deploy
        for _ in range(10):
            model.review(ReviewOutcome.SURPRISED_CORRECT, 1.0)
        assert model.would_deploy
        assert len(model.trajectory()) == 10
        assert model.trajectory() == sorted(model.trajectory())

    def test_review_evidence_routing(self):
        from repro.xai.evidence import DecisionEvidence

        evidence = DecisionEvidence(predicted_class=1,
                                    predicted_label="ddos",
                                    confidence=0.9, clauses=[],
                                    leaf_support=100)
        model = OperatorTrustModel(initial_trust=0.5)
        model.review_evidence(evidence, correct=True, surprising=True)
        up = model.trust
        assert up > 0.5
        model.review_evidence(evidence, correct=False)
        assert model.trust < up

    def test_invalid_initial_trust(self):
        with pytest.raises(ValueError):
            OperatorTrustModel(initial_trust=1.5)
