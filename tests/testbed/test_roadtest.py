"""The staged road-test pipeline."""

import pytest

from repro.deploy.switch import SwitchConfig
from repro.events import DnsAmplificationAttack, Scenario
from repro.netsim import make_campus
from repro.testbed import DeploymentPhase, Guardrail, RoadTestPipeline
from tests.deploy.test_switch import _ddos_classifier


def _run_factory(seed):
    net = make_campus("tiny", seed=seed)
    scenario = Scenario("day", duration_s=90.0)
    scenario.add(DnsAmplificationAttack, 20.0, 30.0, attack_gbps=0.05,
                 resolvers=6)
    return net, scenario


def _deploy_fn(network, config):
    from repro.deploy.switch import EmulatedSwitch

    return EmulatedSwitch(network, _ddos_classifier(), config)


def _pipeline(guardrails):
    return RoadTestPipeline(
        run_factory=_run_factory,
        deploy_fn=_deploy_fn,
        base_config=SwitchConfig(window_s=5.0, grace_s=2.0,
                                 confidence_threshold=0.9),
        guardrails=guardrails,
    )


@pytest.fixture(scope="module")
def good_report():
    """A competent tool under permissive guardrails: full promotion."""
    rails = [Guardrail("recall-floor", "recall", 0.2, "min"),
             Guardrail("precision-floor", "false_positive_rate", 0.6,
                       "max")]
    return _pipeline(rails).run(seed=3)


def test_all_phases_run_in_order(good_report):
    assert [p.phase for p in good_report.phases] == [
        DeploymentPhase.SHADOW, DeploymentPhase.CANARY,
        DeploymentPhase.FULL,
    ]
    assert good_report.deployed
    assert good_report.rolled_back_at is None


def test_phase_metrics_populated(good_report):
    for phase in good_report.phases:
        assert set(phase.metrics) >= {"precision", "recall", "f1",
                                      "collateral_fraction",
                                      "attack_coverage", "detections"}
        assert phase.detections > 0


def test_full_phase_covers_attack(good_report):
    full = good_report.phase(DeploymentPhase.FULL)
    assert full.metrics["attack_coverage"] > 0.5


def test_shadow_never_enforces(good_report):
    shadow = good_report.phase(DeploymentPhase.SHADOW)
    assert shadow.metrics["collateral_fraction"] == 0.0
    assert shadow.metrics["attack_coverage"] == 0.0


def test_impossible_guardrail_rolls_back_at_shadow():
    rails = [Guardrail("perfection", "recall", 1.01, "min")]
    report = _pipeline(rails).run(seed=3)
    assert not report.deployed
    assert report.rolled_back_at == DeploymentPhase.SHADOW
    assert len(report.phases) == 1
    assert report.phases[0].violations
