"""Crypto-PAn prefix-preservation properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.privacy.cryptopan import CryptoPan, _int_to_ip, _ip_to_int

KEY = b"0123456789abcdef0123456789abcdef"

ip_ints = st.integers(min_value=0, max_value=2**32 - 1)


@pytest.fixture(scope="module")
def pan():
    return CryptoPan(KEY)


def test_deterministic(pan):
    assert pan.anonymize("10.1.2.3") == pan.anonymize("10.1.2.3")


def test_different_keys_differ():
    a = CryptoPan(KEY).anonymize("10.1.2.3")
    b = CryptoPan(b"another-key-entirely-0123456789a").anonymize("10.1.2.3")
    assert a != b


def test_short_key_rejected():
    with pytest.raises(ValueError):
        CryptoPan(b"short")


def test_subnet_structure_preserved(pan):
    base = [pan.anonymize(f"10.5.7.{h}") for h in range(1, 20)]
    prefixes = {tuple(ip.split(".")[:3]) for ip in base}
    assert len(prefixes) == 1
    other = pan.anonymize("10.5.8.1")
    assert tuple(other.split(".")[:3]) not in prefixes


@settings(max_examples=100, deadline=None)
@given(ip_ints, ip_ints)
def test_property_exact_prefix_preservation(a, b):
    """shared_prefix(anon(a), anon(b)) == shared_prefix(a, b)."""
    pan = CryptoPan(KEY)
    ip_a, ip_b = _int_to_ip(a), _int_to_ip(b)
    before = pan.shared_prefix_len(ip_a, ip_b)
    after = pan.shared_prefix_len(pan.anonymize(ip_a), pan.anonymize(ip_b))
    assert before == after


@settings(max_examples=50, deadline=None)
@given(st.lists(ip_ints, min_size=2, max_size=40, unique=True))
def test_property_injective(values):
    pan = CryptoPan(KEY)
    anonymized = [pan.anonymize(_int_to_ip(v)) for v in values]
    assert len(set(anonymized)) == len(values)


def test_roundtrip_helpers():
    assert _int_to_ip(_ip_to_int("192.0.2.55")) == "192.0.2.55"
