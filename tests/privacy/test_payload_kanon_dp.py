"""Payload policies, k-anonymity auditing, differential privacy."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.packets import PacketRecord
from repro.privacy import (
    DpAccountant,
    DpBudgetExceeded,
    KAnonymityAuditor,
    PayloadMode,
    PayloadPolicy,
    laplace_noise,
)


def _packet(payload=b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"):
    return PacketRecord(
        timestamp=0.0, src_ip="10.0.0.1", dst_ip="8.8.8.8", src_port=1,
        dst_port=80, protocol=6, size=1000, payload_len=960, flags=0,
        ttl=64, payload=payload, flow_id=1, app="web", label="benign",
        direction="out",
    )


class TestPayloadPolicy:
    def test_keep(self):
        p = _packet()
        original = p.payload
        PayloadPolicy(PayloadMode.KEEP).apply(p)
        assert p.payload == original

    def test_truncate(self):
        p = _packet()
        PayloadPolicy(PayloadMode.TRUNCATE, truncate_bytes=4).apply(p)
        assert p.payload == b"GET "

    def test_hash_is_deterministic_and_opaque(self):
        a, b = _packet(), _packet()
        policy = PayloadPolicy(PayloadMode.HASH)
        policy.apply(a)
        policy.apply(b)
        assert a.payload == b.payload
        assert a.payload != _packet().payload
        assert len(a.payload) == 16

    def test_strip(self):
        p = _packet()
        PayloadPolicy(PayloadMode.STRIP).apply(p)
        assert p.payload == b""

    def test_exempt_service_keeps_payload(self):
        p = _packet()
        policy = PayloadPolicy(PayloadMode.STRIP,
                               exempt_services=frozenset({"dns"}))
        policy.apply(p, service="dns")
        assert p.payload != b""
        policy.apply(p, service="https")
        assert p.payload == b""


class TestKAnonymity:
    class Row:
        def __init__(self, dept, role):
            self.dept = dept
            self.role = role

    def _rows(self):
        rows = [self.Row("cs", "student") for _ in range(10)]
        rows += [self.Row("ee", "student") for _ in range(5)]
        rows += [self.Row("cs", "faculty")]          # unique combination
        return rows

    def test_audit_finds_small_groups(self):
        report = KAnonymityAuditor(k=5).audit(self._rows(),
                                              ["dept", "role"])
        assert not report.satisfied
        assert report.violating_combinations == 1
        assert report.violating_records == 1
        assert report.min_group_size == 1
        assert report.distinct_combinations == 3

    def test_suppress_removes_violators(self):
        auditor = KAnonymityAuditor(k=5)
        kept = auditor.suppress(self._rows(), ["dept", "role"])
        assert len(kept) == 15
        assert auditor.audit(kept, ["dept", "role"]).satisfied

    def test_k_one_always_satisfied(self):
        report = KAnonymityAuditor(k=1).audit(self._rows(), ["dept"])
        assert report.satisfied

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KAnonymityAuditor(k=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=60),
           st.integers(min_value=1, max_value=6))
    def test_property_suppression_achieves_k(self, pairs, k):
        rows = [self.Row(a, b) for a, b in pairs]
        auditor = KAnonymityAuditor(k=k)
        kept = auditor.suppress(rows, ["dept", "role"])
        assert auditor.audit(kept, ["dept", "role"]).satisfied


class TestDp:
    def test_budget_ledger(self):
        acc = DpAccountant(total_epsilon=1.0, seed=1)
        acc.release_count(100, epsilon=0.4)
        acc.release_count(100, epsilon=0.4)
        assert acc.remaining == pytest.approx(0.2)
        with pytest.raises(DpBudgetExceeded):
            acc.release_count(100, epsilon=0.4)

    def test_histogram_single_charge(self):
        acc = DpAccountant(total_epsilon=1.0, seed=1)
        noisy = acc.release_histogram({"a": 10, "b": 20}, epsilon=0.5)
        assert set(noisy) == {"a", "b"}
        assert acc.spent == pytest.approx(0.5)

    def test_noise_scale_matches_epsilon(self):
        rng = np.random.default_rng(0)
        small_eps = [laplace_noise(rng, 1.0, 0.1) for _ in range(3000)]
        large_eps = [laplace_noise(rng, 1.0, 10.0) for _ in range(3000)]
        assert np.std(small_eps) > 10 * np.std(large_eps)
        # Laplace(b) has std b*sqrt(2)
        assert np.std(small_eps) == pytest.approx(10 * np.sqrt(2), rel=0.15)

    def test_noisy_count_unbiasedness(self):
        acc = DpAccountant(total_epsilon=1000.0, seed=2)
        values = [acc.release_count(50, epsilon=1.0) for _ in range(500)]
        assert np.mean(values) == pytest.approx(50.0, abs=0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DpAccountant(total_epsilon=0)
        acc = DpAccountant(total_epsilon=1.0)
        with pytest.raises(ValueError):
            acc.release_count(1, epsilon=-0.5)
        with pytest.raises(ValueError):
            laplace_noise(np.random.default_rng(0), -1.0, 1.0)
