"""Privacy policy presets, ingest transforms, and access arbitration."""

import pytest

from repro.capture.sensors import LogRecord
from repro.datastore import DataStore, Query
from repro.datastore.query import Aggregation
from repro.netsim.packets import PacketRecord
from repro.privacy import (
    AccessArbiter,
    AccessDenied,
    PrivacyLevel,
    PrivacyPolicy,
    Role,
    make_ingest_transform,
)


def _packet(ts=0.0, src="10.1.0.10", dst="8.8.8.8",
            payload=b"\x16\x03\x03\x01lms.campus.edu"):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip=dst, src_port=1234, dst_port=443,
        protocol=6, size=1000, payload_len=960, flags=0, ttl=64,
        payload=payload, flow_id=1, app="web", label="benign",
        direction="out",
    )


def _store_with(level):
    policy = PrivacyPolicy.preset(level)
    store = DataStore()
    store.add_ingest_transform(make_ingest_transform(
        policy, lambda ip: ip.startswith("10.")))
    return store, policy


class TestPolicyPresets:
    def test_none_keeps_everything(self):
        store, _ = _store_with(PrivacyLevel.NONE)
        store.ingest_packets([_packet()])
        record = store.query(Query(collection="packets"))[0].record
        assert record.src_ip == "10.1.0.10"
        assert record.payload != b""

    def test_prefix_preserving_anonymizes_internal_only(self):
        store, policy = _store_with(PrivacyLevel.PREFIX_PRESERVING)
        store.ingest_packets([_packet()])
        record = store.query(Query(collection="packets"))[0].record
        assert record.src_ip != "10.1.0.10"
        assert record.dst_ip == "8.8.8.8"        # external untouched
        assert record.payload != b""

    def test_prefix_preservation_property_survives_ingest(self):
        store, _ = _store_with(PrivacyLevel.PREFIX_PRESERVING)
        store.ingest_packets([_packet(src="10.1.0.10"),
                              _packet(src="10.1.0.99"),
                              _packet(src="10.2.0.10")])
        records = [s.record for s in store.query(Query(collection="packets"))]
        p0 = records[0].src_ip.split(".")
        p1 = records[1].src_ip.split(".")
        p2 = records[2].src_ip.split(".")
        assert p0[:3] == p1[:3]
        assert p0[:2] != p2[:2] or p0[:3] != p2[:3]

    def test_stripped_removes_payload_and_sensitive_tags(self):
        policy = PrivacyPolicy.preset(PrivacyLevel.PAYLOAD_STRIPPED)
        store = DataStore()
        store.add_ingest_transform(make_ingest_transform(
            policy, lambda ip: ip.startswith("10.")))
        transform_input_tags = {"service": "https",
                                "tls_sni": "lms.campus.edu"}
        record, tags = store.ingest_transforms[0](
            "packets", _packet(), dict(transform_input_tags))
        assert record.payload == b""
        assert "tls_sni" not in tags
        assert tags["service"] == "https"

    def test_aggregates_only_drops_row_level(self):
        store, _ = _store_with(PrivacyLevel.AGGREGATES_ONLY)
        assert store.ingest_packets([_packet()]) == 0
        assert store.count("packets") == 0

    def test_log_attrs_anonymized(self):
        store, _ = _store_with(PrivacyLevel.PREFIX_PRESERVING)
        store.ingest_log(LogRecord(
            timestamp=0.0, source="s", kind="k", message="m",
            attrs={"src_ip": "10.1.0.10", "dst_ip": "8.8.8.8"}))
        record = store.query(Query(collection="logs"))[0].record
        assert record.attrs["src_ip"] != "10.1.0.10"
        assert record.attrs["dst_ip"] == "8.8.8.8"


class TestArbiter:
    @pytest.fixture
    def arbiter(self):
        store = DataStore()
        store.ingest_packets([_packet(ts=float(i)) for i in range(10)])
        return AccessArbiter(store, now_fn=lambda: 10.0)

    def test_operator_full_access(self, arbiter):
        hits = arbiter.query(Role.IT_OPERATOR, "alice",
                             Query(collection="packets"))
        assert len(hits) == 10

    def test_external_denied(self, arbiter):
        with pytest.raises(AccessDenied):
            arbiter.query(Role.EXTERNAL, "mallory",
                          Query(collection="packets"))

    def test_student_row_level_denied_but_aggregates_ok(self, arbiter):
        with pytest.raises(AccessDenied):
            arbiter.query(Role.STUDENT, "bob", Query(collection="flows"))
        result = arbiter.aggregate(
            Role.STUDENT, "bob", Query(collection="flows"),
            Aggregation(key_fn=lambda s: 0, reducer="count"))
        assert result == {}

    def test_time_horizon_clamped(self, arbiter):
        arbiter.policies[Role.RESEARCHER].max_age_s = 5.0
        hits = arbiter.query(Role.RESEARCHER, "carol",
                             Query(collection="packets"))
        assert all(h.record.timestamp >= 5.0 for h in hits)

    def test_audit_log_records_decisions(self, arbiter):
        arbiter.query(Role.IT_OPERATOR, "alice", Query(collection="packets"))
        with pytest.raises(AccessDenied):
            arbiter.query(Role.EXTERNAL, "mallory",
                          Query(collection="packets"))
        assert len(arbiter.audit_log) == 2
        assert arbiter.audit_log[0].granted
        assert not arbiter.audit_log[1].granted
