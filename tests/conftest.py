"""Shared fixtures.

Expensive artifacts (a collected campus day, a trained dataset) are
session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CampusPlatform, PlatformConfig
from repro.events import (
    DnsAmplificationAttack,
    PortScanAttack,
    Scenario,
    SshBruteForceAttack,
)
from repro.netsim import make_campus


def attack_day_scenario(duration_s: float = 150.0) -> Scenario:
    """The canonical mixed-attack day used across tests.

    Event offsets scale with the requested duration so shortened days
    stay valid.
    """
    scenario = Scenario("attack-day", duration_s=duration_s)
    scale = duration_s / 150.0
    scenario.add(DnsAmplificationAttack, 20.0 * scale, 15.0 * scale,
                 attack_gbps=0.1)
    scenario.add(PortScanAttack, 60.0 * scale, 20.0 * scale,
                 probes_per_s=40.0)
    scenario.add(SshBruteForceAttack, 100.0 * scale, 30.0 * scale,
                 attempts_per_s=4.0)
    return scenario


@pytest.fixture
def tiny_network():
    return make_campus("tiny", seed=42)


@pytest.fixture(scope="session")
def collected_platform():
    """A platform with one attack day already in its data store."""
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny", seed=7))
    platform.collect(attack_day_scenario(), seed=7)
    return platform


@pytest.fixture(scope="session")
def attack_dataset(collected_platform):
    """Window features + labels from the collected day."""
    return collected_platform.build_dataset()


@pytest.fixture(scope="session")
def separable_data():
    """A synthetic, clearly-learnable binary task (n=600, d=8)."""
    rng = np.random.default_rng(0)
    X = np.abs(rng.normal(size=(600, 8)))
    y = ((X[:, 0] > 1.0) | ((X[:, 2] > 0.8) & (X[:, 5] > 0.8))).astype(int)
    return X, y
