"""Full-stack integration: everything the paper's Figure 1+2 wires up,
in one test module, on one small campus.

These tests are deliberately end-to-end (slower, coarser assertions);
they exist to catch wiring regressions that unit tests can't see.
"""

import pytest

from repro.core import CampusPlatform, ControlLoopHarness, \
    DevelopmentLoop, PlatformConfig
from repro.core.devloop import make_roadtest_factory
from repro.datastore import Query, export_store, import_store
from repro.deploy.switch import SwitchConfig
from repro.events import make_scenario
from repro.learning.features import FeatureConfig, SourceWindowFeaturizer
from repro.testbed import Guardrail
from repro.xai import explain_decision


@pytest.fixture(scope="module")
def stack():
    """Platform + collected security day + developed+roadtested tool."""
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=90))
    collection = platform.collect(make_scenario("security", 200.0),
                                  seed=90)
    dataset = platform.build_dataset().binarize("ddos-dns-amp")
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    factory = make_roadtest_factory(
        platform, lambda seed: make_scenario("ddos", 150.0),
        SwitchConfig(window_s=5.0, grace_s=2.0),
        guardrails=[Guardrail("recall-floor", "recall", 0.1, "min")],
    )
    tool, report = loop.develop(dataset, tool_name="integration-tool",
                                roadtest_factory=factory, seed=90)
    return platform, collection, dataset, tool, report


def test_collection_spans_all_sources(stack):
    platform, collection, *_ = stack
    assert collection.packets_captured > 1000
    assert platform.store.count("flows") > 50
    assert platform.store.count("logs") > 5
    # every §2 attack class got labeled windows
    labels = {w.label
              for w in collection.ground_truth.windows}
    assert {"ddos-dns-amp", "port-scan", "ssh-bruteforce",
            "exfiltration"} <= labels


def test_devloop_artifacts_complete(stack):
    *_, tool, report = stack
    assert report.teacher_result.metrics["accuracy"] > 0.7
    assert report.resource_fit.fits
    assert report.roadtest is not None
    assert "control Classify" in tool.p4_source
    assert len(tool.rules) >= 1


def test_roadtested_tool_closes_the_loop(stack):
    platform, _, _, tool, report = stack
    if not report.roadtest.deployed:
        pytest.skip("tool did not pass road-test at this seed")
    harness = ControlLoopHarness(
        tool, lambda seed: make_scenario("ddos", 150.0),
        lambda seed: platform.fresh_network(seed))
    live = harness.run(seed=91)
    assert live.detections > 0
    assert live.attack_admitted_fraction < 1.0


def test_evidence_available_for_any_window(stack):
    _, _, dataset, tool, _ = stack
    evidence = explain_decision(tool.student, dataset.X[0],
                                feature_names=tool.feature_names,
                                class_names=tool.class_names)
    assert evidence.predicted_label in tool.class_names
    assert evidence.render()


def test_store_round_trip_preserves_research_surface(stack, tmp_path):
    platform, *_ = stack
    export_store(platform.store, tmp_path / "campus")
    restored = import_store(tmp_path / "campus")
    featurizer = SourceWindowFeaturizer(FeatureConfig(window_s=5.0))
    dataset = featurizer.from_store(restored)
    assert len(dataset) > 10
    assert "ddos-dns-amp" in dataset.class_names
