"""CampusPlatform: Figure 1 end to end."""

import pytest

from repro.core import CampusPlatform, PlatformConfig
from repro.datastore import Query
from repro.privacy import PrivacyLevel
from tests.conftest import attack_day_scenario


def test_collection_fills_all_three_collections(collected_platform):
    platform = collected_platform
    summary = platform.summary()
    assert summary["store"]["packets"]["records"] > 1000
    assert summary["store"]["flows"]["records"] > 10
    assert summary["store"]["logs"]["records"] > 10
    assert summary["capture"]["loss_rate"] == 0.0
    assert summary["collections"] == 1


def test_privacy_transform_applied_at_ingest(collected_platform):
    platform = collected_platform
    # default policy anonymizes internal addresses: no raw 10.x left
    internal = platform.store.query(Query(
        collection="packets",
        predicate=lambda s: s.record.dst_ip.startswith("10.")
        or s.record.src_ip.startswith("10."),
        limit=5,
    ))
    assert internal == []


def test_labels_applied(collected_platform):
    platform = collected_platform
    labeled = platform.store.query(Query(
        collection="packets",
        predicate=lambda s: s.label not in (None, "benign"),
        limit=10,
    ))
    assert labeled


def test_dataset_build_and_classes(attack_dataset):
    ds = attack_dataset
    assert len(ds) > 20
    counts = ds.class_counts()
    assert counts.get("ddos-dns-amp", 0) > 0
    assert counts.get("benign", 0) > 0


def test_build_dataset_requires_collection():
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny", seed=1))
    with pytest.raises(RuntimeError):
        platform.build_dataset()


def test_fresh_network_is_uninstrumented(collected_platform):
    platform = collected_platform
    before = platform.store.count("packets")
    net = platform.fresh_network(seed=123)
    net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1e5))
    net.run_for(30.0)
    net.finish()
    assert platform.store.count("packets") == before


def test_bus_publishes_lifecycle_events(collected_platform):
    topics = collected_platform.bus.topics_seen()
    assert "collect:start" in topics
    assert "collect:done" in topics


def test_lossy_capture_configuration():
    platform = CampusPlatform(PlatformConfig(
        campus_profile="tiny", seed=2, capture_capacity_gbps=0.001,
        capture_buffer_bytes=0.0))
    scenario = attack_day_scenario(duration_s=60.0)
    result = platform.collect(scenario, seed=2)
    assert result.capture_loss_rate > 0.0


def test_sensors_can_be_disabled():
    platform = CampusPlatform(PlatformConfig(
        campus_profile="tiny", seed=3, enable_sensors=False))
    scenario = attack_day_scenario(duration_s=60.0)
    platform.collect(scenario, seed=3)
    assert platform.store.count("logs") == 0


def test_streaming_platform_tiers_and_matches_flat(tmp_path):
    """streaming=True routes capture through the bounded queue into a
    tiered store — and answers exactly what the flat platform stores."""
    from repro.datastore.tiers import TieredDataStore

    scenario = attack_day_scenario(duration_s=60.0)
    flat = CampusPlatform(PlatformConfig(campus_profile="tiny", seed=4))
    flat.collect(scenario, seed=4)

    platform = CampusPlatform(PlatformConfig(
        campus_profile="tiny", seed=4, streaming=True,
        streaming_memtable_records=256,
        streaming_spill_dir=str(tmp_path / "tiers")))
    result = platform.collect(scenario, seed=4)
    assert isinstance(platform.store, TieredDataStore)
    assert platform.ingestor.ingested_records == result.packets_captured
    assert platform.store.compactor.debt() == []

    # rids differ by a fixed offset (sensor logs burn counter values
    # while packets sit in the queue); the packet *content and order*
    # must match the flat platform exactly.
    query = Query(collection="packets")
    tiered_rows = [(s.record.timestamp, s.record.src_ip, s.record.size,
                    s.label) for s in platform.store.query(query)]
    flat_rows = [(s.record.timestamp, s.record.src_ip, s.record.size,
                  s.label) for s in flat.store.query(query)]
    assert tiered_rows == flat_rows

    summary = platform.summary()
    assert summary["streaming"]["queue_rejected"] == 0
    assert summary["tiers"]["hot"]["records"] + \
        summary["tiers"]["warm"]["records"] + \
        summary["tiers"]["cold"]["records"] == result.packets_captured
