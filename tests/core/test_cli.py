"""The command-line interface (fast paths only)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def exported_day(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "day"
    code = main([
        "run-day", "--profile", "tiny", "--seed", "5",
        "--duration", "120", "--attack", "dns-amp",
        "--out", str(out),
    ])
    assert code == 0
    return out


def test_ingest_streams_flushes_and_reopens(tmp_path, capsys):
    spill = tmp_path / "tiers"
    code = main([
        "ingest", "--profile", "tiny", "--seed", "3",
        "--duration", "60", "--attack", "scan",
        "--spill", str(spill), "--memtable", "1024", "--flush-cold",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cold" in out and "refused by the ingest queue" in out
    assert (spill / "registry.json").exists()

    # reopen from disk: checksums verified, records all in cold
    assert main(["ingest", "--spill", str(spill),
                 "--summary-only", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["hot"]["records"] == 0
    assert summary["warm"]["records"] == 0
    assert summary["cold"]["records"] > 100
    assert summary["compaction_debt"] == 0


def test_ingest_summary_only_requires_spill(capsys):
    assert main(["ingest", "--summary-only"]) == 2
    assert "--spill" in capsys.readouterr().err


def test_profiles_lists_known(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "tiny" in out and "research" in out


def test_run_day_exports(exported_day, capsys):
    assert (exported_day / "manifest.json").exists()
    assert (exported_day / "packets.rpcp").exists()
    manifest = json.loads((exported_day / "manifest.json").read_text())
    assert manifest["counts"]["packets"] > 100


def test_inspect(exported_day, capsys):
    assert main(["inspect", "--store", str(exported_day)]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["packets"]["records"] > 100


def test_train_from_store(exported_day, capsys):
    code = main(["train", "--store", str(exported_day),
                 "--model", "tree", "--positive", "ddos-dns-amp"])
    assert code == 0
    out = capsys.readouterr().out
    assert "accuracy=" in out


def test_develop_emits_artifacts(exported_day, tmp_path, capsys):
    out_dir = tmp_path / "tool"
    code = main(["develop", "--store", str(exported_day),
                 "--positive", "ddos-dns-amp", "--teacher", "tree",
                 "--out", str(out_dir)])
    assert code == 0
    assert (out_dir / "tool.p4").read_text().startswith("/*")
    assert "THEN" in (out_dir / "rules.txt").read_text()


def test_develop_unknown_class_fails(exported_day, tmp_path, capsys):
    code = main(["develop", "--store", str(exported_day),
                 "--positive", "martians", "--out", str(tmp_path / "x")])
    assert code == 1


def test_verify_lint_green(capsys):
    assert main(["verify", "--lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_verify_lint_json(capsys):
    assert main(["verify", "--lint", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["subject"].startswith("lint:")


def test_verify_lint_flags_bad_tree(tmp_path, capsys):
    bad = tmp_path / "netsim"
    bad.mkdir()
    (bad / "mod.py").write_text("import time\nt = time.time()\n")
    assert main(["verify", "--lint", "--path", str(tmp_path)]) == 1
    assert "REP304" in capsys.readouterr().out


def test_verify_compiled_store_reports_clean(exported_day, capsys):
    code = main(["verify", "--store", str(exported_day),
                 "--positive", "ddos-dns-amp"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_verify_requires_mode_arguments(capsys):
    assert main(["verify"]) == 2


def test_verify_lint_rejects_missing_path(tmp_path):
    assert main(["verify", "--lint",
                 "--path", str(tmp_path / "nope")]) == 2


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_verify_lint_json_includes_flow_trace(tmp_path, capsys):
    bad = tmp_path / "capture"
    bad.mkdir()
    (bad / "tap.py").write_text(
        "def export(r, out):\n    out.write(r.src_ip)\n")
    assert main(["verify", "--lint", "--json",
                 "--path", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.diagnostics/v1"
    finding = payload["diagnostics"][0]
    assert finding["code"] == "REP401"
    assert finding["trace"], "REP401 must carry its source->sink flow"


def test_verify_update_baseline_requires_lint(capsys):
    assert main(["verify", "--update-baseline"]) == 2


def test_verify_update_baseline_writes_and_gates(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\nbaseline = \"baseline.json\"\n"
        "taint-exempt-scope = []\n")
    bad = tmp_path / "capture"
    bad.mkdir()
    (bad / "tap.py").write_text(
        "def export(r, out):\n    out.write(r.src_ip)\n")

    assert main(["verify", "--lint", "--path", str(tmp_path)]) == 1
    capsys.readouterr()
    assert main(["verify", "--lint", "--path", str(tmp_path),
                 "--update-baseline"]) == 0
    assert "baseline updated" in capsys.readouterr().out
    assert (tmp_path / "baseline.json").is_file()
    # the recorded finding no longer fails the gate
    assert main(["verify", "--lint", "--path", str(tmp_path)]) == 0
    assert "1 baselined" in capsys.readouterr().out
