"""The slow development loop (Figure 2, steps i-iv)."""

import pytest

from repro.core import DevelopmentLoop
from repro.core.devloop import make_roadtest_factory
from repro.deploy.switch import SwitchConfig
from repro.testbed import Guardrail
from tests.conftest import attack_day_scenario


@pytest.fixture(scope="module")
def developed(attack_dataset):
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    tool, report = loop.develop(attack_dataset.binarize("ddos-dns-amp"),
                                tool_name="amp-detector", seed=1)
    return tool, report


def test_teacher_trained_and_scored(developed):
    _, report = developed
    assert report.teacher_result.metrics["accuracy"] > 0.8
    assert report.stage_seconds["train_teacher"] > 0


def test_student_distilled_with_fidelity(developed):
    _, report = developed
    assert report.holdout_fidelity.label_fidelity > 0.8
    assert report.distillation.depth <= 4


def test_compiled_and_fits_switch(developed):
    tool, report = developed
    assert report.resource_fit.fits
    assert tool.compiled.n_entries >= 1
    assert "control Classify" in tool.p4_source
    assert len(tool.rules) == tool.compiled.n_entries or \
        len(tool.rules) >= tool.compiled.n_entries


def test_no_roadtest_means_ready(developed):
    _, report = developed
    assert report.roadtest is None
    assert report.ready


def test_bus_trace(attack_dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    loop.develop(attack_dataset.binarize("ddos-dns-amp"), seed=2)
    topics = loop.bus.topics_seen()
    assert topics == ["devloop:trained", "devloop:distilled",
                      "devloop:compiled", "devloop:verified"]


def test_develop_verifies_program(developed):
    tool, report = developed
    assert report.verification is not None
    assert report.verification.ok
    assert tool.verification is report.verification
    assert "verify" in report.stage_seconds


def test_develop_refuses_overbudget_program(attack_dataset):
    """A target too small for the compiled program aborts the loop
    with error-level REP2xx diagnostics instead of a late failure."""
    from repro.deploy.resources import SwitchResourceModel
    from repro.verify import ProgramVerificationError

    loop = DevelopmentLoop(
        teacher_name="tree",
        resource_model=SwitchResourceModel(tcam_bits_total=1,
                                           sram_bits_total=1,
                                           sketch_sram_bits=0))
    with pytest.raises(ProgramVerificationError) as excinfo:
        loop.develop(attack_dataset.binarize("ddos-dns-amp"), seed=2)
    codes = {d.code for d in excinfo.value.report.errors}
    assert "REP201" in codes or "REP202" in codes


def test_deploy_refuses_tool_with_errors(developed):
    """DeployableTool.deploy never runs a tool whose verification
    report carries error-level diagnostics."""
    import dataclasses

    from repro.verify import ProgramVerificationError, diag
    from repro.verify.diagnostics import DiagnosticReport

    tool, _ = developed
    bad_report = DiagnosticReport(subject=tool.name)
    bad_report.add(diag("REP001", "injected width overflow",
                        program=tool.name, table="classify", entry=0))
    bad_tool = dataclasses.replace(tool, verification=bad_report)
    with pytest.raises(ProgramVerificationError):
        bad_tool.deploy(network=None)


def test_full_loop_with_roadtest(collected_platform, attack_dataset):
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    factory = make_roadtest_factory(
        collected_platform,
        lambda seed: attack_day_scenario(duration_s=90.0),
        SwitchConfig(window_s=5.0, grace_s=2.0),
        guardrails=[Guardrail("recall-floor", "recall", 0.05, "min")],
    )
    tool, report = loop.develop(
        attack_dataset.binarize("ddos-dns-amp"),
        roadtest_factory=factory, seed=3)
    assert report.roadtest is not None
    assert len(report.roadtest.phases) >= 1
    assert "roadtest" in report.stage_seconds


def test_deploy_produces_running_switch(developed, collected_platform):
    tool, _ = developed
    network = collected_platform.fresh_network(seed=55)
    switch = tool.deploy(network)
    assert switch.result is tool.compiled


def test_repo_lint_stage_gates_on_static_analysis(attack_dataset,
                                                  monkeypatch):
    """``repo_lint=True`` runs the cached repo-wide static-analysis
    suite as stage (iii-c) and records its timing."""
    import repro.verify.lint as lint_mod

    calls = []
    real = lint_mod.lint_package

    def counting_lint_package(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(lint_mod, "lint_package", counting_lint_package)
    monkeypatch.setattr(lint_mod, "_PACKAGE_REPORT_CACHE", None)

    loop = DevelopmentLoop(teacher_name="tree", repo_lint=True)
    dataset = attack_dataset.binarize("ddos-dns-amp")
    _, report = loop.develop(dataset, seed=3)
    assert "repo_lint" in report.stage_seconds
    # a second develop() reuses the per-process cache: still one lint
    loop.develop(dataset, seed=4)
    assert len(calls) == 1
