"""The slow development loop (Figure 2, steps i-iv)."""

import pytest

from repro.core import DevelopmentLoop
from repro.core.devloop import make_roadtest_factory
from repro.deploy.switch import SwitchConfig
from repro.testbed import Guardrail
from tests.conftest import attack_day_scenario


@pytest.fixture(scope="module")
def developed(attack_dataset):
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    tool, report = loop.develop(attack_dataset.binarize("ddos-dns-amp"),
                                tool_name="amp-detector", seed=1)
    return tool, report


def test_teacher_trained_and_scored(developed):
    _, report = developed
    assert report.teacher_result.metrics["accuracy"] > 0.8
    assert report.stage_seconds["train_teacher"] > 0


def test_student_distilled_with_fidelity(developed):
    _, report = developed
    assert report.holdout_fidelity.label_fidelity > 0.8
    assert report.distillation.depth <= 4


def test_compiled_and_fits_switch(developed):
    tool, report = developed
    assert report.resource_fit.fits
    assert tool.compiled.n_entries >= 1
    assert "control Classify" in tool.p4_source
    assert len(tool.rules) == tool.compiled.n_entries or \
        len(tool.rules) >= tool.compiled.n_entries


def test_no_roadtest_means_ready(developed):
    _, report = developed
    assert report.roadtest is None
    assert report.ready


def test_bus_trace(attack_dataset):
    loop = DevelopmentLoop(teacher_name="tree")
    loop.develop(attack_dataset.binarize("ddos-dns-amp"), seed=2)
    topics = loop.bus.topics_seen()
    assert topics == ["devloop:trained", "devloop:distilled",
                      "devloop:compiled"]


def test_full_loop_with_roadtest(collected_platform, attack_dataset):
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    factory = make_roadtest_factory(
        collected_platform,
        lambda seed: attack_day_scenario(duration_s=90.0),
        SwitchConfig(window_s=5.0, grace_s=2.0),
        guardrails=[Guardrail("recall-floor", "recall", 0.05, "min")],
    )
    tool, report = loop.develop(
        attack_dataset.binarize("ddos-dns-amp"),
        roadtest_factory=factory, seed=3)
    assert report.roadtest is not None
    assert len(report.roadtest.phases) >= 1
    assert "roadtest" in report.stage_seconds


def test_deploy_produces_running_switch(developed, collected_platform):
    tool, _ = developed
    network = collected_platform.fresh_network(seed=55)
    switch = tool.deploy(network)
    assert switch.result is tool.compiled
