"""Control-loop harness and the event bus."""

import pytest

from repro.core import ControlLoopHarness, DevelopmentLoop, EventBus
from repro.events import DnsAmplificationAttack, Scenario
from repro.netsim import make_campus


class TestEventBus:
    def test_topic_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", lambda e: seen.append(("a", e.payload)))
        bus.subscribe("*", lambda e: seen.append(("*", e.topic)))
        bus.publish("a", x=1)
        bus.publish("b", y=2)
        assert ("a", {"x": 1}) in seen
        assert ("*", "a") in seen and ("*", "b") in seen
        assert bus.topics_seen() == ["a", "b"]

    def test_raising_subscriber_is_isolated_and_dead_lettered(self):
        bus = EventBus()
        seen = []

        def broken_subscriber(event):
            raise RuntimeError("subscriber bug")

        bus.subscribe("a", broken_subscriber)
        bus.subscribe("a", lambda e: seen.append(e.payload))
        event = bus.publish("a", x=1)
        # the healthy subscriber behind the raising one still ran
        assert seen == [{"x": 1}]
        assert bus.dead_letter_count == 1
        letter = bus.dead_letters[0]
        assert letter.topic == "a"
        assert "broken_subscriber" in letter.subscriber
        assert "subscriber bug" in letter.error
        assert letter.event is event

    def test_dead_letter_list_is_bounded(self):
        bus = EventBus(max_dead_letters=2)
        bus.subscribe("a", lambda e: 1 / 0)
        for _ in range(5):
            bus.publish("a")
        assert bus.dead_letter_count == 5
        assert len(bus.dead_letters) == 2


class TestControlLoop:
    @pytest.fixture(scope="class")
    def tool(self, attack_dataset):
        loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
        tool, _ = loop.develop(attack_dataset.binarize("ddos-dns-amp"),
                               seed=1)
        return tool

    def _scenario(self, seed):
        scenario = Scenario("day", duration_s=90.0)
        scenario.add(DnsAmplificationAttack, 20.0, 40.0, attack_gbps=0.08,
                     resolvers=8)
        return scenario

    def _harness(self, tool):
        return ControlLoopHarness(
            tool, self._scenario,
            lambda seed: make_campus("tiny", seed=seed))

    def test_closed_loop_mitigates(self, tool):
        report = self._harness(tool).run(seed=60, placement="data_plane")
        assert report.detections > 0
        assert report.quality.recall > 0.3
        assert report.attack_admitted_fraction < 0.9
        assert report.reaction_latency_s is not None

    def test_unknown_placement_rejected(self, tool):
        with pytest.raises(KeyError):
            self._harness(tool).run(placement="nowhere")

    def test_placements_comparable(self, tool):
        harness = self._harness(tool)
        data = harness.run(seed=61, placement="data_plane")
        cloud = harness.run(seed=61, placement="cloud")
        # a slower loop never reacts earlier, and admits at least as
        # much attack traffic before the mitigation lands
        assert data.detections > 0 and cloud.detections > 0
        assert cloud.attack_bytes_admitted >= \
            data.attack_bytes_admitted * 0.999
        if data.reaction_latency_s and cloud.reaction_latency_s:
            assert cloud.reaction_latency_s >= data.reaction_latency_s
