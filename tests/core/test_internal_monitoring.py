"""Internal (east-west) monitoring via multi-link tap groups."""

import pytest

from repro.core import CampusPlatform, PlatformConfig
from repro.datastore import Query
from repro.netsim import make_campus


def test_multi_link_observer_deduplicates():
    """A flow crossing two monitored trunks is delivered once."""
    net = make_campus("tiny", seed=70)
    batches = []
    trunk_links = [e for e in net.topology.edges()
                   if {e[0][:4], e[1][:4]} == {"dist", "core"}]
    assert len(trunk_links) >= 2
    net.add_packet_observer(batches.append, links=trunk_links)
    # host dept0 -> server crosses dist0-core0 and core0-dist_srv
    net.inject_flow(net.make_flow("h0_0_0", "srv0", size_bytes=1e5))
    net.run_for(30.0)
    net.finish()
    flow_ids = [p.flow_id for batch in batches for p in batch]
    assert flow_ids
    assert len(set(flow_ids)) == 1
    assert len(flow_ids) == flow_ids.count(flow_ids[0])
    # exactly one delivery of the flow's packets (no duplicates)
    assert len(batches) == 1


def test_link_and_links_mutually_exclusive():
    net = make_campus("tiny", seed=71)
    with pytest.raises(ValueError):
        net.add_packet_observer(lambda b: None,
                                link=net.topology.border_link,
                                links=[net.topology.border_link])


def test_border_only_platform_misses_internal_traffic():
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=72))
    net = platform.network
    net.inject_flow(net.make_flow("h0_0_0", "srv0", size_bytes=1e5,
                                  dst_port=22))
    net.run_for(30.0)
    net.finish()
    assert platform.store.count("packets") == 0


def test_internal_monitoring_captures_east_west():
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=72,
                                             monitor_internal=True))
    net = platform.network
    net.inject_flow(net.make_flow("h0_0_0", "srv0", size_bytes=1e5,
                                  dst_port=22))
    net.run_for(30.0)
    net.finish()
    internal = platform.store.query(Query(collection="packets"))
    assert internal
    assert {p.record.dst_port for p in internal} == {22} or \
        {p.record.src_port for p in internal} & {22}


def test_internal_monitoring_does_not_duplicate_border_traffic():
    def packet_count(monitor_internal):
        platform = CampusPlatform(PlatformConfig(
            campus_profile="tiny", seed=73,
            monitor_internal=monitor_internal))
        net = platform.network
        net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1e5))
        net.run_for(30.0)
        net.finish()
        return platform.store.count("packets")

    assert packet_count(True) == packet_count(False)
