"""Reporting tables and statistics helpers."""

import numpy as np
import pytest

from repro.analysis import Table, bootstrap_ci, format_number, mean_std, \
    summarize


class TestFormatNumber:
    def test_ints_with_suffixes(self):
        assert format_number(5) == "5"
        assert format_number(25_000) == "25.0k"
        assert format_number(3_200_000) == "3.20M"
        assert format_number(2_500_000_000) == "2.50G"

    def test_floats(self):
        assert format_number(0.125) == "0.125"
        assert format_number(1.0) == "1"
        assert format_number(1e-9) == "1.00e-09"

    def test_none_and_bool(self):
        assert format_number(None) == "-"
        assert format_number(True) == "yes"
        assert format_number(False) == "no"


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.row("alpha", 1)
        table.row("b", 123_456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "=== demo ==="
        assert len({len(line) for line in lines[1:]}) == 1   # aligned

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.row(1)


class TestStats:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)
        assert mean_std([]) == (0.0, 0.0)
        assert mean_std([5.0])[1] == 0.0

    def test_bootstrap_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, size=200)
        lo, hi = bootstrap_ci(values, seed=1)
        assert lo < 10.0 < hi
        assert hi - lo < 1.5

    def test_bootstrap_degenerate(self):
        assert bootstrap_ci([]) == (0.0, 0.0)
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_summarize_keys_and_values(self):
        summary = summarize([1, 2, 3, 4, 100])
        assert summary["n"] == 5
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == 3.0
