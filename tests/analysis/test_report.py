"""Campus report generation."""

import pytest

from repro.analysis import generate_report
from repro.capture.sensors import LogRecord
from repro.datastore import DataStore
from repro.netsim.packets import PacketRecord


def _packet(ts, src, size=1000, label="benign", service_port=443):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip="10.0.0.1", src_port=service_port,
        dst_port=40000, protocol=6, size=size, payload_len=size - 40,
        flags=0, ttl=60, payload=b"", flow_id=1, app="web", label=label,
        direction="in",
    )


@pytest.fixture
def store():
    from repro.capture.metadata import MetadataExtractor

    s = DataStore(metadata_extractor=MetadataExtractor())
    s.ingest_packets([_packet(float(i), "9.9.9.9", size=2000)
                      for i in range(20)])
    s.ingest_packets([_packet(float(i), "8.8.8.8", size=100,
                              label="ddos-dns-amp", service_port=53)
                      for i in range(5)])
    s.ingest_log(LogRecord(timestamp=1.0, source="srv0:sshd",
                           kind="auth-fail", message="x"))
    return s


def test_report_structure(store):
    report = generate_report(store)
    assert report.store_summary["packets"]["records"] == 25
    assert report.event_counts.get("ddos-dns-amp") == 5
    assert report.log_counts == {"auth-fail": 1}
    # endpoints are pseudonymized: the heavy hitter maps to the same
    # Crypto-PAn pseudonym every run, never the raw address
    from repro.analysis.report import _REPORT_KEY
    from repro.privacy import CryptoPan

    expected = CryptoPan(_REPORT_KEY).anonymize("9.9.9.9")
    assert report.top_endpoints[0][0] == expected
    assert expected != "9.9.9.9"


def test_report_never_renders_raw_endpoints(store):
    text = generate_report(store).render()
    assert "9.9.9.9" not in text
    assert "8.8.8.8" not in text
    assert "Crypto-PAn pseudonyms" in text


def test_report_custom_cryptopan(store):
    from repro.privacy import CryptoPan

    pan = CryptoPan(b"another-key-for-this-one-report!")
    report = generate_report(store, cryptopan=pan)
    assert report.top_endpoints[0][0] == pan.anonymize("9.9.9.9")


def test_traffic_by_service(store):
    report = generate_report(store)
    assert report.traffic_by_service.get("https", 0) == 20 * 2000
    assert report.traffic_by_service.get("dns", 0) == 5 * 100


def test_render_markdown(store):
    text = generate_report(store).render()
    assert text.startswith("# Campus network report")
    assert "## Traffic by service" in text
    assert "ddos-dns-amp: 5 packets" in text
    assert "auth-fail: 1 records" in text


def test_empty_store_report():
    text = generate_report(DataStore()).render()
    assert "none recorded" in text
    assert "no sensor records" in text


def test_top_n_limit(store):
    report = generate_report(store, top_n=1)
    assert len(report.top_endpoints) == 1
