"""The gateway is the only door out — and it sanitizes everything.

The boundary-capture test is the PR's central privacy assertion: every
release envelope enumerates its concrete payload values, and none of
them may equal any address-valued string observable inside the site.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec
from repro.datastore import Query
from repro.federation import ReleaseRefused, SiteUnavailable
from tests.federation.conftest import build_sites, raw_address_values, \
    small_config

ALL_PACKETS = Query(collection="packets")


def all_releases(site, epsilon=0.5):
    gateway = site.gateway
    return [
        gateway.send_count(ALL_PACKETS, epsilon),
        gateway.send_histogram(ALL_PACKETS, "src_ip", epsilon),
        gateway.send_heavy_hitters(ALL_PACKETS, "src_ip", 8, epsilon),
        gateway.send_schema(),
        gateway.send_examples(),
    ]


class TestBoundaryCapture:
    def test_no_raw_value_crosses_the_boundary(self, two_sites):
        for site in two_sites:
            raw = raw_address_values(site)
            assert raw, "expected observable addresses inside the site"
            for release in all_releases(site):
                payload = list(release.payload_fields())
                assert payload, release
                crossing = {v for v in payload if isinstance(v, str)}
                leaked = crossing & raw
                assert not leaked, (
                    f"raw values leaked from {site.name} via "
                    f"{type(release).__name__}: {sorted(leaked)[:5]}")
                assert not any(isinstance(v, (bytes, bytearray))
                               for v in payload), \
                    "payload bytes crossed the boundary"

    def test_pseudonyms_differ_across_sites(self, two_sites):
        # The same external endpoints appear at both sites (same event
        # library), but each boundary key maps them differently.
        first, second = (
            dict(site.gateway.send_heavy_hitters(
                ALL_PACKETS, "src_ip", 8, 0.5).hitters)
            for site in two_sites)
        assert first.keys() != second.keys() or not first


class TestSanitization:
    def test_histogram_kanon_suppression(self, two_sites):
        site = two_sites[0]
        release = site.gateway.send_histogram(ALL_PACKETS, "src_ip", 0.5)
        assert release.kanon is not None
        assert release.kanon.violating_combinations == 0
        assert release.kanon.min_group_size >= site.gateway._auditor.k \
            or not release.bins

    def test_examples_release_is_kanon_audited(self, two_sites):
        site = two_sites[0]
        release = site.gateway.send_examples()
        assert release.kanon is not None
        assert release.kanon.violating_records == 0
        assert len(release.X) == len(release.y) == len(release.keys)
        # rows were suppressed OR everything was already >= k-anonymous
        assert release.suppressed_rows >= 0

    def test_count_release_carries_planner_bound(self, two_sites):
        site = two_sites[0]
        release = site.gateway.send_count(ALL_PACKETS, 0.5)
        assert release.source in ("sketch", "hybrid", "exact")
        assert release.local_bound >= 0.0


class TestBudgetGating:
    def test_exhausted_budget_refuses_not_truncates(self):
        config = small_config(n_sites=1, seed=21, epsilon_total=0.3)
        (site,) = build_sites(config)
        try:
            site.gateway.send_count(ALL_PACKETS, 0.3)
            spent = site.budget.spent
            with pytest.raises(ReleaseRefused):
                site.gateway.send_count(ALL_PACKETS, 0.1)
            assert site.budget.spent == spent
            assert site.budget.refused == 1
            # schema releases charge nothing and still work
            assert site.gateway.send_schema().feature_names
        finally:
            site.close()


class TestChaosAtTheBoundary:
    def _site_with(self, spec_kind, rate=1.0, magnitude=0.0, seed=31):
        config = small_config(n_sites=1, seed=seed)
        plan = FaultPlan(name="test", seed=5, specs=(
            FaultSpec(spec_kind, rate=rate, magnitude=magnitude),))
        (site,) = build_sites(config, plans={0: plan})
        return site

    def test_outage_is_sticky(self):
        site = self._site_with(FaultKind.SITE_OUTAGE)
        try:
            with pytest.raises(SiteUnavailable) as excinfo:
                site.gateway.send_count(ALL_PACKETS, 0.1)
            assert excinfo.value.reason == "outage"
            assert site.gateway.down
            # ...and stays down on the next call, without a new draw
            with pytest.raises(SiteUnavailable):
                site.gateway.send_schema()
            assert site.budget.spent == 0.0
        finally:
            site.close()

    def test_partition_loses_one_call_only(self):
        site = self._site_with(FaultKind.SITE_PARTITION, rate=0.5,
                               seed=33)
        try:
            outcomes = []
            for _ in range(12):
                try:
                    site.gateway.send_schema()
                    outcomes.append("ok")
                except SiteUnavailable as exc:
                    assert exc.reason == "partition"
                    outcomes.append("lost")
            assert "ok" in outcomes and "lost" in outcomes
            assert not site.gateway.down
        finally:
            site.close()

    def test_slow_site_inflates_reported_latency(self):
        site = self._site_with(FaultKind.SITE_SLOW, rate=1.0,
                               magnitude=7.5)
        try:
            release = site.gateway.send_count(ALL_PACKETS, 0.1)
            assert release.latency_s >= 7.5
        finally:
            site.close()

    def test_fault_draws_derive_from_site_substream(self):
        # Same plan seed, same site => identical fault schedule.
        plan = FaultPlan(name="test", seed=5, specs=(
            FaultSpec(FaultKind.SITE_PARTITION, rate=0.5),))
        histories = []
        for _ in range(2):
            config = small_config(n_sites=1, seed=33)
            (site,) = build_sites(config, plans={0: plan})
            history = []
            for _ in range(10):
                try:
                    site.gateway.send_schema()
                    history.append(True)
                except SiteUnavailable:
                    history.append(False)
            histories.append(history)
            site.close()
        assert histories[0] == histories[1]
