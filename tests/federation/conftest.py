"""Shared federation fixtures.

Standing up a campus site means simulating a traffic day, so the small
federations used across these suites are module-scoped: each file pays
for its sites once.
"""

from __future__ import annotations

import pytest

from repro.federation import CampusSite, FederationConfig


def small_config(n_sites: int = 2, seed: int = 11, **overrides
                 ) -> FederationConfig:
    defaults = dict(n_sites=n_sites, seed=seed, campus_profile="tiny",
                    duration_s=60.0, epsilon_total=50.0)
    defaults.update(overrides)
    return FederationConfig(**defaults)


def build_sites(config: FederationConfig, attacks=("dns-amp",),
                fault_plan=None, obs=None, plans=None):
    """Sites for ``config``, each with one collected day.

    ``plans`` optionally maps site_id -> FaultPlan (overrides
    ``fault_plan`` for that site).
    """
    sites = []
    for spec in config.site_specs():
        plan = fault_plan
        if plans is not None:
            plan = plans.get(spec.site_id, fault_plan)
        sites.append(CampusSite(spec, config, attacks=attacks,
                                fault_plan=plan, obs=obs))
    for site in sites:
        site.run_day()
    return sites


@pytest.fixture(scope="module")
def two_site_config():
    return small_config(n_sites=2)


@pytest.fixture(scope="module")
def two_sites(two_site_config):
    sites = build_sites(two_site_config)
    yield sites
    for site in sites:
        site.close()


def raw_address_values(site) -> set:
    """Every address-valued string observable inside a site's store.

    This is what must never appear verbatim in a cross-site payload:
    the store's own (ingest-pseudonymized) campus addresses and the
    raw external endpoints the ingest policy keeps.
    """
    from repro.datastore import Query

    values = set()
    for stored in site.store.query(Query(collection="packets")):
        values.add(stored.record.src_ip)
        values.add(stored.record.dst_ip)
    dataset = site.local_dataset()
    if dataset.keys is not None:
        for _, endpoint in dataset.keys:
            values.add(str(endpoint))
    values.discard(None)
    return values
