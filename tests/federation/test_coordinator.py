"""Coordinator merges, quorum semantics, and order-independence.

The order-independence suite is the RNG-hygiene satellite's teeth:
an N-site federation under a fixed seed must produce bit-identical
merged answers regardless of the order sites are built, run, or
evaluated in — possible only because every per-site stream derives
from ``(seed, site_id)`` and never from a shared global RNG.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec
from repro.datastore import Query
from repro.federation import (CampusSite, FederationConfig,
                              FederationCoordinator, QuorumLost)
from tests.federation.conftest import build_sites, small_config

ALL_PACKETS = Query(collection="packets")

KILL = FaultPlan(name="kill", seed=0, specs=(
    FaultSpec(FaultKind.SITE_OUTAGE, rate=1.0),))


@pytest.fixture(scope="module")
def three_sites():
    config = small_config(n_sites=3, seed=17)
    sites = build_sites(config)
    yield config, sites
    for site in sites:
        site.close()


class TestMerging:
    def test_count_merges_all_sites(self, three_sites):
        config, sites = three_sites
        coordinator = FederationCoordinator(sites, config)
        answer = coordinator.query_count(ALL_PACKETS, epsilon=1.0)
        true_total = sum(
            site.store.count_matching(ALL_PACKETS).value
            for site in sites)
        assert answer.n_answered == answer.n_sites == 3
        assert not answer.degraded
        assert answer.bound > 0
        # high epsilon => tight noise; merged answer must be close
        assert abs(answer.value - true_total) <= answer.bound
        low, high = answer.interval()
        assert low <= answer.value <= high

    def test_histogram_union_merges(self, three_sites):
        config, sites = three_sites
        coordinator = FederationCoordinator(sites, config)
        answer = coordinator.query_histogram(ALL_PACKETS, "app",
                                             epsilon=1.0)
        assert answer.bins
        assert answer.per_value_bound > 0
        values = [value for value, _ in answer.bins]
        assert len(values) == len(set(values))
        counts = [count for _, count in answer.bins]
        assert counts == sorted(counts, reverse=True)

    def test_heavy_hitters_top_k(self, three_sites):
        config, sites = three_sites
        coordinator = FederationCoordinator(sites, config)
        answer = coordinator.query_heavy_hitters(ALL_PACKETS, "src_ip",
                                                 k=5, epsilon=1.0)
        assert len(answer.bins) <= 5

    def test_assemble_reports_provenance(self, three_sites):
        config, sites = three_sites
        coordinator = FederationCoordinator(sites, config)
        dataset, report = coordinator.assemble()
        assert report.rows == len(dataset)
        assert report.rows == sum(report.rows_per_site.values())
        assert set(report.rows_per_site) == {s.name for s in sites}
        assert not report.degraded
        assert dataset.keys is not None and len(dataset.keys) \
            == report.rows


class TestOrderIndependence:
    def test_merged_answers_bit_identical_any_site_order(self):
        def run(order):
            config = small_config(n_sites=3, seed=23)
            specs = config.site_specs()
            sites = [CampusSite(specs[i], config) for i in order]
            for site in sites:
                site.run_day()
            coordinator = FederationCoordinator(sites, config)
            count = coordinator.query_count(ALL_PACKETS, epsilon=0.4)
            dataset, _ = coordinator.assemble()
            coordinator.close()
            return count, dataset

        forward_count, forward_ds = run([0, 1, 2])
        reverse_count, reverse_ds = run([2, 0, 1])
        assert forward_count.value == reverse_count.value
        assert forward_count.bound == reverse_count.bound
        np.testing.assert_array_equal(forward_ds.X, reverse_ds.X)
        np.testing.assert_array_equal(forward_ds.y, reverse_ds.y)
        assert forward_ds.keys == reverse_ds.keys


class TestQuorumDegradation:
    def test_one_dark_site_yields_widened_quorum_answer(self):
        config = small_config(n_sites=3, seed=29)
        healthy = build_sites(config)
        coordinator = FederationCoordinator(healthy, config)
        clean = coordinator.query_count(ALL_PACKETS, epsilon=0.4)
        for site in healthy:
            site.close()

        degraded_sites = build_sites(config, plans={1: KILL})
        coordinator = FederationCoordinator(degraded_sites, config)
        answer = coordinator.query_count(ALL_PACKETS, epsilon=0.4)
        assert answer.degraded
        assert answer.n_answered == 2
        assert dict(answer.unavailable) == {"campus-1": "outage"}
        # widened: imputation + one max-site envelope per missing site
        assert answer.bound > clean.bound
        modes = [(e.stage, e.mode) for e in coordinator.ledger.entries]
        assert ("federation", "partial-merge") in modes
        for site in degraded_sites:
            site.close()

    def test_below_quorum_is_loud(self):
        config = small_config(n_sites=3, seed=37, quorum_fraction=1.0)
        sites = build_sites(config, plans={2: KILL})
        coordinator = FederationCoordinator(sites, config)
        with pytest.raises(QuorumLost):
            coordinator.query_count(ALL_PACKETS, epsilon=0.4)
        modes = [(e.stage, e.mode) for e in coordinator.ledger.entries]
        assert ("federation", "quorum-lost") in modes
        for site in sites:
            site.close()

    def test_slow_site_past_timeout_is_unavailable(self):
        slow = FaultPlan(name="slow", seed=0, specs=(
            FaultSpec(FaultKind.SITE_SLOW, rate=1.0, magnitude=60.0),))
        config = small_config(n_sites=3, seed=41, timeout_s=2.0)
        sites = build_sites(config, plans={0: slow})
        coordinator = FederationCoordinator(sites, config)
        answer = coordinator.query_count(ALL_PACKETS, epsilon=0.4)
        assert answer.degraded
        assert any("timeout" in reason
                   for _, reason in answer.unavailable)
        for site in sites:
            site.close()

    def test_budget_exhaustion_degrades_like_an_outage(self):
        config = small_config(n_sites=2, seed=43, epsilon_total=0.3)
        sites = build_sites(config)
        # burn site 0's budget locally
        sites[0].gateway.send_count(ALL_PACKETS, 0.3)
        coordinator = FederationCoordinator(sites, config)
        answer = coordinator.query_count(ALL_PACKETS, epsilon=0.2)
        assert answer.degraded
        assert answer.n_answered == 1
        assert any("budget-exhausted" in reason
                   for _, reason in answer.unavailable)
        for site in sites:
            site.close()
