"""Per-site DP budget: accounting invariants + refusal semantics.

Satellite property: budget accounting never goes negative and never
double-charges a refused release — a refusal is free, visible in the
``refused`` counter, and leaves the accountant's ledger untouched.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import PrivacyBudget, ReleaseRefused
from repro.obs import Observability

epsilon_lists = st.lists(
    st.floats(min_value=0.01, max_value=0.8, allow_nan=False),
    min_size=1, max_size=24)


class TestAccounting:
    @given(total=st.floats(min_value=0.5, max_value=4.0),
           requests=epsilon_lists)
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_any_request_sequence(self, total,
                                                   requests):
        budget = PrivacyBudget("campus-x", total_epsilon=total, seed=3)
        granted = refused = 0
        for i, epsilon in enumerate(requests):
            spent_before = budget.spent
            try:
                budget.release_count(100.0, epsilon,
                                     description=f"req-{i}")
                granted += 1
                assert budget.spent == pytest.approx(
                    spent_before + epsilon)
            except ReleaseRefused:
                refused += 1
                # a refused release charges nothing
                assert budget.spent == spent_before
            assert 0.0 <= budget.spent <= total + 1e-9
            assert budget.remaining >= -1e-9
            assert budget.spent + budget.remaining \
                == pytest.approx(total)
        assert budget.refused == refused
        assert len(budget.accountant.ledger) == granted

    def test_refusal_is_loud_and_typed(self):
        budget = PrivacyBudget("campus-x", total_epsilon=0.1, seed=0)
        budget.release_count(5.0, 0.1)
        with pytest.raises(ReleaseRefused) as excinfo:
            budget.release_count(5.0, 0.05)
        assert excinfo.value.site == "campus-x"
        assert budget.refused == 1
        assert budget.spent == pytest.approx(0.1)

    def test_histogram_release_charges_once(self):
        # disjoint bins: parallel composition => one epsilon charge
        budget = PrivacyBudget("campus-x", total_epsilon=1.0, seed=0)
        noisy = budget.release_histogram({"a": 10, "b": 20}, 0.25)
        assert set(noisy) == {"a", "b"}
        assert budget.spent == pytest.approx(0.25)

    def test_noise_is_seed_deterministic(self):
        a = PrivacyBudget("campus-x", total_epsilon=2.0, seed=42)
        b = PrivacyBudget("campus-x", total_epsilon=2.0, seed=42)
        assert a.release_count(50.0, 0.2) == b.release_count(50.0, 0.2)
        c = PrivacyBudget("campus-x", total_epsilon=2.0, seed=43)
        assert a.release_count(50.0, 0.2) != c.release_count(50.0, 0.2)

    def test_noisy_answer_is_actually_noised(self):
        budget = PrivacyBudget("campus-x", total_epsilon=10.0, seed=1)
        draws = {budget.release_count(100.0, 0.5) for _ in range(8)}
        assert len(draws) > 1
        assert all(math.isfinite(v) for v in draws)


class TestObsMirror:
    def test_gauges_track_spend_and_refusals(self):
        obs = Observability()
        budget = PrivacyBudget("campus-g", total_epsilon=0.3, seed=0,
                               obs=obs)
        metrics = obs.metrics

        def gauge(name):
            return metrics.gauge(name, site="campus-g").value

        assert gauge("repro_federation_epsilon_spent") == 0.0
        assert gauge("repro_federation_epsilon_remaining") \
            == pytest.approx(0.3)
        budget.release_count(10.0, 0.2)
        assert gauge("repro_federation_epsilon_spent") \
            == pytest.approx(0.2)
        with pytest.raises(ReleaseRefused):
            budget.release_count(10.0, 0.2)
        assert gauge("repro_federation_releases_refused") == 1
        assert gauge("repro_federation_epsilon_spent") \
            == pytest.approx(0.2)
