"""The paper's federation claim, end to end.

Tier-1 carries the democratization headline (a model assembled from K
privacy-gated campuses beats every single-campus model on a held-out
campus); the chaos-marked test adds the full road-test stage plus a
mid-run site kill, asserting the run degrades to a quorum answer with
a ledger entry instead of failing.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec
from repro.datastore import Query
from repro.federation import (FederatedExperiment, FederationConfig,
                              FederationCoordinator)
from repro.obs import Observability

E2E_CONFIG = dict(n_sites=3, seed=0, campus_profile="tiny",
                  duration_s=180.0, epsilon_total=4.0)


@pytest.fixture(scope="module")
def e2e_report_and_experiment():
    obs = Observability()
    experiment = FederatedExperiment(FederationConfig(**E2E_CONFIG),
                                     obs=obs)
    report = experiment.run(roadtest=False)
    yield report, experiment, obs
    experiment.close()


class TestFederationWins:
    def test_cross_site_model_beats_best_single_site(
            self, e2e_report_and_experiment):
        report, _, _ = e2e_report_and_experiment
        assert report.federated_f1 > 0.5
        assert report.federation_wins, (
            f"federated {report.federated_f1:.3f} <= best single "
            f"{report.best_single_f1:.3f}")

    def test_assembly_used_every_site(self, e2e_report_and_experiment):
        report, _, _ = e2e_report_and_experiment
        assert report.assembly is not None
        assert report.assembly.n_answered == 3
        assert all(rows > 0
                   for rows in report.assembly.rows_per_site.values())
        assert not report.degradations

    def test_obs_spans_cover_the_flow(self, e2e_report_and_experiment):
        _, _, obs = e2e_report_and_experiment
        names = {span.name for span in obs.tracer.spans}
        assert "federation.assemble" in names

    def test_boundary_only_sanitized_rows(self,
                                          e2e_report_and_experiment):
        report, experiment, _ = e2e_report_and_experiment
        # every campus address observable at any training site
        raw = set()
        for site in experiment.sites:
            for stored in site.store.query(Query(collection="packets",
                                                 limit=2000)):
                raw.add(stored.record.src_ip)
                raw.add(stored.record.dst_ip)
        federated, _ = experiment.coordinator.assemble()
        endpoints = {endpoint for _, endpoint in federated.keys}
        assert not endpoints & raw


@pytest.mark.chaos
class TestFederationUnderChaos:
    def test_kill_mid_query_then_full_roadtest(self):
        config = FederationConfig(**{**E2E_CONFIG, "seed": 5})
        experiment = FederatedExperiment(config)
        try:
            for site in experiment.sites:
                site.run_day()
            experiment.holdout.run_day()
            # take one training site dark, mid-federation
            experiment.sites[1].gateway._down = True

            coordinator = experiment.coordinator
            answer = coordinator.query_count(
                Query(collection="packets"), epsilon=0.2)
            assert answer.degraded and answer.n_answered == 2
            assert ("federation", "partial-merge") in [
                (e.stage, e.mode) for e in coordinator.ledger.entries]

            # the full develop -> road-test flow still completes on
            # the surviving quorum
            fed_report = experiment.run(roadtest=True)
            assert fed_report.assembly is not None
            assert fed_report.assembly.degraded
            assert fed_report.assembly.n_answered == 2
            assert fed_report.federated_f1 > 0.0
            assert any("partial-merge" in line
                       for line in fed_report.degradations)
            assert fed_report.roadtests, "no site road-tested"
            tested = {rt.site for rt in fed_report.roadtests}
            assert "campus-1" not in tested  # dark site skipped
            assert "campus-holdout" in tested
        finally:
            experiment.close()


class TestCoordinatorObsIntegration:
    def test_query_span_and_budget_gauges(self):
        obs = Observability()
        config = FederationConfig(n_sites=2, seed=3,
                                  campus_profile="tiny",
                                  duration_s=60.0, epsilon_total=5.0)
        experiment = FederatedExperiment(config, obs=obs)
        try:
            for site in experiment.sites:
                site.run_day()
            experiment.coordinator.query_count(
                Query(collection="packets"), epsilon=0.5)
            names = {span.name for span in obs.tracer.spans}
            assert "federation.query" in names
            spent = obs.metrics.gauge("repro_federation_epsilon_spent",
                                      site="campus-0").value
            assert spent == pytest.approx(0.5)
        finally:
            experiment.close()
