"""DP composition: the merged bound covers the true all-sites answer.

Satellite property, stated exactly as the coordinator relies on it:
for any site count 1-8 and any epsilon split, summing per-site
Laplace-noised counts and bounding with
:func:`~repro.federation.bounds.compose_count_bound` covers the true
total with probability at least the declared confidence.  The union
bound makes the analytical guarantee conservative, so the empirical
coverage over repeated noise draws must sit *above* confidence minus
sampling slack.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import compose_count_bound, laplace_quantile
from repro.federation.bounds import scale_for_missing

TRIALS = 400

epsilons_strategy = st.lists(
    st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
    min_size=1, max_size=8)


class TestLaplaceQuantile:
    def test_matches_tail_probability(self):
        # P(|X| > t) = exp(-t * eps / sens) for Laplace(sens/eps)
        t = laplace_quantile(0.5, 0.05, sensitivity=1.0)
        assert math.exp(-t * 0.5) == pytest.approx(0.05)

    def test_monotone_in_alpha_and_epsilon(self):
        assert laplace_quantile(0.5, 0.01) > laplace_quantile(0.5, 0.1)
        assert laplace_quantile(0.1, 0.05) > laplace_quantile(1.0, 0.05)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            laplace_quantile(0.0, 0.05)
        with pytest.raises(ValueError):
            laplace_quantile(0.5, 0.0)


class TestComposedCoverage:
    @given(epsilons=epsilons_strategy,
           confidence=st.sampled_from([0.9, 0.95, 0.99]),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_bound_covers_true_total(self, epsilons, confidence, seed):
        rng = np.random.default_rng(seed)
        true_counts = rng.integers(0, 5000, size=len(epsilons))
        true_total = float(true_counts.sum())
        bound = compose_count_bound(epsilons, confidence)
        covered = 0
        for _ in range(TRIALS):
            noisy_total = sum(
                count + rng.laplace(0.0, 1.0 / eps)
                for count, eps in zip(true_counts, epsilons))
            if abs(noisy_total - true_total) <= bound:
                covered += 1
        # binomial slack at 4 sigma so the test is not itself flaky
        slack = 4.0 * math.sqrt(confidence * (1 - confidence) / TRIALS)
        assert covered / TRIALS >= confidence - slack

    @given(epsilons=epsilons_strategy,
           local_bounds=st.lists(
               st.floats(min_value=0.0, max_value=50.0,
                         allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_local_bounds_add_linearly(self, epsilons, local_bounds):
        base = compose_count_bound(epsilons, 0.95)
        widened = compose_count_bound(epsilons, 0.95,
                                      local_bounds=local_bounds)
        assert widened == pytest.approx(base + sum(local_bounds))

    def test_empty_epsilons_degenerates_to_local(self):
        assert compose_count_bound([], 0.95,
                                   local_bounds=[3.0, 2.0]) == 5.0


class TestScaleForMissing:
    def test_no_missing_is_identity(self):
        assert scale_for_missing(10.0, 2.0, 4, 4, 100.0) == (10.0, 2.0)

    def test_imputes_mean_and_widens(self):
        value, bound = scale_for_missing(30.0, 2.0, 4, 3,
                                         max_site_upper=15.0)
        assert value == pytest.approx(30.0 + 30.0 / 3)
        assert bound == pytest.approx(2.0 + 15.0)

    def test_widening_grows_with_missing_sites(self):
        _, one_missing = scale_for_missing(30.0, 2.0, 4, 3, 15.0)
        _, two_missing = scale_for_missing(30.0, 2.0, 4, 2, 15.0)
        assert two_missing > one_missing

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            scale_for_missing(0.0, 0.0, 3, 0, 1.0)
