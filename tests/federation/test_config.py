"""Per-site stream/key derivation: determinism + isolation.

The federation's reproducibility contract lives here: every random
stream at site *i* of a federation seeded *s* derives from ``(s, i)``
and nothing else, and no two sites share a pseudonym space.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import FederationConfig, SiteSpec, site_key, \
    site_stream_seed
from repro.federation.config import (STREAM_DP, STREAM_FAULTS,
                                     STREAM_PLATFORM)
from repro.privacy.cryptopan import CryptoPan

seeds = st.integers(min_value=0, max_value=2**31 - 1)
site_ids = st.integers(min_value=0, max_value=15)


class TestStreamDerivation:
    @given(seed=seeds, site_id=site_ids)
    @settings(max_examples=50, deadline=None)
    def test_streams_deterministic(self, seed, site_id):
        for stream in (STREAM_PLATFORM, STREAM_DP, STREAM_FAULTS):
            assert site_stream_seed(seed, site_id, stream) \
                == site_stream_seed(seed, site_id, stream)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_streams_distinct_across_sites_and_kinds(self, seed):
        values = {
            site_stream_seed(seed, site_id, stream)
            for site_id in range(8)
            for stream in (STREAM_PLATFORM, STREAM_DP, STREAM_FAULTS)
        }
        assert len(values) == 8 * 3

    def test_spec_derivation_deterministic(self):
        a = SiteSpec.derive(7, 3)
        b = SiteSpec.derive(7, 3)
        assert a == b
        assert a.name == "campus-3"

    def test_keys_distinct_per_site_and_purpose(self):
        keys = {site_key(7, site_id, purpose)
                for site_id in range(8)
                for purpose in ("ingest", "boundary")}
        assert len(keys) == 16
        spec = SiteSpec.derive(7, 0)
        assert spec.ingest_key != spec.boundary_key


class TestKeyIsolation:
    """Satellite: same IP, different site => different pseudonym;
    prefix relationships preserved within one site."""

    @given(seed=seeds,
           octets=st.lists(st.integers(0, 255), min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_same_ip_differs_across_sites(self, seed, octets):
        ip = ".".join(str(o) for o in octets)
        pseudonyms = [
            CryptoPan(site_key(seed, site_id, "boundary")).anonymize(ip)
            for site_id in range(4)
        ]
        # Four independent keys mapping one IP to one value apiece:
        # collisions are 2^-32 events, so all four must be distinct.
        assert len(set(pseudonyms)) == len(pseudonyms)

    @given(seed=seeds, site_id=site_ids,
           a=st.lists(st.integers(0, 255), min_size=4, max_size=4),
           b=st.lists(st.integers(0, 255), min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_prefixes_preserved_within_a_site(self, seed, site_id, a, b):
        ip_a = ".".join(str(o) for o in a)
        ip_b = ".".join(str(o) for o in b)
        pan = CryptoPan(site_key(seed, site_id, "boundary"))
        assert pan.shared_prefix_len(pan.anonymize(ip_a),
                                     pan.anonymize(ip_b)) \
            == pan.shared_prefix_len(ip_a, ip_b)

    def test_ingest_and_boundary_spaces_unlinkable(self):
        spec = SiteSpec.derive(3, 0)
        ingest = CryptoPan(spec.ingest_key)
        boundary = CryptoPan(spec.boundary_key)
        ips = [f"10.1.{i}.{i * 3 % 256}" for i in range(16)]
        assert [ingest.anonymize(ip) for ip in ips] \
            != [boundary.anonymize(ip) for ip in ips]


class TestFederationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FederationConfig(n_sites=0)
        with pytest.raises(ValueError):
            FederationConfig(quorum_fraction=0.0)
        with pytest.raises(ValueError):
            FederationConfig(confidence=1.0)

    def test_quorum_math(self):
        assert FederationConfig(n_sites=3,
                                quorum_fraction=0.5).quorum == 2
        assert FederationConfig(n_sites=4,
                                quorum_fraction=0.5).quorum == 2
        assert FederationConfig(n_sites=1,
                                quorum_fraction=0.5).quorum == 1
        assert FederationConfig(n_sites=5,
                                quorum_fraction=1.0).quorum == 5

    def test_site_specs_cover_all_sites(self):
        config = FederationConfig(n_sites=4, seed=9)
        specs = config.site_specs()
        assert [s.site_id for s in specs] == [0, 1, 2, 3]
        assert len({s.platform_seed for s in specs}) == 4
        assert len({s.dp_seed for s in specs}) == 4
