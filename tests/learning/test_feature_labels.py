"""Curated-label-based featurization (stores without ground truth)."""

import pytest

from repro.learning.features import FeatureConfig, SourceWindowFeaturizer
from repro.netsim.packets import PacketRecord


def _packet(ts, src="9.9.9.9", label="benign"):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip="10.0.0.1", src_port=53,
        dst_port=4444, protocol=17, size=500, payload_len=472, flags=0,
        ttl=60, payload=b"", flow_id=1, app="dns", label=label,
        direction="in",
    )


def _featurizer():
    return SourceWindowFeaturizer(FeatureConfig(window_s=5.0,
                                                min_packets=1))


def test_label_votes_majority():
    f = _featurizer()
    table = {}
    packets = [
        (_packet(0.1), "benign"),
        (_packet(0.2), "ddos-dns-amp"),
        (_packet(0.3), "ddos-dns-amp"),
        (_packet(0.4), "port-scan"),
    ]
    from repro.learning.features import WindowExample

    example = WindowExample(window_start=0.0, endpoint="9.9.9.9")
    for packet, label in packets:
        f._accumulate(example, packet, {}, label=label)
    ds = f.to_dataset([example])
    assert ds.class_names == ["benign", "ddos-dns-amp", "port-scan"]
    assert ds.y[0] == ds.class_names.index("ddos-dns-amp")


def test_benign_votes_ignored():
    f = _featurizer()
    from repro.learning.features import WindowExample

    example = WindowExample(window_start=0.0, endpoint="9.9.9.9")
    for i in range(5):
        f._accumulate(example, _packet(0.1 * i), {}, label="benign")
    ds = f.to_dataset([example])
    assert ds.class_names == ["benign"]
    assert ds.y[0] == 0


def test_from_store_uses_curated_labels():
    from repro.datastore import DataStore, Query

    store = DataStore()
    store.ingest_packets([_packet(float(i) * 0.5, label="benign")
                          for i in range(6)])
    store.ingest_packets([_packet(float(i) * 0.5, src="8.8.8.8",
                                  label="benign") for i in range(6)])
    # curate: mark 8.8.8.8's packets as an attack
    for stored in store.query(Query(collection="packets",
                                    where={"src_ip": "8.8.8.8"})):
        stored.label = "ddos-dns-amp"
    ds = _featurizer().from_store(store)
    by_endpoint = {key[1]: label for key, label in zip(
        ds.keys, (ds.class_names[y] for y in ds.y))}
    assert by_endpoint["8.8.8.8"] == "ddos-dns-amp"
    assert by_endpoint["9.9.9.9"] == "benign"


def test_ground_truth_overrides_votes():
    """With ground truth given, votes are ignored entirely."""
    from repro.events.base import EventWindow, GroundTruth
    from repro.learning.features import WindowExample

    f = _featurizer()
    example = WindowExample(window_start=0.0, endpoint="9.9.9.9")
    f._accumulate(example, _packet(0.1), {}, label="port-scan")
    gt = GroundTruth()   # empty: no events
    ds = f.to_dataset([example], ground_truth=gt)
    assert ds.class_names == ["benign"]
    assert ds.y[0] == 0
