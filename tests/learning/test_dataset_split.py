"""Dataset container and splitting."""

import numpy as np
import pytest

from repro.learning import Dataset, stratified_kfold, train_test_split


def _dataset(n=30, d=3, classes=2, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        X=rng.normal(size=(n, d)),
        y=rng.integers(0, classes, size=n),
        feature_names=[f"f{i}" for i in range(d)],
        class_names=[f"c{i}" for i in range(classes)],
        keys=list(range(n)),
    )


def test_shape_validation():
    with pytest.raises(ValueError):
        Dataset(np.zeros((3, 2)), np.zeros(4), ["a", "b"], ["x", "y"])
    with pytest.raises(ValueError):
        Dataset(np.zeros((3, 2)), np.zeros(3), ["a"], ["x", "y"])
    with pytest.raises(ValueError):
        Dataset(np.zeros(3), np.zeros(3), ["a"], ["x"])


def test_class_counts_and_feature_access():
    ds = _dataset()
    counts = ds.class_counts()
    assert sum(counts.values()) == len(ds)
    assert len(ds.feature("f1")) == len(ds)
    with pytest.raises(KeyError):
        ds.feature("missing")


def test_subset_preserves_keys():
    ds = _dataset()
    sub = ds.subset([0, 2, 4])
    assert len(sub) == 3
    assert sub.keys == [0, 2, 4]


def test_binarize():
    ds = _dataset(classes=3)
    binary = ds.binarize("c2")
    assert binary.class_names == ["other", "c2"]
    assert set(np.unique(binary.y)) <= {0, 1}
    assert np.all((ds.y == 2) == (binary.y == 1))


def test_concatenate():
    a, b = _dataset(seed=1), _dataset(seed=2)
    combined = Dataset.concatenate([a, b])
    assert len(combined) == len(a) + len(b)
    mismatched = _dataset(d=4, seed=3)
    with pytest.raises(ValueError):
        Dataset.concatenate([a, mismatched])


def test_train_test_split_stratified_preserves_ratio():
    ds = _dataset(n=200)
    train, test = train_test_split(ds, test_fraction=0.25, seed=1)
    assert len(train) + len(test) == 200
    assert len(test) == pytest.approx(50, abs=3)
    # every class appears in both sides
    assert set(np.unique(train.y)) == set(np.unique(test.y))


def test_split_reproducible_and_disjoint():
    ds = _dataset(n=100)
    train1, test1 = train_test_split(ds, seed=5)
    train2, test2 = train_test_split(ds, seed=5)
    assert test1.keys == test2.keys
    assert set(train1.keys) & set(test1.keys) == set()


def test_split_invalid_fraction():
    with pytest.raises(ValueError):
        train_test_split(_dataset(), test_fraction=1.5)


def test_kfold_partitions_and_strata():
    ds = _dataset(n=100)
    folds = list(stratified_kfold(ds, k=5, seed=2))
    assert len(folds) == 5
    all_test_keys = [k for _, test in folds for k in test.keys]
    assert sorted(all_test_keys) == list(range(100))
    for train, test in folds:
        assert set(train.keys) & set(test.keys) == set()


def test_kfold_invalid_k():
    with pytest.raises(ValueError):
        list(stratified_kfold(_dataset(), k=1))
