"""Decision tree: learning, structure, constraints, introspection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.learning.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    NotFittedError,
)


def test_fits_axis_aligned_boundary():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(400, 2))
    y = (X[:, 0] > 0.5).astype(int)
    tree = DecisionTreeClassifier().fit(X, y)
    assert np.mean(tree.predict(X) == y) == 1.0
    assert tree.depth == 1
    assert tree.n_leaves == 2
    # the split must be on feature 0 near 0.5
    assert tree.root_.feature == 0
    assert tree.root_.threshold == pytest.approx(0.5, abs=0.05)


def test_max_depth_respected():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 5))
    y = rng.integers(0, 2, size=300)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    assert tree.depth <= 3


def test_min_samples_leaf_respected():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(200, 4))
    y = (X[:, 0] > 0).astype(int)
    tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
    assert all(leaf.n_samples >= 20 for leaf in tree.leaves())


def test_pure_node_stops_splitting():
    X = np.asarray([[0.0], [1.0], [2.0]])
    y = np.asarray([0, 0, 0])
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.n_leaves == 1


def test_predict_proba_rows_sum_to_one():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(150, 3))
    y = rng.integers(0, 3, size=150)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    proba = tree.predict_proba(X)
    assert proba.shape == (150, 3)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_multiclass():
    rng = np.random.default_rng(4)
    X = rng.uniform(size=(600, 2))
    y = (X[:, 0] > 0.5).astype(int) + 2 * (X[:, 1] > 0.5).astype(int)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert np.mean(tree.predict(X) == y) > 0.98


def test_sample_weight_shifts_decision():
    X = np.asarray([[0.0], [1.0], [2.0], [3.0]])
    y = np.asarray([0, 0, 1, 1])
    heavy_one = np.asarray([1.0, 1.0, 100.0, 100.0])
    tree = DecisionTreeClassifier(max_depth=0)
    tree.fit(X, y, sample_weight=heavy_one)
    assert tree.predict([[1.5]])[0] == 1


def test_decision_path_and_leaves():
    rng = np.random.default_rng(5)
    X = rng.uniform(size=(200, 3))
    y = ((X[:, 0] > 0.5) & (X[:, 1] > 0.5)).astype(int)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    path = tree.decision_path(X[0])
    assert path[0] is tree.root_
    assert path[-1].is_leaf
    assert len(tree.leaves()) == tree.n_leaves


def test_feature_importances_pick_signal():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(500, 6))
    y = (X[:, 2] > 0.0).astype(int)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    importances = tree.feature_importances()
    assert importances.sum() == pytest.approx(1.0)
    assert np.argmax(importances) == 2


def test_not_fitted_raises():
    tree = DecisionTreeClassifier()
    with pytest.raises(NotFittedError):
        tree.predict(np.zeros((1, 2)))


def test_fit_validation():
    tree = DecisionTreeClassifier()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((0, 2)), np.zeros(0))
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3, 2)), np.zeros(2))


def test_regressor_fits_step_function():
    X = np.linspace(0, 1, 200).reshape(-1, 1)
    y = np.where(X[:, 0] > 0.5, 3.0, -1.0)
    reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
    pred = reg.predict(X)
    assert np.allclose(pred[X[:, 0] > 0.55], 3.0, atol=0.2)
    assert np.allclose(pred[X[:, 0] < 0.45], -1.0, atol=0.2)


def test_regressor_not_fitted():
    with pytest.raises(NotFittedError):
        DecisionTreeRegressor().predict(np.zeros((1, 1)))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=6))
def test_property_depth_bound_holds(depth):
    rng = np.random.default_rng(depth)
    X = rng.normal(size=(200, 4))
    y = rng.integers(0, 2, size=200)
    tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
    assert tree.depth <= depth
    assert tree.n_leaves <= 2 ** depth
