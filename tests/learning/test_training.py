"""Training orchestration and the model registry."""

import numpy as np
import pytest

from repro.learning import Dataset, train_test_split
from repro.learning.training import MODEL_REGISTRY, train_and_evaluate


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(21)
    X = rng.normal(size=(400, 4))
    y = (X[:, 0] > 0).astype(int)
    return Dataset(X, y, [f"f{i}" for i in range(4)], ["neg", "pos"])


def test_registry_models_all_trainable(dataset):
    train, test = train_test_split(dataset, seed=0)
    for name in MODEL_REGISTRY:
        result = train_and_evaluate(name, train, test)
        assert result.metrics["accuracy"] > 0.7, name
        assert result.train_seconds >= 0.0
        assert result.model_name == name


def test_binary_metrics_present(dataset):
    train, test = train_test_split(dataset, seed=0)
    result = train_and_evaluate("tree", train, test)
    for key in ("precision", "recall", "f1", "auc"):
        assert key in result.metrics
    assert result.metrics["auc"] > 0.9


def test_positive_class_by_name(dataset):
    train, test = train_test_split(dataset, seed=0)
    result = train_and_evaluate("tree", train, test, positive_class="neg")
    assert 0.0 <= result.metrics["precision"] <= 1.0


def test_unknown_model_raises(dataset):
    train, test = train_test_split(dataset, seed=0)
    with pytest.raises(KeyError):
        train_and_evaluate("quantum", train, test)


def test_custom_model_instance(dataset):
    from repro.learning.models import DecisionTreeClassifier

    train, test = train_test_split(dataset, seed=0)
    result = train_and_evaluate(
        "custom-tree", train, test,
        model=DecisionTreeClassifier(max_depth=2))
    assert result.model_name == "custom-tree"
    assert result.metrics["accuracy"] > 0.8


def test_report_included(dataset):
    train, test = train_test_split(dataset, seed=0)
    result = train_and_evaluate("naive_bayes", train, test)
    assert "pos" in result.report
    assert "_overall" in result.report
    assert str(result).startswith("naive_bayes:")
