"""Classification metrics against hand-computed values."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.learning.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc,
)

Y_TRUE = [0, 0, 1, 1, 1, 0]
Y_PRED = [0, 1, 1, 1, 0, 0]


def test_accuracy():
    assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(4 / 6)
    assert accuracy([], []) == 0.0


def test_precision_recall_f1():
    # predicted positive: 3, of which 2 correct
    assert precision(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    # actual positive: 3, of which 2 found
    assert recall(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
    assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)


def test_zero_denominators():
    assert precision([0, 0], [0, 0]) == 0.0
    assert recall([0, 0], [1, 1]) == 0.0
    assert f1_score([0, 0], [0, 0]) == 0.0


def test_confusion_matrix():
    matrix = confusion_matrix(Y_TRUE, Y_PRED)
    assert matrix.tolist() == [[2, 1], [1, 2]]
    assert matrix.sum() == len(Y_TRUE)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        accuracy([0, 1], [0])


def test_roc_auc_perfect_and_inverted():
    y = [0, 0, 1, 1]
    assert roc_auc(y, [0.1, 0.2, 0.8, 0.9]) == 1.0
    assert roc_auc(y, [0.9, 0.8, 0.2, 0.1]) == 0.0
    assert roc_auc(y, [0.5, 0.5, 0.5, 0.5]) == 0.5


def test_roc_auc_known_value():
    y = [0, 1, 0, 1, 1]
    s = [0.1, 0.4, 0.35, 0.8, 0.2]
    # pairs: (0.1 vs 0.4, 0.8, 0.2)=3 wins; (0.35 vs 0.4, 0.8)=2 wins,
    # (0.35 vs 0.2)=loss -> 5/6
    assert roc_auc(y, s) == pytest.approx(5 / 6)


def test_roc_auc_degenerate_classes():
    assert roc_auc([1, 1], [0.2, 0.3]) == 0.5


def test_classification_report_structure():
    report = classification_report(Y_TRUE, Y_PRED, ["neg", "pos"])
    assert report["pos"]["precision"] == pytest.approx(2 / 3)
    assert report["neg"]["support"] == 3.0
    assert report["_overall"]["accuracy"] == pytest.approx(4 / 6)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1),
                          st.floats(0, 1, allow_nan=False,
                                    allow_subnormal=False)),
                min_size=4, max_size=60))
def test_property_auc_invariant_to_monotone_transform(pairs):
    y = [p[0] for p in pairs]
    s = np.asarray([p[1] for p in pairs])
    base = roc_auc(y, s)
    # scale only: adding an offset can absorb tiny score differences in
    # floating point, which would break strict monotonicity
    transformed = roc_auc(y, 8.0 * s)
    assert base == pytest.approx(transformed)
    assert 0.0 <= base <= 1.0
