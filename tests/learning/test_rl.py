"""RL: environment contract, Q-learning, policies."""

import numpy as np
import pytest

from repro.learning.rl import (
    Box,
    ClassifierPolicy,
    DdosMitigationEnv,
    Discrete,
    GreedyQPolicy,
    MitigationAction,
    QLearningAgent,
    RandomPolicy,
    StaticThresholdPolicy,
    discretize,
    evaluate_policy,
)


class TestSpaces:
    def test_discrete(self):
        space = Discrete(3)
        assert space.contains(0) and space.contains(2)
        assert not space.contains(3)
        assert not space.contains("a")
        rng = np.random.default_rng(0)
        assert all(space.contains(space.sample(rng)) for _ in range(10))

    def test_box(self):
        space = Box(low=(0.0, 0.0), high=(1.0, 1.0))
        assert space.contains(np.asarray([0.5, 0.5]))
        assert not space.contains(np.asarray([1.5, 0.5]))
        clipped = space.clip([2.0, -1.0])
        assert clipped.tolist() == [1.0, 0.0]


class TestEnv:
    def test_reset_and_step_contract(self):
        env = DdosMitigationEnv(episode_len=10, seed=3)
        obs = env.reset(seed=1)
        assert env.observation_space.contains(obs)
        total_steps = 0
        done = False
        while not done:
            obs, reward, done, info = env.step(0)
            assert env.observation_space.contains(obs)
            assert reward <= 0.0
            assert set(info) >= {"attack_offered_mbps",
                                 "attack_through_mbps",
                                 "benign_dropped_mbps"}
            total_steps += 1
        assert total_steps == 10

    def test_invalid_action_rejected(self):
        env = DdosMitigationEnv(seed=0)
        env.reset(seed=0)
        with pytest.raises(ValueError):
            env.step(99)

    def test_seeded_reset_reproducible(self):
        env = DdosMitigationEnv(seed=0)
        a = [env.reset(seed=5).tolist()]
        for _ in range(5):
            a.append(env.step(0)[0].tolist())
        env2 = DdosMitigationEnv(seed=99)
        b = [env2.reset(seed=5).tolist()]
        for _ in range(5):
            b.append(env2.step(0)[0].tolist())
        assert a == b

    def test_drop_any_removes_attack(self):
        env = DdosMitigationEnv(seed=1, attack_start_prob=1.0,
                                attack_stop_prob=0.0)
        env.reset(seed=1)
        _, _, _, info = env.step(int(MitigationAction.DROP_ANY))
        if info["attack_offered_mbps"] > 0:
            assert info["attack_through_mbps"] < \
                0.05 * info["attack_offered_mbps"]

    def test_rate_limit_caps_throughput(self):
        env = DdosMitigationEnv(seed=1, attack_start_prob=1.0,
                                attack_stop_prob=0.0, limit_mbps=15.0)
        env.reset(seed=1)
        _, _, _, info = env.step(int(MitigationAction.RATE_LIMIT))
        through = info["attack_through_mbps"] + env.benign_dns_mbps - \
            info["benign_dropped_mbps"]
        if info["attack_offered_mbps"] > 20:
            assert info["attack_through_mbps"] <= 15.0 + 1e-9


class TestDiscretize:
    def test_bins_and_bounds(self):
        assert discretize(np.asarray([0.0, 0.999, 0.5]), bins=4) == (0, 3, 2)
        # out-of-range values clamp
        assert discretize(np.asarray([-1.0, 2.0]), bins=4) == (0, 3)


class TestQLearning:
    @pytest.fixture(scope="class")
    def trained(self):
        env = DdosMitigationEnv(episode_len=60, seed=1)
        agent = QLearningAgent(n_actions=env.action_space.n, seed=2)
        history = agent.train(env, episodes=150)
        return env, agent, history

    def test_learning_improves(self, trained):
        env, agent, history = trained
        early = np.mean(history.episode_rewards[:20])
        late = history.mean_tail(20)
        assert late > early

    def test_beats_random_and_do_nothing(self, trained):
        env, agent, _ = trained
        learned = evaluate_policy(env, GreedyQPolicy(agent), episodes=15)
        random = evaluate_policy(env, RandomPolicy(3, seed=1), episodes=15)
        noop = evaluate_policy(
            env, StaticThresholdPolicy(volume_threshold=9e9,
                                       any_threshold=9e9), episodes=15)
        assert learned.mean_reward > random.mean_reward
        assert learned.mean_reward > noop.mean_reward
        assert learned.attack_admitted_fraction < \
            0.5 * noop.attack_admitted_fraction + 1e-9

    def test_epsilon_decays(self, trained):
        _, agent, _ = trained
        assert agent.epsilon < 1.0
        assert agent.epsilon >= agent.epsilon_min


class TestPolicies:
    def test_static_threshold_logic(self):
        policy = StaticThresholdPolicy(volume_threshold=0.3,
                                       any_threshold=0.7)
        assert policy.act(np.asarray([0.1, 0.5, 0.1, 0.1])) == \
            int(MitigationAction.ALLOW)
        assert policy.act(np.asarray([0.5, 0.5, 0.1, 0.1])) == \
            int(MitigationAction.RATE_LIMIT)
        assert policy.act(np.asarray([0.5, 0.5, 0.9, 0.1])) == \
            int(MitigationAction.DROP_ANY)

    def test_classifier_policy_adapts_model(self):
        from repro.learning.models import DecisionTreeClassifier

        X = np.asarray([[0.1, 0, 0, 0], [0.9, 0, 0, 0]] * 20)
        y = np.asarray([0, 2] * 20)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        policy = ClassifierPolicy(tree)
        assert policy.act(np.asarray([0.05, 0, 0, 0])) == 0
        assert policy.act(np.asarray([0.95, 0, 0, 0])) == 2

    def test_evaluation_counts_actions(self):
        env = DdosMitigationEnv(episode_len=20, seed=4)
        result = evaluate_policy(env, RandomPolicy(3, seed=2), episodes=3)
        assert sum(result.action_counts.values()) == 60
        assert result.episodes == 3
