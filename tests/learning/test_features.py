"""Window featurization from packets and from the store."""

import numpy as np
import pytest

from repro.learning.features import (
    FEATURE_NAMES,
    FeatureConfig,
    SourceWindowFeaturizer,
)
from repro.netsim.packets import PacketRecord, TcpFlags


def _packet(ts, src="9.9.9.9", dst="10.0.0.1", sport=53, dport=4444,
            proto=17, size=1400, direction="in", flags=0, ttl=60):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip=dst, src_port=sport,
        dst_port=dport, protocol=proto, size=size, payload_len=size - 28,
        flags=flags, ttl=ttl, payload=b"", flow_id=1, app="dns",
        label="benign", direction=direction,
    )


def _featurizer(window_s=5.0, min_packets=1):
    return SourceWindowFeaturizer(FeatureConfig(window_s=window_s,
                                                min_packets=min_packets))


def test_grouping_by_window_and_endpoint():
    f = _featurizer()
    packets = [
        _packet(0.5), _packet(1.0),             # window 0, endpoint 9.9.9.9
        _packet(6.0),                           # window 5
        _packet(1.2, src="8.8.8.8"),            # window 0, other endpoint
    ]
    examples = f.aggregate((p, {}) for p in packets)
    keys = {(e.window_start, e.endpoint) for e in examples}
    assert keys == {(0.0, "9.9.9.9"), (5.0, "9.9.9.9"), (0.0, "8.8.8.8")}


def test_external_endpoint_selection_outbound():
    f = _featurizer()
    outbound = _packet(0.5, src="10.0.0.1", dst="93.184.216.34",
                       direction="out")
    examples = f.aggregate([(outbound, {})])
    assert examples[0].endpoint == "93.184.216.34"


def test_feature_vector_semantics():
    f = _featurizer(window_s=5.0)
    packets = [
        _packet(0.1, size=1000),                            # dns in
        _packet(0.2, size=3000),                            # dns in
        _packet(0.3, src="10.0.0.1", dst="9.9.9.9", sport=4444,
                dport=53, direction="out", size=100),       # dns out (query)
    ]
    tags = [{"dns_qr": "response"}, {"dns_qr": "response",
                                     "dns_qtype": "ANY"},
            {"dns_qr": "query"}]
    examples = f.aggregate(zip(packets, tags))
    assert len(examples) == 1
    vec = dict(zip(FEATURE_NAMES, examples[0].vector(5.0)))
    assert vec["pkts"] == 3
    assert vec["bytes"] == 4100
    assert vec["udp_fraction"] == 1.0
    assert vec["dns_fraction"] == 1.0
    assert vec["dns_response_fraction"] == pytest.approx(2 / 3)
    assert vec["dns_any_fraction"] == pytest.approx(1 / 3)
    assert vec["bytes_in_out_ratio"] == pytest.approx(4000 / 101.0)
    assert vec["pkt_rate"] == pytest.approx(3 / 5.0)
    assert vec["port53_src_fraction"] == pytest.approx(2 / 3)


def test_min_packets_filter():
    f = _featurizer(min_packets=3)
    examples = f.aggregate((p, {}) for p in [_packet(0.1), _packet(0.2)])
    assert examples == []


def test_syn_counting():
    f = _featurizer()
    syn = _packet(0.1, proto=6, flags=int(TcpFlags.SYN))
    synack = _packet(0.2, proto=6,
                     flags=int(TcpFlags.SYN | TcpFlags.ACK))
    examples = f.aggregate([(syn, {}), (synack, {})])
    vec = dict(zip(FEATURE_NAMES, examples[0].vector(5.0)))
    assert vec["syn_fraction"] == pytest.approx(0.5)   # pure SYN only


def test_labeling_from_ground_truth():
    from repro.events.base import EventWindow, GroundTruth

    gt = GroundTruth()
    gt.add(EventWindow(kind="ddos", label="ddos-dns-amp", start_time=0.0,
                       end_time=10.0, victims=["10.0.0.1"],
                       actors=["9.9.9.9"]))
    f = _featurizer()
    examples = f.aggregate((p, {}) for p in
                           [_packet(1.0), _packet(1.5),
                            _packet(20.0), _packet(1.0, src="8.8.8.8")])
    ds = f.to_dataset(examples, ground_truth=gt)
    assert ds.class_names == ["benign", "ddos-dns-amp"]
    by_key = dict(zip(ds.keys, ds.y))
    assert by_key[(0.0, "9.9.9.9")] == 1
    assert by_key[(20.0, "9.9.9.9")] == 0     # outside window
    assert by_key[(0.0, "8.8.8.8")] == 0      # not an actor


def test_to_dataset_empty():
    ds = _featurizer().to_dataset([])
    assert len(ds) == 0
    assert ds.n_features == len(FEATURE_NAMES)


def test_from_store_matches_manual_aggregation(collected_platform):
    platform = collected_platform
    gt = platform.collections[-1].ground_truth
    ds = platform.build_dataset()
    assert len(ds) > 0
    assert ds.n_features == len(FEATURE_NAMES)
    assert len(set(ds.class_names)) == len(ds.class_names)
    # at least one attack class labeled
    assert sum(v for k, v in ds.class_counts().items() if k != "benign") > 0


class TestColumnarFromStore:
    """from_store's vectorized path vs the record-at-a-time reference."""

    def _store(self, packets):
        from repro.datastore.store import DataStore
        store = DataStore(segment_capacity=5)
        store.ingest_packets(packets)
        return store

    def test_columnar_path_is_taken_and_equivalent(self):
        packets = [_packet(i * 0.7, sport=53 if i % 3 else 443,
                           direction="in" if i % 2 else "out",
                           flags=int(TcpFlags.SYN) if i % 5 == 0 else 0)
                   for i in range(40)]
        store = self._store(packets)
        f = _featurizer()
        columnar = f.examples_columnar(store)
        assert columnar is not None
        reference = f.examples_from_records(store)
        assert [(e.window_start, e.endpoint) for e in columnar] == \
            [(e.window_start, e.endpoint) for e in reference]
        for fast, slow in zip(columnar, reference):
            assert fast.vector(5.0) == slow.vector(5.0)

    def test_non_canonical_ip_falls_back(self):
        packets = [_packet(0.5), _packet(1.0, src="not-an-ip")]
        store = self._store(packets)
        f = _featurizer()
        assert f.examples_columnar(store) is None
        dataset = f.from_store(store)          # record-path fallback
        assert len(dataset.X) == len(f.examples_from_records(store))

    def test_curated_label_votes_match(self):
        packets = [_packet(i * 0.3) for i in range(20)]
        store = self._store(packets)
        for segment in store.segments("packets"):
            for stored in segment.records:
                if stored.rid % 4 == 0:
                    stored.label = "scan"
            segment.invalidate_indexes()
        f = _featurizer()
        columnar = f.examples_columnar(store)
        reference = f.examples_from_records(store)
        assert [e.label_votes for e in columnar] == \
            [e.label_votes for e in reference]
        assert any(e.label_votes for e in columnar)
