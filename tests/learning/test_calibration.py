"""Calibration measurement and Platt scaling."""

import numpy as np
import pytest

from repro.learning.calibration import (
    CalibrationReport,
    PlattCalibrator,
    calibration_report,
)
from repro.learning.models import GradientBoostingClassifier


class _Sharpened:
    """Wraps a model and pushes its probabilities toward 0/1 — an
    intentionally overconfident classifier."""

    def __init__(self, model, power: float = 4.0):
        self.model = model
        self.power = power
        self.n_classes_ = model.n_classes_

    def predict_proba(self, X):
        p = np.asarray(self.model.predict_proba(X)) ** self.power
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X):
        return np.argmax(self.predict_proba(X), axis=1)


@pytest.fixture(scope="module")
def noisy_task():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(2000, 5))
    # labels are noisy: no model should be confident everywhere
    y = (X[:, 0] + rng.normal(scale=1.2, size=2000) > 0).astype(int)
    model = GradientBoostingClassifier(n_estimators=60).fit(
        X[:900], y[:900])
    return model, X, y


class TestReport:
    def test_perfectly_calibrated_coin(self):
        rng = np.random.default_rng(0)
        n = 4000
        confidence = rng.uniform(0.5, 1.0, size=n)
        # outcome drawn with exactly the stated probability
        correct = rng.random(n) < confidence
        proba = np.column_stack([1 - confidence, confidence])
        y = np.where(correct, 1, 0)
        report = calibration_report(y, proba, n_bins=10)
        assert report.ece < 0.05

    def test_overconfident_model_scores_badly(self, noisy_task):
        model, X, y = noisy_task
        honest = calibration_report(y[900:], model.predict_proba(X[900:]))
        sharp = calibration_report(
            y[900:], _Sharpened(model).predict_proba(X[900:]))
        assert sharp.ece > honest.ece
        assert sharp.max_gap > honest.max_gap

    def test_bins_partition_samples(self, noisy_task):
        model, X, y = noisy_task
        report = calibration_report(y[900:], model.predict_proba(X[900:]),
                                    n_bins=12)
        assert sum(b.count for b in report.bins) == report.n_samples
        assert len(report.bins) == 12

    def test_render(self, noisy_task):
        model, X, y = noisy_task
        report = calibration_report(y[900:], model.predict_proba(X[900:]))
        assert "ECE=" in report.render()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            calibration_report([0, 1], np.zeros((3, 2)))
        with pytest.raises(ValueError):
            calibration_report([0, 1], np.zeros((2, 2)), n_bins=0)


class TestPlatt:
    def test_repairs_overconfident_model(self, noisy_task):
        model, X, y = noisy_task
        sharp = _Sharpened(model)
        before = calibration_report(y[1400:], sharp.predict_proba(X[1400:]))
        calibrated = PlattCalibrator(sharp).fit(X[900:1400], y[900:1400])
        after = calibration_report(y[1400:],
                                   calibrated.predict_proba(X[1400:]))
        assert after.ece < before.ece

    def test_accuracy_roughly_preserved(self, noisy_task):
        model, X, y = noisy_task
        calibrated = PlattCalibrator(model).fit(X[900:1400], y[900:1400])
        base_acc = np.mean(model.predict(X[1400:]) == y[1400:])
        cal_acc = np.mean(calibrated.predict(X[1400:]) == y[1400:])
        assert cal_acc >= base_acc - 0.05

    def test_proba_contract(self, noisy_task):
        model, X, y = noisy_task
        calibrated = PlattCalibrator(model).fit(X[900:1400], y[900:1400])
        proba = calibrated.predict_proba(X[1400:1450])
        assert proba.shape == (50, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)
