"""All estimators learn a separable task; interface contracts hold."""

import numpy as np
import pytest

from repro.learning.models import (
    DecisionTreeClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    NotFittedError,
    RandomForestClassifier,
)

ALL_MODELS = [
    ("tree", lambda: DecisionTreeClassifier(max_depth=6)),
    ("forest", lambda: RandomForestClassifier(n_estimators=15, max_depth=8)),
    ("boosting", lambda: GradientBoostingClassifier(n_estimators=30)),
    ("logistic", lambda: LogisticRegression(n_iter=200)),
    ("mlp", lambda: MLPClassifier(hidden=(16,), epochs=40, random_state=1)),
    ("knn", lambda: KNeighborsClassifier(k=5)),
    ("naive_bayes", lambda: GaussianNB()),
]


@pytest.fixture(scope="module")
def linear_task():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(500, 5))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X[:350], y[:350], X[350:], y[350:]


@pytest.mark.parametrize("name,factory", ALL_MODELS)
def test_learns_linear_task(name, factory, linear_task):
    X_train, y_train, X_test, y_test = linear_task
    model = factory().fit(X_train, y_train)
    acc = float(np.mean(model.predict(X_test) == y_test))
    assert acc > 0.85, f"{name} accuracy {acc}"


@pytest.mark.parametrize("name,factory", ALL_MODELS)
def test_proba_contract(name, factory, linear_task):
    X_train, y_train, X_test, _ = linear_task
    model = factory().fit(X_train, y_train)
    proba = model.predict_proba(X_test)
    assert proba.shape == (len(X_test), 2)
    assert np.all(proba >= -1e-9)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
    assert np.array_equal(model.predict(X_test), np.argmax(proba, axis=1))


@pytest.mark.parametrize("name,factory", ALL_MODELS)
def test_not_fitted_raises(name, factory):
    with pytest.raises(NotFittedError):
        factory().predict(np.zeros((2, 5)))


@pytest.mark.parametrize("name,factory", [
    ("forest", lambda: RandomForestClassifier(n_estimators=10, max_depth=6)),
    ("boosting", lambda: GradientBoostingClassifier(n_estimators=25)),
    ("mlp", lambda: MLPClassifier(hidden=(16,), epochs=40, random_state=3)),
    ("naive_bayes", lambda: GaussianNB()),
])
def test_multiclass_support(name, factory):
    rng = np.random.default_rng(11)
    X = rng.uniform(size=(600, 2))
    y = (X[:, 0] > 0.5).astype(int) + 2 * (X[:, 1] > 0.5).astype(int)
    model = factory().fit(X, y)
    acc = float(np.mean(model.predict(X) == y))
    assert acc > 0.8, f"{name} multiclass accuracy {acc}"
    assert model.predict_proba(X).shape == (600, 4)


def test_nonlinear_task_trees_beat_linear():
    rng = np.random.default_rng(13)
    X = rng.uniform(-1, 1, size=(800, 2))
    y = ((X[:, 0] * X[:, 1]) > 0).astype(int)   # XOR-like
    boosting = GradientBoostingClassifier(n_estimators=40).fit(
        X[:600], y[:600])
    logistic = LogisticRegression(n_iter=300).fit(X[:600], y[:600])
    acc_boost = np.mean(boosting.predict(X[600:]) == y[600:])
    acc_logit = np.mean(logistic.predict(X[600:]) == y[600:])
    assert acc_boost > 0.9
    assert acc_boost > acc_logit + 0.2


def test_forest_reproducible_with_seed(linear_task):
    X_train, y_train, X_test, _ = linear_task
    a = RandomForestClassifier(n_estimators=8, random_state=5).fit(
        X_train, y_train).predict(X_test)
    b = RandomForestClassifier(n_estimators=8, random_state=5).fit(
        X_train, y_train).predict(X_test)
    assert np.array_equal(a, b)


def test_forest_importances_normalised(linear_task):
    X_train, y_train, _, _ = linear_task
    model = RandomForestClassifier(n_estimators=10).fit(X_train, y_train)
    importances = model.feature_importances()
    assert importances.sum() == pytest.approx(1.0)
    assert np.argmax(importances) in (0, 1)


def test_invalid_params():
    with pytest.raises(ValueError):
        RandomForestClassifier(n_estimators=0)
    with pytest.raises(ValueError):
        KNeighborsClassifier(k=0)


def test_knn_k_larger_than_dataset():
    X = np.asarray([[0.0], [1.0], [2.0]])
    y = np.asarray([0, 1, 1])
    model = KNeighborsClassifier(k=50).fit(X, y)
    assert model.predict([[1.5]])[0] == 1
