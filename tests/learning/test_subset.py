"""Minimal-collection-spec search."""

import numpy as np
import pytest

from repro.learning.dataset import Dataset
from repro.learning.features import FEATURE_NAMES
from repro.learning.models import DecisionTreeClassifier
from repro.learning.subset import (
    FEATURE_COLLECTION_TIER,
    CollectionSpec,
    minimal_feature_subset,
)


def _dataset(informative=("pkt_rate",), n=400, seed=0):
    """Binary task where only `informative` features carry signal."""
    rng = np.random.default_rng(seed)
    X = np.abs(rng.normal(size=(n, len(FEATURE_NAMES))))
    y = np.zeros(n, dtype=int)
    for name in informative:
        index = FEATURE_NAMES.index(name)
        y |= (X[:, index] > 1.2).astype(int)
    return Dataset(X, y, list(FEATURE_NAMES), ["benign", "attack"])


def test_finds_single_informative_feature():
    ds = _dataset(informative=("pkt_rate",))
    spec = minimal_feature_subset(
        lambda: DecisionTreeClassifier(max_depth=3), ds, tolerance=0.05)
    assert "pkt_rate" in spec.features
    assert len(spec.features) <= 2
    assert spec.metric_subset >= spec.metric_full - 0.05


def test_keeps_all_needed_features():
    ds = _dataset(informative=("pkt_rate", "unique_dsts"), seed=3)
    spec = minimal_feature_subset(
        lambda: DecisionTreeClassifier(max_depth=4), ds, tolerance=0.05)
    assert {"pkt_rate", "unique_dsts"} <= set(spec.features) or \
        spec.metric_subset >= spec.metric_full - 0.05


def test_tier_reporting():
    ds = _dataset(informative=("dns_any_fraction",), seed=5)
    spec = minimal_feature_subset(
        lambda: DecisionTreeClassifier(max_depth=3), ds, tolerance=0.05)
    if "dns_any_fraction" in spec.features:
        assert spec.needs_full_capture
        assert spec.tiers_required[-1] == "payload"


def test_all_features_have_tiers():
    for name in FEATURE_NAMES:
        assert FEATURE_COLLECTION_TIER.get(name) in (
            "counter", "flow", "payload")


def test_multiclass_rejected():
    ds = _dataset()
    bad = Dataset(ds.X, np.clip(ds.y + 1, 0, 2),
                  ds.feature_names, ["a", "b", "c"])
    with pytest.raises(ValueError):
        minimal_feature_subset(
            lambda: DecisionTreeClassifier(), bad)


def test_render():
    spec = CollectionSpec(features=["pkts", "unique_dsts"],
                          metric_full=0.95, metric_subset=0.94,
                          window_s=5.0, tiers_required=["counter", "flow"])
    text = spec.render()
    assert "[counter] pkts" in text
    assert "[flow] unique_dsts" in text
    assert not spec.needs_full_capture
