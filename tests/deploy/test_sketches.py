"""Sketch primitives: count-min, Bloom, HyperLogLog."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.deploy.sketches import BloomFilter, CountMinSketch, HyperLogLog


class TestCountMin:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=3)
        truth = {}
        rng = np.random.default_rng(0)
        for _ in range(500):
            key = f"ip{rng.integers(200)}"
            count = int(rng.integers(1, 10))
            sketch.add(key, count)
            truth[key] = truth.get(key, 0) + count
        for key, value in truth.items():
            assert sketch.estimate(key) >= value

    def test_error_bound_mostly_holds(self):
        epsilon, delta = 0.01, 0.01
        sketch = CountMinSketch(epsilon=epsilon, delta=delta)
        rng = np.random.default_rng(1)
        truth = {}
        for _ in range(5000):
            key = f"k{rng.integers(1000)}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        violations = sum(
            1 for key, value in truth.items()
            if sketch.estimate(key) - value > epsilon * sketch.total
        )
        assert violations / len(truth) <= delta * 5   # generous slack

    def test_unseen_key_can_be_zero(self):
        sketch = CountMinSketch(width=4096, depth=4)
        sketch.add("a")
        assert sketch.estimate("definitely-not-there") <= 1

    def test_reset(self):
        sketch = CountMinSketch(width=64, depth=3)
        sketch.add("x", 10)
        sketch.reset()
        assert sketch.estimate("x") == 0
        assert sketch.total == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=2).add("x", -1)

    def test_parameter_sizing(self):
        sketch = CountMinSketch(epsilon=0.001, delta=0.01)
        assert sketch.width >= int(np.e / 0.001)
        assert sketch.depth >= int(np.log(100))
        assert sketch.sram_bits == sketch.width * sketch.depth * 32

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=6), min_size=1,
                    max_size=60))
    def test_property_estimate_at_least_truth(self, keys):
        sketch = CountMinSketch(width=32, depth=3)
        for key in keys:
            sketch.add(key)
        for key in set(keys):
            assert sketch.estimate(key) >= keys.count(key)


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        items = [f"item{i}" for i in range(800)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=2000, fp_rate=0.01)
        for i in range(2000):
            bloom.add(f"present{i}")
        fp = sum(1 for i in range(5000) if f"absent{i}" in bloom)
        assert fp / 5000 < 0.05

    def test_reset(self):
        bloom = BloomFilter(capacity=100)
        bloom.add("x")
        bloom.reset()
        assert "x" not in bloom

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(fp_rate=1.5)


class TestHll:
    def test_estimate_accuracy(self):
        hll = HyperLogLog(p=12)
        n = 20_000
        for i in range(n):
            hll.add(f"flow{i}")
        assert hll.estimate() == pytest.approx(n, rel=0.05)

    def test_duplicates_not_double_counted(self):
        hll = HyperLogLog(p=10)
        for _ in range(3):
            for i in range(500):
                hll.add(f"x{i}")
        assert hll.estimate() == pytest.approx(500, rel=0.15)

    def test_small_range_correction(self):
        hll = HyperLogLog(p=10)
        for i in range(10):
            hll.add(f"v{i}")
        assert hll.estimate() == pytest.approx(10, rel=0.35)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            HyperLogLog(p=2)

    def test_sram_accounting(self):
        assert HyperLogLog(p=10).sram_bits == 1024 * 8


class TestAddBatch:
    """Batch updates must land in exactly the same sketch state as
    repeated single adds."""

    @given(items=st.lists(st.sampled_from([f"k{i}" for i in range(20)]),
                          max_size=60),
           counts=st.one_of(st.none(), st.integers(0, 50)))
    @settings(max_examples=60, deadline=None)
    def test_countmin_matches_sequential(self, items, counts):
        batch = CountMinSketch(width=64, depth=3)
        sequential = CountMinSketch(width=64, depth=3)
        batch.add_batch(items, counts)
        for item in items:
            sequential.add(item, 1 if counts is None else counts)
        assert np.array_equal(batch._table, sequential._table)
        assert batch.total == sequential.total

    def test_countmin_per_item_counts(self):
        batch = CountMinSketch(width=64, depth=3)
        sequential = CountMinSketch(width=64, depth=3)
        items = ["a", "b", "a", "c"]
        counts = [3, 1, 4, 1]
        batch.add_batch(items, counts)
        for item, count in zip(items, counts):
            sequential.add(item, count)
        assert np.array_equal(batch._table, sequential._table)
        assert batch.total == sequential.total

    def test_countmin_rejects_negative(self):
        sketch = CountMinSketch(width=64, depth=3)
        with pytest.raises(ValueError):
            sketch.add_batch(["a"], -1)
        with pytest.raises(ValueError):
            sketch.add_batch(["a", "b"], [1, -2])

    @given(items=st.lists(st.sampled_from([f"k{i}" for i in range(30)]),
                          max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_bloom_matches_sequential(self, items):
        batch = BloomFilter(capacity=500, fp_rate=0.01)
        sequential = BloomFilter(capacity=500, fp_rate=0.01)
        batch.add_batch(items)
        for item in items:
            sequential.add(item)
        assert np.array_equal(batch._bits, sequential._bits)
        assert batch.count == sequential.count

    @given(items=st.lists(st.sampled_from([f"k{i}" for i in range(30)]),
                          max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_hll_matches_sequential(self, items):
        batch = HyperLogLog(p=8)
        sequential = HyperLogLog(p=8)
        batch.add_batch(items)
        for item in items:
            sequential.add(item)
        assert np.array_equal(batch._registers, sequential._registers)
