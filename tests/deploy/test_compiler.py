"""Tree-to-table compilation: semantic equivalence and cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.deploy.compiler import (
    FeatureQuantizer,
    classify,
    compile_tree,
)
from repro.learning.models import DecisionTreeClassifier


def _task(seed=0, n=400, d=5, classes=2):
    rng = np.random.default_rng(seed)
    X = np.abs(rng.normal(size=(n, d))) * (10.0 ** rng.integers(0, 4, size=d))
    if classes == 2:
        y = (X[:, 0] > np.median(X[:, 0])).astype(int)
    else:
        y = ((X[:, 0] > np.median(X[:, 0])).astype(int)
             + (X[:, 1] > np.median(X[:, 1])).astype(int))
    return X, y


class TestQuantizer:
    def test_roundtrip_monotone(self):
        X, _ = _task()
        q = FeatureQuantizer.for_features(X)
        for x in X[:50]:
            qx = q.quantize(x)
            assert all(0 <= v <= q.max_value for v in qx)
            back = q.dequantize(qx)
            assert all(abs(b - v) <= 1.0 / s + 1e-9
                       for b, v, s in zip(back, x, q.scales))

    def test_quantize_clips_to_width(self):
        q = FeatureQuantizer(scales=[1.0], width=8)
        assert q.quantize([1e9]) == [255]
        assert q.quantize([-5.0]) == [0]

    def test_threshold_quantization_consistent(self):
        q = FeatureQuantizer(scales=[10.0], width=16)
        t = 1.25
        qt = q.quantize_threshold(0, t)
        # x <= t  <=>  quantize(x) <= qt for the grid points
        for qv in range(0, 30):
            x = qv / 10.0
            assert (x <= t) == (qv <= qt)


class TestCompile:
    def test_entries_bounded_by_leaves(self):
        X, y = _task()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        q = FeatureQuantizer.for_features(X)
        result = compile_tree(tree, [f"f{i}" for i in range(X.shape[1])], q)
        assert result.n_entries <= tree.n_leaves
        assert result.tcam_entries >= result.n_entries
        assert result.tcam_bits == result.tcam_entries * \
            result.key_width_bits

    def test_feature_name_mismatch_rejected(self):
        X, y = _task()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        q = FeatureQuantizer.for_features(X)
        with pytest.raises(ValueError):
            compile_tree(tree, ["only_one"], q)

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ValueError):
            compile_tree(DecisionTreeClassifier(), ["a"],
                         FeatureQuantizer(scales=[1.0]))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), depth=st.integers(1, 6))
    def test_property_semantic_equivalence(self, seed, depth):
        """lookup(q(x)) == tree.predict(dequantize(q(x))) exactly."""
        X, y = _task(seed=seed)
        tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
        q = FeatureQuantizer.for_features(X)
        names = [f"f{i}" for i in range(X.shape[1])]
        result = compile_tree(tree, names, q)
        rng = np.random.default_rng(seed + 1)
        probes = np.vstack([
            X[:100],
            X[:50] * rng.uniform(0.5, 2.0, size=(50, X.shape[1])),
        ])
        for x in probes:
            qx = q.quantize(x)
            want = int(tree.predict(
                np.asarray(q.dequantize(qx)).reshape(1, -1))[0])
            assert classify(result, x) == want

    def test_multiclass_compilation(self):
        X, y = _task(classes=3)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        q = FeatureQuantizer.for_features(X)
        names = [f"f{i}" for i in range(X.shape[1])]
        result = compile_tree(tree, names, q,
                              class_names=["a", "b", "c"])
        assert result.program.class_names == ["a", "b", "c"]
        predictions = {classify(result, x) for x in X[:200]}
        assert predictions <= {0, 1, 2}
        assert len(predictions) >= 2

    def test_entry_confidence_recorded(self):
        X, y = _task()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        q = FeatureQuantizer.for_features(X)
        result = compile_tree(tree, [f"f{i}" for i in range(X.shape[1])], q)
        for entry in result.classify_table.entries:
            assert 0.0 < entry.params["confidence"] <= 1.0
