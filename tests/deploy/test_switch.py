"""Emulated switch: the closed sense/infer/react loop."""

import numpy as np
import pytest

from repro.deploy.compiler import FeatureQuantizer, compile_tree
from repro.deploy.switch import EmulatedSwitch, SwitchConfig
from repro.events import DnsAmplificationAttack, GroundTruth, Scenario, \
    run_scenario
from repro.learning.features import FEATURE_NAMES
from repro.learning.models import DecisionTreeClassifier
from repro.netsim import make_campus


def _ddos_classifier():
    """A hand-trained tree: high dns_any_fraction + inbound ratio => ddos.

    Trained on synthetic feature vectors so the test does not depend on
    the learning stack.
    """
    rng = np.random.default_rng(0)
    n = 400
    X = np.zeros((n, len(FEATURE_NAMES)))
    idx = {name: i for i, name in enumerate(FEATURE_NAMES)}
    y = np.zeros(n, dtype=int)
    for i in range(n):
        attack = i % 2 == 1
        y[i] = int(attack)
        X[i, idx["pkts"]] = rng.uniform(500, 5000) if attack else \
            rng.uniform(2, 200)
        X[i, idx["dns_fraction"]] = rng.uniform(0.9, 1.0) if attack else \
            rng.uniform(0.0, 0.6)
        X[i, idx["dns_any_fraction"]] = rng.uniform(0.8, 1.0) if attack \
            else rng.uniform(0.0, 0.1)
        X[i, idx["bytes_in_out_ratio"]] = rng.uniform(30, 200) if attack \
            else rng.uniform(0.1, 10)
        X[i, idx["pkt_rate"]] = rng.uniform(100, 1000) if attack else \
            rng.uniform(0.1, 40)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    quantizer = FeatureQuantizer.for_features(X)
    return compile_tree(tree, FEATURE_NAMES, quantizer,
                        class_names=["benign", "ddos-dns-amp"])


@pytest.fixture(scope="module")
def attack_run():
    """Run a DDoS day against a deployed switch (enforcing mode)."""
    net = make_campus("tiny", seed=50)
    compiled = _ddos_classifier()
    switch = EmulatedSwitch(net, compiled, SwitchConfig(
        window_s=5.0, grace_s=2.0, confidence_threshold=0.9,
        mitigation_duration_s=60.0,
    ))
    scenario = Scenario("ddos-day", duration_s=90.0)
    scenario.add(DnsAmplificationAttack, 20.0, 30.0, attack_gbps=0.1,
                 resolvers=8)
    gt = run_scenario(net, scenario, seed=4)
    return net, switch, gt


def test_detects_attack_sources(attack_run):
    net, switch, gt = attack_run
    detections = [d for d in switch.detections
                  if d.class_name == "ddos-dns-amp"]
    assert detections
    actors = set(gt.windows[0].actors)
    detected = {d.endpoint for d in detections}
    assert detected & actors
    # most detections point at true actors
    assert len([d for d in detections if d.endpoint in actors]) >= \
        0.8 * len(detections)


def test_mitigation_reduces_attack_traffic():
    def run_day(with_switch: bool):
        net = make_campus("tiny", seed=50)
        flows = []
        net.add_flow_observer(flows.append)
        if with_switch:
            EmulatedSwitch(net, _ddos_classifier(), SwitchConfig(
                window_s=5.0, grace_s=2.0, confidence_threshold=0.9,
                mitigation_duration_s=120.0,
            ))
        scenario = Scenario("ddos-day", duration_s=120.0)
        scenario.add(DnsAmplificationAttack, 20.0, 60.0, attack_gbps=0.05,
                     resolvers=8)
        run_scenario(net, scenario, seed=4)
        return sum(f.transferred_bytes for f in flows
                   if f.label != "benign")

    unprotected = run_day(with_switch=False)
    protected = run_day(with_switch=True)
    assert unprotected > 0
    assert protected < 0.7 * unprotected


def test_shadow_mode_never_acts():
    net = make_campus("tiny", seed=51)
    compiled = _ddos_classifier()
    switch = EmulatedSwitch(net, compiled, SwitchConfig(shadow=True))
    scenario = Scenario("ddos-day", duration_s=60.0)
    scenario.add(DnsAmplificationAttack, 10.0, 20.0, attack_gbps=0.1)
    run_scenario(net, scenario, seed=5)
    assert switch.detections               # verdicts logged
    assert not switch.mitigation_log       # nothing enforced
    assert all(not d.acted for d in switch.detections)


def test_confidence_threshold_gates_action():
    net = make_campus("tiny", seed=52)
    compiled = _ddos_classifier()
    switch = EmulatedSwitch(net, compiled, SwitchConfig(
        confidence_threshold=1.01))        # impossible bar
    scenario = Scenario("d", duration_s=60.0)
    scenario.add(DnsAmplificationAttack, 10.0, 20.0, attack_gbps=0.1)
    run_scenario(net, scenario, seed=6)
    assert all(not d.acted for d in switch.detections)
    assert not switch.mitigation_log


def test_sketches_updated(attack_run):
    net, switch, gt = attack_run
    assert switch.packets_processed > 0
    actor = gt.windows[0].actors[0]
    assert switch.byte_sketch.estimate(actor) > 0
    assert actor in switch.seen_filter


def test_invalid_placement_rejected():
    net = make_campus("tiny", seed=53)
    with pytest.raises(ValueError):
        EmulatedSwitch(net, _ddos_classifier(),
                       SwitchConfig(placement="orbit"))


def test_detection_summary(attack_run):
    _, switch, _ = attack_run
    summary = switch.detection_summary()
    assert summary.get("ddos-dns-amp", 0) == len(switch.detections)
