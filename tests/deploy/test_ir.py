"""Match-action IR semantics and range-to-ternary expansion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deploy.ir import (
    FieldMatch,
    MatchActionTable,
    MatchKind,
    TableEntry,
    range_to_ternary,
    ternary_cost,
)


class TestFieldMatch:
    def test_exact(self):
        m = FieldMatch.exact(42)
        assert m.matches(42) and not m.matches(43)

    def test_ternary(self):
        m = FieldMatch(kind=MatchKind.TERNARY, value=0b1010, mask=0b1110)
        assert m.matches(0b1010)
        assert m.matches(0b1011)      # last bit masked out
        assert not m.matches(0b0010)

    def test_range(self):
        m = FieldMatch.range(5, 10)
        assert m.matches(5) and m.matches(10) and m.matches(7)
        assert not m.matches(4) and not m.matches(11)
        with pytest.raises(ValueError):
            FieldMatch.range(10, 5)

    def test_lpm(self):
        m = FieldMatch(kind=MatchKind.LPM, value=0x0A000000, prefix_len=8)
        assert m.matches(0x0A010203, width=32)
        assert not m.matches(0x0B000000, width=32)

    def test_wildcard(self):
        m = FieldMatch.wildcard()
        assert m.matches(0) and m.matches(2**31)


class TestTable:
    def _table(self):
        table = MatchActionTable(
            name="t", key_fields=["a", "b"],
            key_widths={"a": 16, "b": 16},
            default_action="set_class", default_params={"class_id": 0},
        )
        table.add_entry(TableEntry(
            priority=2, matches={"a": FieldMatch.range(10, 20)},
            action="set_class", params={"class_id": 1}))
        table.add_entry(TableEntry(
            priority=5,
            matches={"a": FieldMatch.range(15, 25),
                     "b": FieldMatch.exact(7)},
            action="set_class", params={"class_id": 2}))
        return table

    def test_default_on_miss(self):
        action, params = self._table().lookup({"a": 5, "b": 0})
        assert params["class_id"] == 0

    def test_priority_wins(self):
        action, params = self._table().lookup({"a": 18, "b": 7})
        assert params["class_id"] == 2

    def test_lower_priority_when_high_misses(self):
        action, params = self._table().lookup({"a": 18, "b": 8})
        assert params["class_id"] == 1

    def test_unknown_key_rejected(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.add_entry(TableEntry(
                priority=1, matches={"zzz": FieldMatch.exact(1)},
                action="set_class"))

    def test_key_width_bits(self):
        assert self._table().key_width_bits == 32


class TestRangeToTernary:
    def test_known_expansion(self):
        # [3,12] over 4 bits: 3/1111, 4-7/1100, 8-11/1100, 12/1111
        covers = range_to_ternary(3, 12, 4)
        assert covers == [(3, 15), (4, 12), (8, 12), (12, 15)]

    def test_full_range_single_entry(self):
        assert range_to_ternary(0, 15, 4) == [(0, 0)]

    def test_single_value(self):
        assert range_to_ternary(7, 7, 4) == [(7, 15)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            range_to_ternary(5, 3, 4)
        with pytest.raises(ValueError):
            range_to_ternary(0, 16, 4)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_property_cover_is_exact_and_disjoint(self, a, b):
        lo, hi = min(a, b), max(a, b)
        covers = range_to_ternary(lo, hi, 8)
        covered = set()
        for value, mask in covers:
            block = {v for v in range(256) if (v & mask) == (value & mask)}
            assert not block & covered, "overlapping prefix blocks"
            covered |= block
        assert covered == set(range(lo, hi + 1))
        assert len(covers) <= 2 * 8 - 2 or lo == 0 and hi == 255

    def test_single_point_range(self):
        """A degenerate [v, v] range is one exact-match cover."""
        for width in (1, 4, 8, 16):
            for value in (0, (1 << width) - 1, (1 << width) // 2):
                covers = range_to_ternary(value, value, width)
                full_mask = (1 << width) - 1
                assert covers == [(value, full_mask)]

    def test_lo_zero_ranges_align_to_prefixes(self):
        """[0, hi] decomposes into one block per set bit of hi+1."""
        for width in (4, 8, 16):
            for hi in range((1 << min(width, 8)) - 1):
                covers = range_to_ternary(0, hi, width)
                assert len(covers) == bin(hi + 1).count("1")
                assert covers[0][0] == 0

    def test_full_width_range_is_single_wildcard(self):
        for width in (1, 4, 8, 16, 32):
            assert range_to_ternary(0, (1 << width) - 1, width) == [(0, 0)]

    def test_width_one_field(self):
        assert range_to_ternary(0, 0, 1) == [(0, 1)]
        assert range_to_ternary(1, 1, 1) == [(1, 1)]
        assert range_to_ternary(0, 1, 1) == [(0, 0)]
        with pytest.raises(ValueError):
            range_to_ternary(0, 2, 1)

    def test_worst_case_bound_tight(self):
        # [1, 2^w - 2] is the classic worst case: 2*w - 2 covers.
        for width in (4, 8, 16):
            covers = range_to_ternary(1, (1 << width) - 2, width)
            assert len(covers) == 2 * width - 2

    def test_ternary_cost_multiplies_ranges(self):
        entry = TableEntry(
            priority=0,
            matches={"a": FieldMatch.range(3, 12),
                     "b": FieldMatch.range(3, 12),
                     "c": FieldMatch.exact(1)},
            action="x")
        widths = {"a": 4, "b": 4, "c": 4}
        assert ternary_cost(entry, widths) == 16   # 4 * 4 * 1
