"""P4 emission, switch resource model, placement latency."""

import numpy as np
import pytest

from repro.deploy import (
    PLACEMENTS,
    SwitchResourceModel,
    compile_tree,
    emit_p4,
    loop_latency,
)
from repro.deploy.compiler import FeatureQuantizer
from repro.deploy.placement import attack_bytes_before_reaction
from repro.learning.models import DecisionTreeClassifier


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(2)
    X = np.abs(rng.normal(size=(300, 4))) * [10, 1000, 1, 100]
    y = ((X[:, 1] > 900) & (X[:, 2] > 0.5)).astype(int)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    q = FeatureQuantizer.for_features(X)
    return compile_tree(tree, ["pkts", "bytes", "ratio", "rate"], q,
                        class_names=["benign", "ddos"])


class TestP4Gen:
    def test_source_structure(self, compiled):
        source = emit_p4(compiled.program)
        assert "#include <core.p4>" in source
        assert "control Classify" in source
        assert "table classify" in source
        assert "action set_class" in source
        assert "apply {" in source
        for field in compiled.program.feature_fields:
            assert field.replace(".", "_") in source

    def test_entries_rendered(self, compiled):
        source = emit_p4(compiled.program)
        assert source.count("-> set_class") == compiled.n_entries

    def test_metadata_header_comment(self, compiled):
        source = emit_p4(compiled.program)
        assert "model: decision_tree" in source


class TestP4GenTableFidelity:
    """_emit_table must reflect the table's real match kinds/actions."""

    def _source_for(self, table):
        from repro.deploy.ir import SwitchProgram
        program = SwitchProgram(name="p", tables=[table],
                                feature_fields=list(table.key_fields))
        return emit_p4(program)

    def test_compiled_table_declares_real_kinds(self, compiled):
        source = emit_p4(compiled.program)
        table = compiled.program.table("classify")
        constrained = {name for entry in table.entries
                       for name in entry.matches}
        for key in table.key_fields:
            sanitized = key.replace(".", "_")
            expected = "range" if key in constrained else "ternary"
            assert f"{sanitized} : {expected};" in source

    def test_mixed_kinds_per_key(self):
        from repro.deploy.ir import (FieldMatch, MatchActionTable,
                                     MatchKind, TableEntry)
        table = MatchActionTable(
            name="acl", key_fields=["ip", "port", "proto"],
            key_widths={"ip": 32, "port": 16, "proto": 8},
            default_action="NoAction")
        table.add_entry(TableEntry(
            priority=2,
            matches={"ip": FieldMatch(kind=MatchKind.LPM,
                                      value=0x0A000000, prefix_len=8),
                     "port": FieldMatch.range(0, 1023),
                     "proto": FieldMatch.exact(6)},
            action="set_class", params={"class_id": 1}))
        table.add_entry(TableEntry(
            priority=1,
            matches={"port": FieldMatch.exact(53),
                     "proto": FieldMatch.exact(17)},
            action="set_class", params={"class_id": 2}))
        source = self._source_for(table)
        assert "ip : lpm;" in source          # only LPM constrains ip
        assert "port : range;" in source      # range + exact -> range
        assert "proto : exact;" in source     # exact everywhere

    def test_actions_are_union_of_entries_and_default(self):
        from repro.deploy.ir import (FieldMatch, MatchActionTable,
                                     TableEntry)
        table = MatchActionTable(
            name="t", key_fields=["a"], key_widths={"a": 8},
            default_action="NoAction")
        table.add_entry(TableEntry(
            priority=1, matches={"a": FieldMatch.exact(1)},
            action="set_class", params={"class_id": 1}))
        table.add_entry(TableEntry(
            priority=1, matches={"a": FieldMatch.exact(2)},
            action="rate_limit", params={}))
        source = self._source_for(table)
        assert "actions = { NoAction; rate_limit; set_class; }" in source
        assert "default_action = NoAction();" in source

    def test_unconstrained_table_wildcards_keys(self):
        from repro.deploy.ir import MatchActionTable
        table = MatchActionTable(
            name="t", key_fields=["a"], key_widths={"a": 8},
            default_action="NoAction")
        source = self._source_for(table)
        assert "a : ternary;" in source
        assert "actions = { NoAction; }" in source


class TestResources:
    def test_single_program_fits(self, compiled):
        report = SwitchResourceModel().fit([compiled])
        assert report.fits
        assert report.programs_placed == 1
        assert report.bottleneck is None
        assert 0 < report.tcam_fraction < 1

    def test_scale_claim_hundreds_not_thousands(self, compiled):
        """§2: data planes cannot run 'hundreds or thousands' of
        concurrent tasks — the resource model must exhaust well below
        a few thousand copies of even a small classifier."""
        model = SwitchResourceModel()
        max_tasks = model.max_concurrent(compiled)
        assert 2 <= max_tasks < 2000

    def test_max_concurrent_matches_greedy_placement(self, compiled):
        """The closed form must agree with actually packing copies."""
        models = [
            SwitchResourceModel(),
            SwitchResourceModel(tcam_bits_total=compiled.tcam_bits * 7),
            SwitchResourceModel(sram_bits_total=5 * 10**6,
                                sketch_sram_bits=4 * 10**6),
            SwitchResourceModel(n_stages=2, max_tables_per_stage=3),
        ]
        for model in models:
            k = model.max_concurrent(compiled)
            assert model.fit([compiled] * k).programs_placed == k
            assert model.fit([compiled] * (k + 1)).programs_placed == k

    def test_max_concurrent_zero_when_sketch_exceeds_sram(self, compiled):
        model = SwitchResourceModel(sram_bits_total=10,
                                    sketch_sram_bits=100)
        assert model.max_concurrent(compiled) == 0

    def test_bottleneck_reported(self, compiled):
        tiny = SwitchResourceModel(tcam_bits_total=compiled.tcam_bits * 2)
        report = tiny.fit([compiled] * 5)
        assert not report.fits
        assert report.bottleneck == "tcam"
        assert report.programs_placed == 2

    def test_stage_slots_bound(self, compiled):
        model = SwitchResourceModel(n_stages=1, max_tables_per_stage=2,
                                    tcam_bits_total=10**12,
                                    sram_bits_total=10**12)
        report = model.fit([compiled] * 5)
        assert report.programs_placed == 2
        assert report.bottleneck == "stages"


class TestPlacement:
    def test_latency_ordering(self):
        data = loop_latency("data_plane", sensing_window_s=0.0)
        ctrl = loop_latency("control_plane", sensing_window_s=0.0)
        cloud = loop_latency("cloud", sensing_window_s=0.0)
        assert data < 1e-5          # sub-10us
        assert ctrl > 100 * data
        assert cloud > ctrl

    def test_sensing_window_dominates_data_plane(self):
        with_window = loop_latency("data_plane", sensing_window_s=1.0)
        assert with_window == pytest.approx(0.5, rel=0.01)

    def test_unknown_placement(self):
        with pytest.raises(KeyError):
            loop_latency("edge-of-space")

    def test_attack_bytes_before_reaction_scales(self):
        slow = attack_bytes_before_reaction("cloud", attack_gbps=10.0,
                                            sensing_window_s=1.0)
        fast = attack_bytes_before_reaction("data_plane", attack_gbps=10.0,
                                            sensing_window_s=1.0)
        assert slow > fast
        double = attack_bytes_before_reaction("cloud", attack_gbps=20.0,
                                              sensing_window_s=1.0)
        assert double == pytest.approx(2 * slow)

    def test_all_placements_have_constraints(self):
        for placement in PLACEMENTS.values():
            assert placement.model_constraint
