"""Tracer: deterministic tree shape + well-formed nesting.

The hypothesis property drives the tracer with an arbitrary
open/close program and asserts the invariant every consumer of the
trace relies on: the parent of any span opened before it and closed
after it (proper nesting), ids strictly increasing in creation order,
and the tree signature a pure function of structure.
"""

from hypothesis import given, settings, strategies as st

from repro.chaos.resilience import VirtualClock
from repro.obs.tracing import Tracer

#: a random program: True opens a span, False closes the innermost one.
programs = st.lists(st.booleans(), max_size=80)


def _run_program(program, clock=None, max_spans=50_000):
    """Execute open/close ops; returns the tracer (all spans closed)."""
    tracer = Tracer(clock=clock or VirtualClock(), max_spans=max_spans)
    handles = []
    for op in program:
        if op:
            handles.append(tracer.span(f"op.{len(handles)}"))
            handles[-1].__enter__()
        elif handles:
            handles.pop().__exit__(None, None, None)
    while handles:
        handles.pop().__exit__(None, None, None)
    return tracer


class TestNesting:
    def test_parent_ids_follow_the_stack(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        a, b, c, d = tracer.spans
        assert (a.parent_id, b.parent_id, c.parent_id, d.parent_id) == \
            (None, a.span_id, b.span_id, a.span_id)

    def test_attrs_via_handle_set(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("a", x=1) as span:
            span.set(rows=10)
        assert tracer.spans[0].attrs == {"x": 1, "rows": 10}

    def test_durations_come_from_the_injected_clock(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a"):
            clock._now += 2.5
        assert tracer.spans[0].duration_s == 2.5

    @given(program=programs)
    @settings(max_examples=200, deadline=None)
    def test_every_span_is_properly_nested_in_its_parent(self, program):
        tracer = _run_program(program)
        by_id = {span.span_id: span for span in tracer.spans}
        seen = set()
        for span in tracer.spans:
            assert span.end is not None
            assert span.span_id not in seen
            seen.add(span.span_id)
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            # parent opened before the child and closed after it
            assert parent.span_id < span.span_id
            assert parent.start <= span.start
            assert parent.end >= span.end

    @given(program=programs)
    @settings(max_examples=100, deadline=None)
    def test_signature_is_structure_only_and_deterministic(self, program):
        one = _run_program(program, clock=VirtualClock())
        two = _run_program(program, clock=VirtualClock(start=100.0))
        assert one.tree_signature() == two.tree_signature()
        extra = _run_program(program + [True])
        if len(extra.spans) != len(one.spans):
            assert extra.tree_signature() != one.tree_signature()


class TestBounds:
    def test_spans_past_cap_are_dropped_and_counted(self):
        tracer = Tracer(clock=VirtualClock(), max_spans=2)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_dropped_span_handle_is_inert(self):
        tracer = Tracer(clock=VirtualClock(), max_spans=1)
        with tracer.span("kept"):
            pass
        with tracer.span("dropped") as span:
            span.set(ignored=True)
        assert [s.name for s in tracer.spans] == ["kept"]


class TestAdopt:
    def _worker_payload(self):
        worker = Tracer(clock=VirtualClock())
        with worker.span("parallel.task"):
            with worker.span("kernel"):
                pass
        return worker.to_payload()

    def test_adopt_remaps_ids_and_grafts_under_current(self):
        parent = Tracer(clock=VirtualClock())
        with parent.span("parallel.map_tasks") as _:
            adopted = parent.adopt(self._worker_payload())
        map_span = parent.spans[0]
        task, kernel = adopted
        assert task.parent_id == map_span.span_id
        assert kernel.parent_id == task.span_id
        assert task.span_id > map_span.span_id

    def test_adopting_same_payloads_gives_same_signature(self):
        def build():
            tracer = Tracer(clock=VirtualClock())
            with tracer.span("parallel.map_tasks"):
                for _ in range(3):
                    tracer.adopt(self._worker_payload())
            return tracer.tree_signature()

        assert build() == build()

    def test_adopt_respects_max_spans(self):
        tracer = Tracer(clock=VirtualClock(), max_spans=2)
        with tracer.span("parallel.map_tasks"):
            adopted = tracer.adopt(self._worker_payload())
        assert len(adopted) == 1
        assert tracer.dropped == 1

    def test_extra_attrs_are_stamped_on_adopted_spans(self):
        tracer = Tracer(clock=VirtualClock())
        adopted = tracer.adopt(self._worker_payload(), worker=3)
        assert all(span.attrs["worker"] == 3 for span in adopted)
