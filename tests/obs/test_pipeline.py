"""End-to-end observability through both loops.

The acceptance criteria for repro.obs: with observability enabled, one
seeded run yields spans from every layer (capture, store/query,
devloop, parallel workers, switch fast loop) plus the layer metrics —
and a fixed seed reproduces the identical trace tree.
"""

import pytest

from repro.core import CampusPlatform, PlatformConfig
from repro.datastore.query import Query
from repro.events import make_scenario
from repro.obs import Observability
from repro.obs.pipeline import run_observed_pipeline
from repro.obs.report import ObsReport


def _collect(config, duration_s=20.0, seed=5):
    platform = CampusPlatform(config)
    try:
        result = platform.collect(make_scenario("ddos", duration_s),
                                  seed=seed)
        return platform, result
    except BaseException:
        platform.close()
        raise


class TestPlatformInstrumentation:
    def test_obs_disabled_is_the_default_and_builds_nothing(self):
        platform = CampusPlatform(PlatformConfig(campus_profile="tiny"))
        try:
            assert platform.obs is None
            assert platform.capture.obs is None
            assert platform.store.obs is None
            assert platform.executor.obs is None
            assert "obs" not in platform.summary()
        finally:
            platform.close()

    def test_config_flag_builds_and_threads_one_observability(self):
        platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                                 obs_enabled=True))
        try:
            obs = platform.obs
            assert isinstance(obs, Observability)
            assert platform.capture.obs is obs
            assert platform.store.obs is obs
            assert platform.executor.obs is obs
        finally:
            platform.close()

    def test_capture_counters_agree_with_engine_stats(self):
        platform, result = _collect(PlatformConfig(
            campus_profile="tiny", obs_enabled=True))
        try:
            metrics = platform.obs.metrics
            stats = platform.capture.stats
            assert metrics.get("repro_capture_packets_offered_total") \
                .value == stats.packets_offered
            assert metrics.get("repro_capture_packets_captured_total") \
                .value == stats.packets_captured == \
                result.packets_captured
            assert metrics.get("repro_capture_packets_dropped_total") \
                .value == stats.packets_dropped
            assert metrics.get(
                "repro_store_ingest_records_total",
                collection="packets").value == \
                platform.store.count("packets")
        finally:
            platform.close()

    def test_query_records_latency_and_rows_by_path(self):
        platform, _ = _collect(PlatformConfig(
            campus_profile="tiny", obs_enabled=True))
        try:
            rows = platform.store.query(Query(collection="packets"))
            metrics = platform.obs.metrics
            vec = metrics.get("repro_store_query_seconds",
                              path="vectorized")
            assert vec is not None and vec.count >= 1
            assert metrics.get("repro_store_query_rows_total",
                               path="vectorized").value >= len(rows)
            span = next(s for s in platform.obs.tracer.spans
                        if s.name == "store.query")
            assert span.attrs["collection"] == "packets"
            assert span.attrs["rows"] == len(rows)
        finally:
            platform.close()

    def test_fallback_path_is_labeled(self):
        platform, _ = _collect(PlatformConfig(
            campus_profile="tiny", obs_enabled=True))
        try:
            # a residual predicate forces the record-at-a-time path
            platform.store.query(Query(
                collection="packets",
                predicate=lambda r: r.record.size > 0))
            fallback = platform.obs.metrics.get(
                "repro_store_query_seconds", path="fallback")
            assert fallback is not None and fallback.count >= 1
        finally:
            platform.close()

    def test_summary_reports_obs_block(self):
        platform, _ = _collect(PlatformConfig(
            campus_profile="tiny", obs_enabled=True))
        try:
            block = platform.summary()["obs"]
            assert block["spans"] == len(platform.obs.tracer.spans) > 0
            assert block["metrics"] > 0
            assert block["trace_signature"] == \
                platform.obs.tracer.tree_signature()
        finally:
            platform.close()


class TestObservedPipeline:
    @pytest.fixture(scope="class")
    def observed(self):
        return run_observed_pipeline(profile="tiny", duration_s=30.0,
                                     seed=5, workers=2, shards=2)

    def test_spans_cover_every_layer(self, observed):
        obs, meta = observed
        report = ObsReport.from_records(obs.to_records(meta))
        stages = {stat.stage for stat in report.stages}
        assert {"pipeline", "capture", "query", "devloop",
                "parallel", "switch"} <= stages
        parallel = report.stage("parallel")
        assert "parallel.task" in parallel.names  # true worker spans
        switch = report.stage("switch")
        assert "switch.window" in switch.names
        assert "switch.react" in switch.names
        devloop = report.stage("devloop").names
        assert {"devloop.featurize", "devloop.train", "devloop.distill",
                "devloop.verify", "devloop.compile"} <= set(devloop)

    def test_layer_metrics_are_present(self, observed):
        obs, meta = observed
        names = {metric.name for metric in obs.metrics}
        assert {"repro_capture_packets_captured_total",
                "repro_store_ingest_records_total",
                "repro_store_query_seconds",
                "repro_store_shard_records",
                "repro_parallel_tasks_in_workers_total",
                "repro_switch_packets_sensed_total",
                "repro_switch_breaker_state"} <= names

    def test_fixed_seed_reproduces_the_trace_tree(self, observed):
        _, meta = observed
        _, again = run_observed_pipeline(profile="tiny", duration_s=30.0,
                                         seed=5, workers=2, shards=2)
        assert meta["trace_signature"] == again["trace_signature"]
        assert meta["spans"] == again["spans"]

    def test_signature_tracks_structure_not_timing(self, observed):
        _, meta = observed
        # a longer day has more fast-loop windows -> a different tree
        _, other = run_observed_pipeline(profile="tiny", duration_s=60.0,
                                         seed=5, workers=2, shards=2)
        assert meta["trace_signature"] != other["trace_signature"]
        assert other["spans"] > meta["spans"]
