"""Metrics registry: units + the exact-merge property.

The property the whole cross-process story rests on: merging two
histograms is *bit-identical* to having observed the union of their
samples, for any bucket layout — bucket counts are int64 adds and the
value sum is kept as Shewchuk partials (the fsum invariant), so float
addition order cannot leak into reports.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

finite_floats = st.floats(min_value=-1e12, max_value=1e12,
                          allow_nan=False, allow_infinity=False)
bucket_layouts = st.lists(finite_floats, min_size=1, max_size=12)
samples = st.lists(finite_floats, max_size=60)


class TestCounterGauge:
    def test_counter_counts_and_merges(self):
        a, b = Counter("repro_x_total"), Counter("repro_x_total")
        a.inc()
        a.inc(4)
        b.inc(2.5)
        a.merge(b)
        assert a.value == 7.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("repro_x_total").inc(-1)

    def test_gauge_set_inc_dec_and_merge(self):
        g = Gauge("repro_depth")
        g.set(10)
        g.inc(2)
        g.dec(3)
        other = Gauge("repro_depth")
        other.set(5)
        g.merge(other)
        assert g.value == 14


class TestHistogram:
    def test_le_semantics_value_on_bound_falls_in_its_bucket(self):
        hist = Histogram("repro_h", buckets=[1.0, 10.0])
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            hist.observe(value)
        # le=1: {0.5, 1.0}; le=10: {5.0, 10.0}; +Inf: {11.0}
        assert hist.bucket_counts.tolist() == [2, 2, 1]
        assert hist.count == 5

    def test_observe_many_matches_observe(self):
        rng = np.random.default_rng(3)
        values = rng.normal(1e-3, 1e-3, 500)
        one = Histogram("repro_h", buckets=LATENCY_BUCKETS_S)
        many = Histogram("repro_h", buckets=LATENCY_BUCKETS_S)
        for value in values:
            one.observe(value)
        many.observe_many(values)
        assert one.bucket_counts.tolist() == many.bucket_counts.tolist()
        assert one.count == many.count
        assert one.sum == many.sum  # bit-identical, not approx

    def test_bounds_deduped_sorted_and_finite_only(self):
        hist = Histogram("repro_h", buckets=[10.0, 1.0, 10.0])
        assert hist.bounds.tolist() == [1.0, 10.0]
        with pytest.raises(ValueError, match="finite"):
            Histogram("repro_h", buckets=[1.0, math.inf])
        with pytest.raises(ValueError, match="at least one"):
            Histogram("repro_h", buckets=[])

    def test_merge_refuses_different_layouts(self):
        a = Histogram("repro_h", buckets=[1.0])
        b = Histogram("repro_h", buckets=[2.0])
        with pytest.raises(ValueError, match="bucket layouts"):
            a.merge(b)

    @given(buckets=bucket_layouts, left=samples, right=samples)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_exactly_observing_the_union(self, buckets, left,
                                                  right):
        merged = Histogram("repro_h", buckets=buckets)
        other = Histogram("repro_h", buckets=buckets)
        union = Histogram("repro_h", buckets=buckets)
        for value in left:
            merged.observe(value)
        for value in right:
            other.observe(value)
        for value in left + right:
            union.observe(value)
        merged.merge(other)
        assert merged.count == union.count == len(left) + len(right)
        assert merged.bucket_counts.tolist() == \
            union.bucket_counts.tolist()
        # The money assertion: bit-identical, no tolerance.
        assert merged.sum == union.sum
        assert merged.sum == math.fsum(left + right)

    @given(buckets=bucket_layouts, left=samples, right=samples)
    @settings(max_examples=100, deadline=None)
    def test_payload_round_trip_is_exact(self, buckets, left, right):
        src = Histogram("repro_h", buckets=buckets)
        for value in left:
            src.observe(value)
        dst = Histogram("repro_h", buckets=buckets)
        for value in right:
            dst.observe(value)
        dst.load_payload(src.to_payload())
        union = Histogram("repro_h", buckets=buckets)
        for value in right + left:
            union.observe(value)
        assert dst.count == union.count
        assert dst.bucket_counts.tolist() == union.bucket_counts.tolist()
        assert dst.sum == union.sum


class TestRegistry:
    def test_same_name_labels_is_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", path="fast")
        b = registry.counter("repro_x_total", path="fast")
        c = registry.counter("repro_x_total", path="slow")
        assert a is b and a is not c
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("repro_x")

    def test_get_returns_none_for_unknown(self):
        assert MetricsRegistry().get("repro_nope") is None

    def test_merge_payload_rebuilds_every_kind(self):
        src = MetricsRegistry()
        src.counter("repro_c", k="v").inc(3)
        src.gauge("repro_g").set(7)
        src.histogram("repro_h", buckets=COUNT_BUCKETS).observe(12)
        dst = MetricsRegistry()
        dst.counter("repro_c", k="v").inc(1)
        dst.merge_payload(src.to_payload())
        assert dst.counter("repro_c", k="v").value == 4
        assert dst.gauge("repro_g").value == 7
        hist = dst.get("repro_h")
        assert hist.count == 1 and hist.sum == 12.0

    def test_snapshot_renders_prometheus_style_names(self):
        registry = MetricsRegistry()
        registry.counter("repro_c", path="fast").inc(2)
        registry.histogram("repro_h").observe(0.5)
        snap = registry.snapshot()
        assert snap['repro_c{path="fast"}'] == 2
        assert snap["repro_h"] == {"count": 1, "sum": 0.5}
