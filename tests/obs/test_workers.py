"""Cross-process observability: exact merge home, loss goes on record.

Workers buffer metrics/spans in a process-local ``WorkerObs``; the
parent folds the payloads in on completion, in task order.  When a
batch's workers die, whatever they buffered is gone — the executor
must say so in the degradation ledger instead of silently under-
counting.
"""

import math

from repro.chaos.faults import FaultKind, FaultPlan, FaultSpec
from repro.chaos.resilience import DegradationLedger, VirtualClock
from repro.obs import Observability
from repro.obs import runtime
from repro.parallel import ParallelExecutor


def _observed_task(x):
    """Module-level worker task that records into the worker registry."""
    worker = runtime.worker_obs()
    if worker is not None:
        worker.metrics.counter("repro_test_tasks_total").inc()
        worker.metrics.histogram("repro_test_value",
                                 buckets=[1.0, 10.0]).observe(x)
        with worker.tracer.span("kernel", x=x):
            pass
    return x * 2


class TestWorkerRuntime:
    def test_activate_deactivate_scopes_the_module_global(self):
        assert runtime.worker_obs() is None
        worker = runtime.activate()
        try:
            assert runtime.worker_obs() is worker
        finally:
            runtime.deactivate()
        assert runtime.worker_obs() is None

    def test_payload_carries_metrics_spans_and_drops(self):
        worker = runtime.activate()
        try:
            worker.metrics.counter("repro_x_total").inc()
            with worker.tracer.span("kernel"):
                pass
            payload = worker.to_payload()
        finally:
            runtime.deactivate()
        assert payload["metrics"][0]["name"] == "repro_x_total"
        assert payload["spans"][0]["name"] == "kernel"
        assert payload["spans_dropped"] == 0


class TestParentMerge:
    def test_worker_metrics_merge_exactly_in_the_parent(self):
        obs = Observability()
        values = [0.5, 2.0, 5.0, 50.0, 7.0, 0.1]
        with ParallelExecutor(workers=2, obs=obs) as ex:
            results = ex.map_tasks(_observed_task,
                                   [(v,) for v in values])
        assert results == [v * 2 for v in values]
        assert obs.metrics.get("repro_test_tasks_total").value == \
            len(values)
        hist = obs.metrics.get("repro_test_value")
        assert hist.count == len(values)
        assert hist.sum == math.fsum(values)          # exact, no approx
        assert hist.bucket_counts.tolist() == [2, 3, 1]
        assert obs.metrics.get(
            "repro_parallel_tasks_in_workers_total").value == len(values)

    def test_worker_spans_adopt_under_the_map_tasks_span(self):
        obs = Observability()
        with ParallelExecutor(workers=2, obs=obs) as ex:
            ex.map_tasks(_observed_task, [(1.0,), (2.0,)])
        by_id = {s.span_id: s for s in obs.tracer.spans}
        map_span = next(s for s in obs.tracer.spans
                        if s.name == "parallel.map_tasks")
        tasks = [s for s in obs.tracer.spans if s.name == "parallel.task"]
        kernels = [s for s in obs.tracer.spans if s.name == "kernel"]
        assert len(tasks) == 2 and len(kernels) == 2
        assert all(s.parent_id == map_span.span_id for s in tasks)
        assert all(by_id[s.parent_id].name == "parallel.task"
                   for s in kernels)
        assert map_span.end is not None

    def test_same_tasks_same_seed_same_trace_shape(self):
        def run():
            obs = Observability()
            with ParallelExecutor(workers=2, obs=obs) as ex:
                ex.map_tasks(_observed_task, [(v,) for v in (1.0, 2.0,
                                                             3.0)])
            return obs.tracer.tree_signature()

        assert run() == run()

    def test_serial_executor_with_obs_still_spans(self):
        obs = Observability()
        with ParallelExecutor(workers=0, obs=obs) as ex:
            ex.map_tasks(_observed_task, [(1.0,)])
        assert [s.name for s in obs.tracer.spans] == ["parallel.map_tasks"]
        # serial path: no worker context, so no worker-side metrics
        assert obs.metrics.get("repro_test_tasks_total") is None


class TestLossLedger:
    def test_crashed_batch_records_worker_metrics_lost(self):
        plan = FaultPlan(name="crashy", seed=11,
                         specs=(FaultSpec(FaultKind.WORKER_CRASH,
                                          rate=1.0),))
        ledger = DegradationLedger()
        obs = Observability()
        with ParallelExecutor(workers=1, ledger=ledger,
                              fault_injector=plan.injector(),
                              obs=obs) as ex:
            results = ex.map_tasks(_observed_task, [(1.0,), (2.0,)])
        assert results == [2.0, 4.0]  # serial re-run still answers
        entries = [e for e in ledger.entries if e.stage == "obs"]
        assert len(entries) == 1
        assert entries[0].mode == "worker-metrics-lost"
        assert obs.metrics.get(
            "repro_parallel_serial_fallback_total").value == 1
        # the re-run happened in-process: no worker payloads arrived
        assert obs.metrics.get("repro_test_tasks_total") is None
