"""Exporters and the per-stage report: round trips and hard failures."""

import json

import pytest

from repro.chaos.resilience import VirtualClock
from repro.core.eventbus import EventBus
from repro.obs import Observability
from repro.obs.export import (
    ObsFormatError,
    bench_record,
    obs_records,
    read_jsonl,
    registry_from_records,
    render_prometheus,
    write_jsonl,
)
from repro.obs.report import ObsReport, span_stage


def _observed_run():
    """A tiny synthetic run touching spans, metrics, and the recorder."""
    obs = Observability(clock=VirtualClock())
    bus = EventBus()
    obs.attach_bus(bus)
    obs.metrics.counter("repro_capture_packets_captured_total").inc(100)
    obs.metrics.histogram("repro_store_query_seconds",
                          path="vectorized").observe(0.01)
    with obs.span("capture.collect", scenario="ddos"):
        with obs.span("store.query", collection="packets"):
            pass
    bus.publish("chaos:tap_drop", rate=0.5)  # auto-snapshot
    return obs


class TestJsonl:
    def test_round_trip_preserves_every_record(self, tmp_path):
        obs = _observed_run()
        records = obs_records(obs, meta={"seed": 7})
        path = write_jsonl(records, tmp_path / "obs.jsonl")
        loaded = read_jsonl(path)
        assert loaded == json.loads(json.dumps(records))
        assert loaded[0]["type"] == "meta"
        assert loaded[0]["seed"] == 7
        assert loaded[0]["trace_signature"] == obs.tracer.tree_signature()
        types = {record["type"] for record in loaded}
        assert types == {"meta", "metric", "span", "snapshot"}

    def test_rebuilt_registry_is_exact(self, tmp_path):
        obs = _observed_run()
        path = write_jsonl(obs_records(obs), tmp_path / "obs.jsonl")
        registry = registry_from_records(read_jsonl(path))
        assert registry.get("repro_capture_packets_captured_total") \
            .value == 100
        hist = registry.get("repro_store_query_seconds", path="vectorized")
        assert hist.count == 1 and hist.sum == 0.01

    @pytest.mark.parametrize("text,match", [
        ("not json\n", "not valid JSON"),
        ('[1,2]\n', "not an object"),
        ('{"no_type":1}\n', "not an object with a 'type'"),
        ('{"type":"martian"}\n', "unknown record type"),
        ("", "no obs records"),
    ])
    def test_malformed_input_raises_obs_format_error(self, tmp_path, text,
                                                     match):
        path = tmp_path / "bad.jsonl"
        path.write_text(text)
        with pytest.raises(ObsFormatError, match=match):
            read_jsonl(path)

    def test_missing_file_raises_obs_format_error(self, tmp_path):
        with pytest.raises(ObsFormatError, match="cannot read"):
            read_jsonl(tmp_path / "nope.jsonl")

    def test_bench_record_shape(self):
        record = bench_record("test_x", {"median": 0.5, "rounds": 3},
                              suite="test_perf_obs", mode="quick")
        assert record["type"] == "bench"
        assert record["median"] == 0.5
        assert record["suite"] == "test_perf_obs"


class TestPrometheus:
    def test_counter_gauge_and_histogram_exposition(self):
        obs = Observability(clock=VirtualClock())
        obs.metrics.counter("repro_c_total", path="fast").inc(3)
        obs.metrics.gauge("repro_g").set(1.5)
        hist = obs.metrics.histogram("repro_h_seconds",
                                     buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(obs.metrics)
        assert "# TYPE repro_c_total counter" in text
        assert 'repro_c_total{path="fast"} 3' in text
        assert "repro_g 1.5" in text
        # cumulative buckets with le labels, then +Inf == count
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_h_seconds_bucket{le="1"} 2' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_h_seconds_count 3" in text
        assert "repro_h_seconds_sum 5.55" in text


class TestReport:
    def test_span_stage_taxonomy(self):
        assert span_stage("capture.collect") == "capture"
        assert span_stage("store.query") == "query"
        assert span_stage("store.ingest") == "store"
        assert span_stage("devloop.train") == "devloop"
        assert span_stage("parallel.task") == "parallel"
        assert span_stage("switch.react") == "switch"
        assert span_stage("oneword") == "oneword"

    def test_report_aggregates_per_stage(self):
        obs = _observed_run()
        report = obs.report(meta={"seed": 7})
        assert report.meta["seed"] == 7
        assert report.trace_signature == obs.tracer.tree_signature()
        capture = report.stage("capture")
        query = report.stage("query")
        assert capture.spans == 1 and capture.names == \
            {"capture.collect": 1}
        assert query.spans == 1
        assert report.stage("nope") is None
        assert len(report.snapshots) == 1
        assert report.snapshots[0]["reason"] == "chaos:tap_drop"

    def test_render_text_and_json_agree(self):
        obs = _observed_run()
        report = obs.report(meta={"seed": 7})
        text = report.render()
        assert "capture" in text and "store.query×1" in text
        assert "repro_store_query_seconds" in text
        assert "flight-recorder snapshots: 1" in text
        parsed = json.loads(report.render_json())
        assert parsed["meta"]["seed"] == 7
        assert [s["stage"] for s in parsed["stages"]] == \
            ["capture", "query"]

    def test_open_spans_are_not_exported_but_meta_counts_them(self):
        obs = Observability(clock=VirtualClock())
        handle = obs.span("capture.collect")
        handle.__enter__()  # never exited: still open at export time
        report = obs.report()
        assert report.meta["spans"] == 1  # the tracer saw it
        assert report.spans_total == 0    # only finished spans ship
        assert report.stage("capture") is None
