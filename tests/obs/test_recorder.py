"""Flight recorder: bounded rings + trigger semantics."""

from hypothesis import given, settings, strategies as st

from repro.chaos.resilience import VirtualClock
from repro.core.eventbus import BusEvent, EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import DEFAULT_TRIGGERS, FlightRecorder


def _feed(recorder, n, topic="tick"):
    for i in range(n):
        recorder.on_event(BusEvent(topic=topic, payload={"i": i}))


class TestRingBounds:
    @given(capacity=st.integers(min_value=1, max_value=64),
           n=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=150, deadline=None)
    def test_ring_never_exceeds_capacity_under_overflow(self, capacity, n):
        recorder = FlightRecorder(capacity=capacity, triggers=(),
                                  clock=VirtualClock())
        _feed(recorder, n)
        events = recorder.events()
        assert len(events) == min(n, capacity)
        assert recorder.events_seen == n
        assert recorder.events_dropped == n - len(events)
        # the ring keeps the *most recent* events, oldest first
        assert [e.seq for e in events] == \
            list(range(n - len(events) + 1, n + 1))

    @given(n=st.integers(min_value=0, max_value=200),
           snapshot_capacity=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_snapshot_ring_is_bounded_too(self, n, snapshot_capacity):
        recorder = FlightRecorder(
            capacity=4, snapshot_capacity=snapshot_capacity,
            triggers=("boom",), clock=VirtualClock())
        _feed(recorder, n, topic="boom")
        assert len(recorder.snapshots) == min(n, snapshot_capacity)
        assert recorder.snapshots_taken == n


class TestTriggers:
    def test_exact_topic_triggers_a_snapshot(self):
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.on_event(BusEvent(topic="resilience:breaker_open"))
        assert [s.reason for s in recorder.snapshots] == \
            ["resilience:breaker_open"]

    def test_prefix_trigger_catches_every_chaos_fault(self):
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.on_event(BusEvent(topic="chaos:capture_drop"))
        recorder.on_event(BusEvent(topic="chaos:store_latency"))
        assert [s.reason for s in recorder.snapshots] == \
            ["chaos:capture_drop", "chaos:store_latency"]

    def test_untriggered_topics_only_fill_the_ring(self):
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.on_event(BusEvent(topic="collect:start"))
        recorder.on_event(BusEvent(topic="resilience:retry"))
        assert len(recorder.snapshots) == 0
        assert recorder.events_seen == 2

    def test_default_triggers_are_breaker_open_and_chaos(self):
        assert "resilience:breaker_open" in DEFAULT_TRIGGERS
        assert "chaos:" in DEFAULT_TRIGGERS


class TestSnapshots:
    def test_snapshot_freezes_ring_and_metrics(self):
        metrics = MetricsRegistry()
        metrics.counter("repro_x_total").inc(3)
        clock = VirtualClock(start=5.0)
        recorder = FlightRecorder(metrics=metrics, capacity=2,
                                  triggers=(), clock=clock)
        _feed(recorder, 3)
        snap = recorder.snapshot(reason="manual")
        assert snap.reason == "manual"
        assert snap.at == 5.0
        assert [e.seq for e in snap.events] == [2, 3]
        assert snap.metrics == {"repro_x_total": 3}
        assert snap.events_seen == 3 and snap.events_dropped == 1
        # later events must not mutate the frozen snapshot
        _feed(recorder, 2)
        assert [e.seq for e in snap.events] == [2, 3]

    def test_attach_subscribes_to_everything_on_the_bus(self):
        bus = EventBus()
        recorder = FlightRecorder(clock=VirtualClock())
        recorder.attach(bus)
        bus.publish("collect:start", seed=7)
        bus.publish("chaos:tap_drop", rate=0.5)
        assert recorder.events_seen == 2
        assert [s.reason for s in recorder.snapshots] == ["chaos:tap_drop"]
        assert recorder.events()[0].payload == {"seed": 7}
