"""End-to-end chaos suite (``pytest -m chaos``).

Runs the full capture → store → develop → control-loop → persistence
pipeline under each canned fault plan and asserts the failure-model
contract: the run always completes with a report, degradation is flagged
(never hidden), no injected fault escapes as an exception, and a fixed
seed replays a bit-identical ``chaos:*`` schedule.
"""

import pytest

from repro.chaos import make_fault_plan, run_chaos_scenario
from repro.core import ControlLoopHarness, DevelopmentLoop, EventBus
from repro.events import DnsAmplificationAttack, Scenario
from repro.netsim import make_campus

pytestmark = pytest.mark.chaos

_DURATION_S = 60.0


@pytest.fixture(scope="module")
def reports():
    """One scenario run per canned plan; the whole module shares them."""
    return {name: run_chaos_scenario(name, profile="tiny", seed=0,
                                     duration_s=_DURATION_S)
            for name in ("lossy-tap", "slow-store", "flaky-switch")}


@pytest.mark.parametrize("plan", ["lossy-tap", "slow-store",
                                  "flaky-switch"])
def test_pipeline_survives_and_flags_degradation(reports, plan):
    report = reports[plan]
    # ran to completion: the loop still reports, nothing escaped
    assert report.completed
    assert report.plan == plan and report.seed == 0
    # faults actually fired and were flagged, not hidden
    assert sum(report.fault_counts.values()) > 0
    assert report.chaos_events > 0
    assert report.degraded()
    rendered = report.render()
    assert "DEGRADED-BUT-ALIVE" in rendered
    assert report.signature in rendered
    assert report.to_dict()["stages"]


def test_lossy_tap_degrades_capture_with_consistent_accounting(reports):
    report = reports["lossy-tap"]
    capture = report.stage("capture")
    assert capture.degraded
    # drop accounting is consistent with the plan's armed 8% drop rate
    assert abs(capture.detail["fault_drop_rate"] - 0.08) < 0.02
    assert capture.detail["fault_dropped"] > 0
    assert capture.detail["duplicated"] > 0
    # recovery happened: stalled sensor reads were retried, not shed
    assert report.resilience_events > 0


def test_slow_store_degrades_store_but_not_capture(reports):
    report = reports["slow-store"]
    assert report.stage("store").degraded
    assert report.stage("store").detail["transient_errors"] > 0
    assert not report.stage("capture").degraded
    # the atomic export retried through injected torn writes
    persistence = report.stage("persistence")
    assert persistence.detail["export_crashes"] > 0
    assert persistence.detail["round_trip_records"] == \
        report.stage("store").detail["records"]


def test_flaky_switch_degrades_control_loop_only(reports):
    report = reports["flaky-switch"]
    control = report.stage("control")
    assert control.degraded
    assert control.detail["react_failures"] + control.detail["react_shed"] \
        > 0
    assert control.detail["detections"] > 0     # still detecting
    assert not report.stage("capture").degraded
    assert not report.stage("store").degraded


def test_fixed_seed_replays_identical_event_schedule(reports):
    replay = run_chaos_scenario("lossy-tap", profile="tiny", seed=0,
                                duration_s=_DURATION_S)
    baseline = reports["lossy-tap"]
    assert replay.signature == baseline.signature
    assert replay.fault_counts == baseline.fault_counts
    assert replay.chaos_events == baseline.chaos_events


def test_control_loop_harness_under_faults(attack_dataset):
    """The harness itself, driven directly under flaky-switch faults."""
    plan = make_fault_plan("flaky-switch", seed=7)
    injector = plan.injector()
    bus = EventBus()
    injector.bind_bus(bus)
    loop = DevelopmentLoop(teacher_name="tree", student_max_depth=3)
    tool, _ = loop.develop(attack_dataset.binarize("ddos-dns-amp"), seed=1)

    def scenario(seed):
        day = Scenario("day", duration_s=90.0)
        day.add(DnsAmplificationAttack, 20.0, 40.0, attack_gbps=0.08,
                resolvers=8)
        return day

    harness = ControlLoopHarness(
        tool, scenario, lambda seed: make_campus("tiny", seed=seed),
        fault_injector=injector, bus=bus)
    report = harness.run(seed=60, placement="data_plane")
    assert report.detections > 0
    assert report.resilience              # summary populated
    fired = sum(injector.counts().values())
    assert fired > 0
    assert report.degraded == bool(
        report.resilience.get("table_misses")
        or report.resilience.get("react_failures")
        or report.resilience.get("degraded_shadow"))
    assert any(t.startswith("chaos:") for t in bus.topics_seen())
