"""Chaos: kill the compactor at every injectable step; stall the queue.

The compaction protocol's contract is *crash-atomicity*: whatever step
the compactor dies at, the in-process store keeps answering with zero
data loss, a retry converges, and a reopen-from-disk sees a readable,
checksum-verified store.  These tests enumerate the injectable steps
with a ``skip``-addressed ``compact.crash`` fault — ``rate=1.0,
skip=k, limit=1`` crashes exactly the k-th opportunity — so every
crash window the implementation has is exercised by construction.
"""

import shutil

import pytest

from repro.chaos.faults import (
    CompactorCrashError, FaultKind, FaultPlan, FaultSpec,
)
from repro.datastore.query import Query
from repro.datastore.store import DataStore
from repro.datastore.tiers import (
    StreamingIngestor, TieredDataStore, TierPolicy,
)
from repro.netsim.packets import PacketRecord

#: forces all three op kinds: one warm merge (fan-in 4 over the six
#: sealed runs), spills past the warm cap, and a cold merge once two
#: cold segments exist.
POLICY = TierPolicy(memtable_records=8, warm_fanin=4,
                    warm_max_segments=1, cold_fanin=2)

#: every step the compactor can die at (checked exhaustive below).
EXPECTED_STEPS = {
    "warm-merge:plan", "warm-merge:apply",
    "spill:plan", "spill:write:columns", "spill:write:stats",
    "spill:write:manifest", "spill:swap", "spill:registry", "spill:apply",
    "cold-merge:plan", "cold-merge:write:columns",
    "cold-merge:write:stats", "cold-merge:write:manifest",
    "cold-merge:swap", "cold-merge:registry", "cold-merge:apply",
    "cold-merge:cleanup",
}


def _packet(ts, i):
    return PacketRecord(
        timestamp=ts, src_ip=f"10.0.{i % 3}.{i % 11}", dst_ip="10.1.0.1",
        src_port=1000 + i, dst_port=80 if i % 2 else 443, protocol=6,
        size=100 + i, payload_len=60, flags=2, ttl=64,
        payload=bytes([i % 251]) * (i % 4), flow_id=i % 5, app="web",
        label="benign", direction="in")


def _workload():
    return [[_packet(b * 1.0 + i * 0.01, b * 100 + i) for i in range(16)]
            for b in range(3)]


def _dump(store):
    return [(s.rid, s.record.timestamp, s.record.src_ip,
             s.record.src_port, s.record.dst_port, s.record.size,
             bytes(s.record.payload), dict(s.tags), s.label)
            for s in store.query(Query(collection="packets"))]


def _build(spill_dir, injector=None):
    store = TieredDataStore(policy=POLICY, spill_dir=spill_dir,
                            fault_injector=injector)
    flat = DataStore()
    for batch in _workload():
        store.ingest_packets(batch)
        flat.ingest_packets(batch)
    store.seal_hot()
    return store, flat


def _crash_plan(skip):
    return FaultPlan(name=f"compact-crash-{skip}", seed=7, specs=(
        FaultSpec(kind=FaultKind.COMPACT_CRASH, rate=1.0, limit=1,
                  skip=skip),))


def _count_opportunities(tmp_path):
    """One clean run with the fault armed-but-never-firing counts how
    many injectable steps the workload's full compaction passes."""
    plan = FaultPlan(name="count", seed=7, specs=(
        FaultSpec(kind=FaultKind.COMPACT_CRASH, rate=0.0),))
    injector = plan.injector()
    store, flat = _build(tmp_path / "count", injector)
    store.compactor.run()
    assert _dump(store) == _dump(flat)
    return injector.summary()["compact.crash"]["opportunities"]


def test_compactor_crash_at_every_step_loses_nothing(tmp_path):
    total = _count_opportunities(tmp_path)
    assert total >= len(EXPECTED_STEPS)
    steps_hit = set()
    for k in range(total):
        injector = _crash_plan(k).injector()
        spill = tmp_path / f"crash-{k}"
        store, flat = _build(spill, injector)
        with pytest.raises(CompactorCrashError):
            store.compactor.run()
        (event,) = [e for e in injector.events
                    if e.kind == FaultKind.COMPACT_CRASH.value]
        steps_hit.add(event.detail["step"])

        # (a) the in-process store lost nothing, mid-crash
        assert _dump(store) == _dump(flat)

        # (b) a reopen right now (snapshot the dir: reopen clears
        # crash debris, and the live store may still reference it)
        snapshot = tmp_path / f"snap-{k}"
        shutil.copytree(spill, snapshot)
        reopened = TieredDataStore(policy=POLICY, spill_dir=snapshot)
        flat_by_rid = {row[0]: row for row in _dump(flat)}
        for row in _dump(reopened):
            assert row == flat_by_rid[row[0]]
        shutil.rmtree(snapshot)

        # (c) the retry converges — the fault is exhausted (limit=1)
        store.compactor.run()
        assert store.compactor.debt() == []
        assert _dump(store) == _dump(flat)

        # (d) flush everything down and reopen: checksums verify,
        # answers still bit-identical
        store.flush_to_cold()
        store.compactor.run()
        final = TieredDataStore(policy=POLICY, spill_dir=spill)
        assert _dump(final) == _dump(flat)
    # the sweep visited every injectable step the compactor defines
    assert steps_hit == EXPECTED_STEPS


def test_crash_during_flush_to_cold_is_retryable(tmp_path):
    """flush_to_cold drives the same spill protocol; crash it too."""
    injector = _crash_plan(1).injector()
    store, flat = _build(tmp_path / "flush", injector)
    with pytest.raises(CompactorCrashError):
        store.flush_to_cold()      # dies inside the first spill
    assert _dump(store) == _dump(flat)
    store.flush_to_cold()
    _, warm, cold = store.tier_segments()
    assert not warm and cold
    assert _dump(store) == _dump(flat)


def test_queue_stall_backpressure_is_accounted(tmp_path):
    """A stalled queue refuses the batch — and the capture engine's
    stats say so.  Backpressure is never silent."""
    from repro.capture.engine import CaptureEngine

    plan = FaultPlan(name="stall", seed=3, specs=(
        FaultSpec(kind=FaultKind.QUEUE_STALL, rate=1.0, limit=1),))
    injector = plan.injector()
    engine = CaptureEngine()
    store = TieredDataStore(policy=POLICY, fault_injector=injector)
    ingestor = StreamingIngestor(store, engine=engine,
                                 queue_records=10_000)
    batch = [_packet(i * 0.01, i) for i in range(20)]
    engine.ingest(batch)           # stall fires: refused + accounted
    engine.ingest(batch)           # limit exhausted: accepted
    assert engine.stats.packets_backpressure_dropped == 20
    assert engine.stats.bytes_backpressure_dropped == \
        sum(p.size for p in batch)
    assert ingestor.queue.rejected_batches == 1
    assert ingestor.queue.rejected_records == 20
    ingestor.drain()
    assert ingestor.ingested_records == 20
    # the loss shows up in the same stats surface capacity drops use
    assert engine.stats.packets_captured == 40
    assert engine.stats.packets_captured - len(_dump(store)) == \
        engine.stats.packets_backpressure_dropped
