"""Resilience toolkit: clocks, deadlines, retry, breaker, degradation.

The hypothesis properties here are the satellite contracts from the
failure model: retry never sleeps past its deadline and always re-raises
the *last* real error, and the circuit breaker's transitions match an
independently written reference state machine over arbitrary event
sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    BreakerOpenError,
    CallableClock,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradationLedger,
    MonotonicClock,
    RetryPolicy,
    TransientError,
    VirtualClock,
    retry,
    retrying,
)
from repro.core import EventBus


class TestClocks:
    def test_virtual_clock_sleep_advances(self):
        clock = VirtualClock(start=10.0)
        clock.sleep(2.5)
        clock.advance(1.5)
        assert clock.now() == 14.0

    def test_virtual_clock_rejects_negative_sleep(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1.0)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        first = clock.now()
        assert clock.now() >= first

    def test_callable_clock_adapts_external_source(self):
        state = {"now": 5.0}
        clock = CallableClock(lambda: state["now"])
        assert clock.now() == 5.0
        clock.sleep(100.0)          # no sleep_fn: a no-op
        assert clock.now() == 5.0
        state["now"] = 7.0
        assert clock.now() == 7.0


class TestDeadline:
    def test_budget_accounting(self):
        clock = VirtualClock()
        deadline = Deadline(clock, 3.0)
        assert deadline.remaining() == 3.0
        clock.advance(2.0)
        assert deadline.remaining() == 1.0
        assert not deadline.expired
        deadline.check()
        clock.advance(1.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("ingest")

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(VirtualClock(), 0.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=1.0,
                             multiplier=2.0, max_delay_s=5.0, jitter=0.0)
        delays = list(policy.delays())
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_same_seed_same_jittered_schedule(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.3, seed=11)
        assert list(policy.delays()) == list(policy.delays())
        other = RetryPolicy(max_attempts=5, jitter=0.3, seed=12)
        assert list(policy.delays()) != list(other.delays())


class TestRetry:
    def test_first_try_success_never_sleeps(self):
        clock = VirtualClock()
        assert retry(lambda: 42, clock=clock) == 42
        assert clock.now() == 0.0

    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("not yet")
            return "ok"

        assert retry(flaky, RetryPolicy(max_attempts=3)) == "ok"
        assert calls["n"] == 3

    def test_exhaustion_reraises_last_error(self):
        errors = []

        def always_fails():
            errors.append(TransientError(f"attempt {len(errors)}"))
            raise errors[-1]

        with pytest.raises(TransientError) as info:
            retry(always_fails, RetryPolicy(max_attempts=4))
        assert info.value is errors[-1]
        assert len(errors) == 4

    def test_non_matching_exception_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry(broken, RetryPolicy(max_attempts=5))
        assert calls["n"] == 1

    def test_bus_sees_retry_lifecycle(self):
        bus = EventBus()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise TransientError("once")
            return True

        retry(flaky, RetryPolicy(max_attempts=3), bus=bus, site="t")
        with pytest.raises(TransientError):
            retry(lambda: (_ for _ in ()).throw(TransientError("always")),
                  RetryPolicy(max_attempts=2), bus=bus, site="t")
        topics = bus.topics_seen()
        assert "resilience:retry" in topics
        assert "resilience:retry_recovered" in topics
        assert "resilience:retry_exhausted" in topics

    def test_retrying_decorator_passes_arguments(self):
        calls = {"n": 0}

        @retrying(RetryPolicy(max_attempts=3))
        def add(a, b):
            calls["n"] += 1
            if calls["n"] < 2:
                raise TransientError("warm up")
            return a + b

        assert add(2, 3) == 5

    @given(
        max_attempts=st.integers(min_value=1, max_value=6),
        base_delay_s=st.floats(min_value=0.0, max_value=2.0),
        multiplier=st.floats(min_value=1.0, max_value=3.0),
        jitter=st.floats(min_value=0.0, max_value=0.5),
        deadline_s=st.floats(min_value=0.01, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=80, deadline=None)
    def test_retry_respects_deadline_and_reraises_last_error(
            self, max_attempts, base_delay_s, multiplier, jitter,
            deadline_s, seed):
        policy = RetryPolicy(max_attempts=max_attempts,
                             base_delay_s=base_delay_s,
                             multiplier=multiplier, max_delay_s=10.0,
                             jitter=jitter, deadline_s=deadline_s,
                             seed=seed)
        clock = VirtualClock()
        raised = []

        def always_fails():
            raised.append(TransientError(f"attempt {len(raised)}"))
            raise raised[-1]

        with pytest.raises(TransientError) as info:
            retry(always_fails, policy, clock=clock)
        # the caller sees the real, most recent error — never a synthetic
        # timeout — and no backoff sleep ever lands past the deadline
        assert info.value is raised[-1]
        assert clock.now() <= deadline_s
        assert 1 <= len(raised) <= max_attempts


class _ModelBreaker:
    """Reference breaker FSM, written independently of the implementation:
    closed counts consecutive failures; open waits out recovery; half-open
    admits bounded probes, closing on success and re-opening on failure."""

    def __init__(self, threshold, recovery_s, half_open_max):
        self.threshold = threshold
        self.recovery_s = recovery_s
        self.half_open_max = half_open_max
        self.state = "closed"
        self.failures = 0
        self.opened_at = None
        self.probes = 0

    def _tick(self, now):
        if self.state == "open" and now >= self.opened_at + self.recovery_s:
            self.state = "half_open"
            self.probes = 0

    def state_at(self, now):
        # observing the state is itself a transition point: once the
        # recovery window has elapsed, an open breaker reads as half-open
        self._tick(now)
        return self.state

    def allow(self, now):
        self._tick(now)
        if self.state == "closed":
            return True
        if self.state == "open":
            return False
        if self.probes < self.half_open_max:
            self.probes += 1
            return True
        return False

    def success(self, now):
        self._tick(now)
        if self.state in ("half_open", "closed"):
            self.failures = 0
            self.state = "closed"

    def failure(self, now):
        self._tick(now)
        if self.state == "half_open":
            self._open(now)
        elif self.state == "closed":
            self.failures += 1
            if self.failures >= self.threshold:
                self._open(now)

    def _open(self, now):
        self.state = "open"
        self.opened_at = now
        self.failures = 0


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = VirtualClock()
        defaults = dict(failure_threshold=3, recovery_s=10.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_sheds_until_recovery_then_probes(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.calls_shed == 1
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()          # the single probe
        assert not breaker.allow()      # probe budget spent
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 2

    def test_call_wraps_and_sheds(self):
        breaker, _ = self._breaker(failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(BreakerOpenError):
            breaker.call(lambda: 1)

    def test_bus_sees_transitions(self):
        bus = EventBus()
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0,
                                 clock=clock, bus=bus, name="b")
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        topics = bus.topics_seen()
        assert topics == ["resilience:breaker_open",
                          "resilience:breaker_half_open",
                          "resilience:breaker_closed"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_max=0)

    @given(
        threshold=st.integers(min_value=1, max_value=4),
        recovery_s=st.floats(min_value=0.5, max_value=5.0),
        half_open_max=st.integers(min_value=1, max_value=3),
        ops=st.lists(
            st.one_of(
                st.just(("success",)),
                st.just(("failure",)),
                st.just(("allow",)),
                st.tuples(st.just("advance"),
                          st.floats(min_value=0.0, max_value=8.0)),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_breaker_matches_reference_model(self, threshold, recovery_s,
                                             half_open_max, ops):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 recovery_s=recovery_s,
                                 half_open_max=half_open_max, clock=clock)
        model = _ModelBreaker(threshold, recovery_s, half_open_max)
        for op in ops:
            if op[0] == "advance":
                clock.advance(op[1])
            elif op[0] == "success":
                breaker.record_success()
                model.success(clock.now())
            elif op[0] == "failure":
                breaker.record_failure()
                model.failure(clock.now())
            else:
                assert breaker.allow() == model.allow(clock.now())
            assert breaker.state == model.state_at(clock.now())


class TestDegradationLedger:
    def test_entries_and_bus(self):
        bus = EventBus()
        clock = VirtualClock(start=3.0)
        ledger = DegradationLedger(clock=clock, bus=bus)
        assert not ledger.degraded()
        ledger.degrade("store", "shed-batch", "transient error")
        ledger.degrade("react", "shed-react", "breaker open")
        assert ledger.degraded() and ledger.degraded("store")
        assert not ledger.degraded("capture")
        assert ledger.stages() == ["store", "react"]
        assert ledger.entries[0].at == 3.0
        assert set(ledger.by_stage()) == {"store", "react"}
        assert bus.topics_seen() == ["resilience:degraded"] * 2
