"""FaultPlan / FaultInjector: determinism, accounting, limits, plans.

The headline property: a plan with a fixed seed replays a *bit-identical*
fault schedule — equal event logs, equal signatures — no matter which
injector instance runs it.
"""

import copy
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    FAULT_PLANS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    TransientError,
    make_fault_plan,
)
from repro.chaos.faults import MitigationError, SensorStallError, \
    TornWriteError
from repro.core import EventBus


@dataclass
class _Pkt:
    """Minimal stand-in with the one attribute tap faults touch."""

    timestamp: float


def _batch(n, start=0.0):
    return [_Pkt(timestamp=start + 0.001 * i) for i in range(n)]


class TestSpecsAndPlans:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.TAP_DROP, rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.TAP_DROP, rate=0.1, limit=-1)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("dup", seed=0, specs=(
                FaultSpec(FaultKind.TAP_DROP, rate=0.1),
                FaultSpec(FaultKind.TAP_DROP, rate=0.2),
            ))

    def test_canned_plans_registry(self):
        assert set(FAULT_PLANS) == {"lossy-tap", "slow-store",
                                    "flaky-switch", "flaky-site"}
        for name in FAULT_PLANS:
            plan = make_fault_plan(name, seed=5)
            assert plan.seed == 5
            assert plan.specs
            assert name in plan.describe()

    def test_unknown_plan_rejected(self):
        with pytest.raises(KeyError):
            make_fault_plan("does-not-exist")

    def test_error_taxonomy_is_transient(self):
        # all injected failures are retryable by construction
        for error in (SensorStallError, MitigationError, TornWriteError):
            assert issubclass(error, TransientError)


class TestInjectorDecisions:
    def test_unarmed_kind_never_fires(self):
        plan = FaultPlan("one", seed=0, specs=(
            FaultSpec(FaultKind.STORE_TRANSIENT, rate=1.0),))
        injector = plan.injector()
        assert not injector.armed(FaultKind.TAP_DROP)
        assert not injector.should_fire(FaultKind.TAP_DROP)
        assert injector.should_fire(FaultKind.STORE_TRANSIENT)

    def test_limit_caps_firings(self):
        plan = FaultPlan("capped", seed=0, specs=(
            FaultSpec(FaultKind.STORE_TRANSIENT, rate=1.0, limit=3),))
        injector = plan.injector()
        fired = sum(injector.should_fire(FaultKind.STORE_TRANSIENT)
                    for _ in range(10))
        assert fired == 3
        assert injector.fired[FaultKind.STORE_TRANSIENT] == 3
        assert injector.opportunities[FaultKind.STORE_TRANSIENT] == 10

    def test_limit_caps_per_packet_mask(self):
        plan = FaultPlan("capped", seed=0, specs=(
            FaultSpec(FaultKind.TAP_DROP, rate=1.0, limit=5),))
        injector = plan.injector()
        out, stats = injector.perturb_packets(_batch(20))
        assert stats.dropped == 5
        assert len(out) == 15
        out, stats = injector.perturb_packets(_batch(20))
        assert stats.dropped == 0

    def test_fired_faults_publish_chaos_events(self):
        bus = EventBus()
        plan = FaultPlan("noisy", seed=0, specs=(
            FaultSpec(FaultKind.STORE_TRANSIENT, rate=1.0),))
        injector = plan.injector(bus=bus)
        injector.should_fire(FaultKind.STORE_TRANSIENT, site="test")
        assert bus.topics_seen() == ["chaos:store.transient"]
        assert bus.log[0].payload["site"] == "test"

    def test_bind_bus_keeps_first_bus(self):
        first, second = EventBus(), EventBus()
        injector = make_fault_plan("lossy-tap").injector(bus=first)
        injector.bind_bus(second)
        assert injector.bus is first


class TestPerturbation:
    def test_accounting_balances(self):
        plan = FaultPlan("tap", seed=1, specs=(
            FaultSpec(FaultKind.TAP_DROP, rate=0.3),
            FaultSpec(FaultKind.TAP_DUPLICATE, rate=0.2),))
        injector = plan.injector()
        batch = _batch(500)
        out, stats = injector.perturb_packets(batch)
        assert stats.offered == 500
        assert len(out) == 500 - stats.dropped + stats.duplicated
        assert 0 < stats.dropped < 500
        assert stats.duplicated > 0

    def test_drop_rate_converges(self):
        plan = FaultPlan("drops", seed=2, specs=(
            FaultSpec(FaultKind.TAP_DROP, rate=0.1),))
        injector = plan.injector()
        dropped = offered = 0
        for _ in range(40):
            _, stats = injector.perturb_packets(_batch(500))
            dropped += stats.dropped
            offered += stats.offered
        assert abs(dropped / offered - 0.1) < 0.01

    def test_skew_copies_packets(self):
        plan = FaultPlan("skew", seed=0, specs=(
            FaultSpec(FaultKind.CLOCK_SKEW, rate=1.0, magnitude=0.5),))
        injector = plan.injector()
        batch = _batch(4, start=10.0)
        out, stats = injector.perturb_packets(batch)
        assert stats.skewed == 4
        assert all(o.timestamp == p.timestamp + 0.5
                   for o, p in zip(out, batch))
        # originals, shared with other observers, are untouched
        assert batch[0].timestamp == 10.0

    def test_duplicates_are_copies_adjacent_to_originals(self):
        plan = FaultPlan("dup", seed=3, specs=(
            FaultSpec(FaultKind.TAP_DUPLICATE, rate=1.0),))
        injector = plan.injector()
        batch = _batch(3)
        out, stats = injector.perturb_packets(batch)
        assert stats.duplicated == 3 and len(out) == 6
        for i, original in enumerate(batch):
            assert out[2 * i] is original
            assert out[2 * i + 1] is not original
            assert out[2 * i + 1].timestamp == original.timestamp

    def test_reorder_permutes_without_loss(self):
        plan = FaultPlan("reorder", seed=4, specs=(
            FaultSpec(FaultKind.TAP_REORDER, rate=1.0),))
        injector = plan.injector()
        batch = _batch(30)
        out, stats = injector.perturb_packets(batch)
        assert stats.reordered >= 2
        assert len(out) == 30
        assert sorted(p.timestamp for p in out) == \
            [p.timestamp for p in batch]
        assert [p.timestamp for p in out] != [p.timestamp for p in batch]

    def test_empty_batch_is_a_noop(self):
        injector = make_fault_plan("lossy-tap").injector()
        out, stats = injector.perturb_packets([])
        assert out == [] and stats.offered == 0


_REPLAY_KINDS = st.sets(
    st.sampled_from([FaultKind.TAP_DROP, FaultKind.TAP_DUPLICATE,
                     FaultKind.TAP_REORDER, FaultKind.CLOCK_SKEW,
                     FaultKind.STORE_TRANSIENT, FaultKind.SENSOR_STALL]),
    min_size=1, max_size=4)


class TestDeterministicReplay:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        kinds=_REPLAY_KINDS,
        rate=st.floats(min_value=0.05, max_value=0.95),
        ops=st.lists(st.integers(min_value=0, max_value=25), max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_fixed_seed_replays_bit_identical_schedule(self, seed, kinds,
                                                       rate, ops):
        plan = FaultPlan("replay", seed=seed, specs=tuple(
            FaultSpec(kind, rate=rate, magnitude=0.25) for kind in kinds))

        def drive(injector):
            for op in ops:
                if op == 0:
                    injector.should_fire(FaultKind.STORE_TRANSIENT)
                    injector.should_fire(FaultKind.SENSOR_STALL)
                else:
                    injector.perturb_packets(_batch(op))
            return injector

        first = drive(plan.injector())
        second = drive(plan.injector())
        assert first.events == second.events
        assert first.signature() == second.signature()
        assert first.counts() == second.counts()
        assert first.summary() == second.summary()

    def test_different_seeds_diverge(self):
        # not a tautology: with enough opportunities, two seeds that
        # produced identical schedules would mean the seed is ignored
        def run(seed):
            injector = make_fault_plan("lossy-tap", seed=seed).injector()
            for _ in range(20):
                injector.perturb_packets(_batch(100))
            return injector.signature()

        assert run(1) != run(2)

    def test_interleaving_at_other_sites_does_not_perturb_a_stream(self):
        plan = FaultPlan("iso", seed=9, specs=(
            FaultSpec(FaultKind.TAP_DROP, rate=0.5),
            FaultSpec(FaultKind.STORE_TRANSIENT, rate=0.5),))

        def drop_decisions(with_store_calls):
            injector = plan.injector()
            decisions = []
            for _ in range(50):
                if with_store_calls:
                    injector.should_fire(FaultKind.STORE_TRANSIENT)
                _, stats = injector.perturb_packets(_batch(10))
                decisions.append(stats.dropped)
            return decisions

        # per-kind substreams: extra store-fault draws in between must not
        # shift the tap-drop schedule
        assert drop_decisions(False) == drop_decisions(True)
