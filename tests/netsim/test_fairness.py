"""Max-min fairness invariants (property-based).

A random set of flows over a random small topology must satisfy:
1. no link carries more than its capacity;
2. no flow exceeds its rate cap;
3. every uncapped flow is bottlenecked: at least one of its links is
   saturated (within tolerance);
4. two uncapped flows sharing a saturated link get rates within
   tolerance of each other unless one is constrained elsewhere at a
   lower rate.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import make_campus

TOLERANCE = 1e-3


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),    # src host index
        st.integers(min_value=0, max_value=5),    # dst internet index
        st.one_of(st.none(), st.floats(min_value=1e5, max_value=1e9)),
    ),
    min_size=1, max_size=12,
))
def test_property_maxmin_invariants(flow_specs):
    net = make_campus("tiny", seed=1)
    hosts = net.topology.hosts
    remotes = net.topology.internet_hosts
    flows = []
    for i, (src_i, dst_i, cap) in enumerate(flow_specs):
        flow = net.make_flow(
            hosts[src_i % len(hosts)], remotes[dst_i % len(remotes)],
            size_bytes=1e15, rate_cap_bps=cap, src_port=10_000 + i,
        )
        flows.append(net.inject_flow(flow))

    # 1. link capacity respected
    for link in net.links:
        aggregate = sum(
            f.current_rate_bps for f in flows
            if link.key in {l.key for l in net.links.links_on_path(f.path)}
        )
        assert aggregate <= link.capacity_bps * (1 + TOLERANCE)

    # 2. caps respected, and every flow got some rate
    for flow in flows:
        if flow.rate_cap_bps is not None:
            assert flow.current_rate_bps <= flow.rate_cap_bps * (1 + TOLERANCE)
        assert flow.current_rate_bps > 0

    # 3. uncapped flows are bottlenecked on a saturated link
    for flow in flows:
        if flow.rate_cap_bps is not None:
            continue
        saturated = False
        for link in net.links.links_on_path(flow.path):
            aggregate = sum(
                f.current_rate_bps for f in flows
                if link.key in {l.key
                                for l in net.links.links_on_path(f.path)}
            )
            if aggregate >= link.capacity_bps * (1 - TOLERANCE):
                saturated = True
                break
        assert saturated, f"flow {flow.flow_id} has no bottleneck"


def test_equal_flows_get_equal_shares():
    net = make_campus("tiny", seed=2)
    host = net.topology.hosts[0]
    flows = [
        net.inject_flow(net.make_flow(
            host, net.topology.internet_hosts[i], size_bytes=1e15,
            src_port=20_000 + i,
        ))
        for i in range(4)
    ]
    rates = [f.current_rate_bps for f in flows]
    assert max(rates) - min(rates) <= max(rates) * 1e-6
    # All four share the host's 1 Gbps access uplink.
    assert sum(rates) == pytest.approx(1e9, rel=1e-3)
