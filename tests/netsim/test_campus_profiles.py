"""Campus profile construction knobs."""

import pytest

from repro.netsim import CAMPUS_PROFILES, make_campus


def test_activity_override_scales_arrivals():
    quiet = make_campus("tiny", seed=1, mean_flows_per_hour=10.0)
    busy = make_campus("tiny", seed=1, mean_flows_per_hour=1000.0)
    t = quiet.now
    quiet_rate = quiet.population.total_expected_rate(t)
    busy_rate = busy.population.total_expected_rate(t)
    assert busy_rate == pytest.approx(100 * quiet_rate, rel=1e-6)


def test_override_none_keeps_profile_default():
    default = make_campus("tiny", seed=1)
    explicit = make_campus("tiny", seed=1, mean_flows_per_hour=None)
    assert default.population.mean_flows_per_hour == \
        explicit.population.mean_flows_per_hour == \
        CAMPUS_PROFILES["tiny"].mean_flows_per_hour


def test_start_time_propagates():
    net = make_campus("tiny", seed=1, start_time=3 * 3600.0)
    assert net.now == 3 * 3600.0


def test_profiles_have_distinct_mixes():
    teaching = make_campus("teaching", seed=1)
    research = make_campus("research", seed=1)
    assert set(teaching.mix.model_names()) != set(research.mix.model_names())


def test_profile_sizes_ordered():
    tiny = make_campus("tiny", seed=1)
    medium = make_campus("medium", seed=1)
    assert len(medium.topology.hosts) > 3 * len(tiny.topology.hosts)
