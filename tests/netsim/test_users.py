"""User population and diurnal activity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.users import SECONDS_PER_DAY, User, UserPopulation, \
    diurnal_factor, diurnal_factor_array


def test_diurnal_factor_bounded():
    for hour in range(24):
        value = diurnal_factor(hour * 3600.0)
        assert 0.0 < value <= 1.0


def test_diurnal_peaks_in_afternoon_and_dips_at_night():
    afternoon = diurnal_factor(15 * 3600.0)
    night = diurnal_factor(4 * 3600.0)
    assert afternoon > 3 * night


def test_diurnal_is_periodic():
    t = 10 * 3600.0
    assert diurnal_factor(t) == pytest.approx(
        diurnal_factor(t + SECONDS_PER_DAY))


def test_population_assigns_all_hosts():
    rng = np.random.default_rng(0)
    hosts = [f"h{i}" for i in range(20)]
    pop = UserPopulation(hosts, rng)
    assert [u.host for u in pop.users] == hosts
    assert all(u.activity > 0 for u in pop.users)


def test_population_requires_hosts():
    with pytest.raises(ValueError):
        UserPopulation([], np.random.default_rng(0))


def test_arrival_rate_scales_with_activity():
    rng = np.random.default_rng(0)
    pop = UserPopulation(["a", "b"], rng, mean_flows_per_hour=60.0)
    quiet = User(host="a", activity=0.5)
    busy = User(host="b", activity=2.0)
    t = 14 * 3600.0
    assert pop.arrival_rate(busy, t) == pytest.approx(
        4 * pop.arrival_rate(quiet, t))


def test_interarrival_sampling_positive_and_rate_consistent():
    rng = np.random.default_rng(3)
    pop = UserPopulation(["a"], rng, mean_flows_per_hour=360.0)
    user = User(host="a", activity=1.0)
    t = 15 * 3600.0
    samples = [pop.next_interarrival(user, t, rng) for _ in range(2000)]
    assert all(s > 0 for s in samples)
    expected_mean = 1.0 / pop.arrival_rate(user, t)
    assert np.mean(samples) == pytest.approx(expected_mean, rel=0.1)


# -- diurnal curve properties (the fluid engine's arrival intensity
# integrates this curve, so its shape and its vectorized twin are
# contract, not implementation detail) --------------------------------

times = st.floats(min_value=0.0, max_value=30 * SECONDS_PER_DAY,
                  allow_nan=False, allow_infinity=False)
bases = st.floats(min_value=0.01, max_value=0.9,
                  allow_nan=False, allow_infinity=False)


@given(t=times, base=bases)
@settings(max_examples=300, deadline=None)
def test_diurnal_factor_bounded_for_any_time(t, base):
    value = diurnal_factor(t, base=base)
    assert base <= value <= 1.0


@given(t=times, days=st.integers(min_value=1, max_value=10))
@settings(max_examples=300, deadline=None)
def test_diurnal_factor_periodic_for_any_time(t, days):
    assert diurnal_factor(t + days * SECONDS_PER_DAY) == pytest.approx(
        diurnal_factor(t), abs=1e-9)


@given(t=times)
@settings(max_examples=300, deadline=None)
def test_diurnal_factor_continuous_across_midnight(t):
    # The curve is built from smooth harmonics of the day fraction, so
    # a one-second step never jumps (midnight wrap included).
    assert abs(diurnal_factor(t + 1.0) - diurnal_factor(t)) < 1e-3


@given(ts=st.lists(times, min_size=1, max_size=200), base=bases)
@settings(max_examples=200, deadline=None)
def test_diurnal_factor_array_matches_scalar(ts, base):
    """The fluid engine's vectorized curve == the discrete scalar one."""
    vector = diurnal_factor_array(np.asarray(ts), base=base)
    scalar = np.array([diurnal_factor(t, base=base) for t in ts])
    assert vector.shape == (len(ts),)
    assert np.all(np.abs(vector - scalar) <= 1e-12)


def test_diurnal_factor_array_accepts_scalar_and_empty():
    lone = diurnal_factor_array(15 * 3600.0)
    assert lone == pytest.approx(diurnal_factor(15 * 3600.0), abs=1e-12)
    assert diurnal_factor_array(np.empty(0)).shape == (0,)
