"""User population and diurnal activity."""

import numpy as np
import pytest

from repro.netsim.users import SECONDS_PER_DAY, User, UserPopulation, \
    diurnal_factor


def test_diurnal_factor_bounded():
    for hour in range(24):
        value = diurnal_factor(hour * 3600.0)
        assert 0.0 < value <= 1.0


def test_diurnal_peaks_in_afternoon_and_dips_at_night():
    afternoon = diurnal_factor(15 * 3600.0)
    night = diurnal_factor(4 * 3600.0)
    assert afternoon > 3 * night


def test_diurnal_is_periodic():
    t = 10 * 3600.0
    assert diurnal_factor(t) == pytest.approx(
        diurnal_factor(t + SECONDS_PER_DAY))


def test_population_assigns_all_hosts():
    rng = np.random.default_rng(0)
    hosts = [f"h{i}" for i in range(20)]
    pop = UserPopulation(hosts, rng)
    assert [u.host for u in pop.users] == hosts
    assert all(u.activity > 0 for u in pop.users)


def test_population_requires_hosts():
    with pytest.raises(ValueError):
        UserPopulation([], np.random.default_rng(0))


def test_arrival_rate_scales_with_activity():
    rng = np.random.default_rng(0)
    pop = UserPopulation(["a", "b"], rng, mean_flows_per_hour=60.0)
    quiet = User(host="a", activity=0.5)
    busy = User(host="b", activity=2.0)
    t = 14 * 3600.0
    assert pop.arrival_rate(busy, t) == pytest.approx(
        4 * pop.arrival_rate(quiet, t))


def test_interarrival_sampling_positive_and_rate_consistent():
    rng = np.random.default_rng(3)
    pop = UserPopulation(["a"], rng, mean_flows_per_hour=360.0)
    user = User(host="a", activity=1.0)
    t = 15 * 3600.0
    samples = [pop.next_interarrival(user, t, rng) for _ in range(2000)]
    assert all(s > 0 for s in samples)
    expected_mean = 1.0 / pop.arrival_rate(user, t)
    assert np.mean(samples) == pytest.approx(expected_mean, rel=0.1)
