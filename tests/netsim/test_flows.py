"""Fluid flow model: timing, caps, policers, truncation."""

import pytest

from repro.netsim import make_campus
from repro.netsim.packets import FiveTuple


def _flow(net, size=1e6, **kwargs):
    return net.make_flow("h0_0_0", "inet0", size_bytes=size, **kwargs)


def test_single_flow_finishes_at_bottleneck_rate(tiny_network):
    net = tiny_network
    done = []
    net.add_flow_observer(done.append)
    # Host uplink 1 Gbps is the bottleneck for one flow.
    flow = net.inject_flow(_flow(net, size=1.25e8))   # 1 Gb of data = 1 s
    net.run_for(10.0)
    assert len(done) == 1
    assert done[0].duration == pytest.approx(1.0, rel=0.01)
    assert done[0].transferred_bytes == pytest.approx(1.25e8)


def test_two_flows_share_bottleneck_equally(tiny_network):
    net = tiny_network
    done = []
    net.add_flow_observer(done.append)
    net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1.25e7))
    net.inject_flow(net.make_flow("h0_0_0", "inet1", size_bytes=1.25e7,
                                  src_port=5555))
    net.run_for(10.0)
    # Same host uplink: both run at 500 Mbps until the first finishes.
    assert len(done) == 2
    assert done[0].duration == pytest.approx(0.2, rel=0.02)


def test_rate_cap_respected(tiny_network):
    net = tiny_network
    done = []
    net.add_flow_observer(done.append)
    net.inject_flow(_flow(net, size=1.25e6, rate_cap_bps=1e6))
    net.run_for(60.0)
    assert len(done) == 1
    assert done[0].duration == pytest.approx(10.0, rel=0.01)


def test_policer_cap_slows_matching_flows(tiny_network):
    net = tiny_network
    done = []
    net.add_flow_observer(done.append)
    flow = net.inject_flow(_flow(net, size=1.25e6))
    net.flows.install_policer(
        lambda f: f.key.src_ip == flow.key.src_ip, cap_bps=1e6)
    net.run_for(60.0)
    assert done[0].duration == pytest.approx(10.0, rel=0.02)


def test_policer_drop_aborts_flow(tiny_network):
    net = tiny_network
    done = []
    net.add_flow_observer(done.append)
    flow = net.inject_flow(_flow(net, size=1e12))   # would run forever
    net.run_for(1.0)
    net.flows.install_policer(
        lambda f: f.flow_id == flow.flow_id, cap_bps=None)
    net.run_for(1.0)
    assert flow.finished
    assert flow.transferred_bytes < flow.size_bytes
    assert len(done) == 1          # truncated flows still observed


def test_policer_removal_restores_rate(tiny_network):
    net = tiny_network
    flow = net.inject_flow(_flow(net, size=1e12))
    remove = net.flows.install_policer(lambda f: True, cap_bps=1e6)
    assert flow.current_rate_bps == pytest.approx(1e6, rel=0.01)
    remove()
    assert flow.current_rate_bps > 1e8


def test_drain_truncates_active_flows(tiny_network):
    net = tiny_network
    net.inject_flow(_flow(net, size=1e13))
    net.run_for(2.0)
    truncated = net.flows.drain()
    assert len(truncated) == 1
    assert truncated[0].finished
    assert 0 < truncated[0].transferred_bytes < 1e13
    assert not net.flows.active


def test_duplicate_flow_id_rejected(tiny_network):
    net = tiny_network
    flow = _flow(net, size=1e9)
    net.inject_flow(flow)
    with pytest.raises(ValueError):
        net.flows.start_flow(flow)


def test_nonpositive_size_rejected(tiny_network):
    net = tiny_network
    flow = _flow(net, size=0)
    with pytest.raises(ValueError):
        net.inject_flow(flow)


def test_flow_byte_split_matches_fwd_fraction(tiny_network):
    net = tiny_network
    flow = net.inject_flow(_flow(net, size=1e6, fwd_fraction=0.25))
    net.run_for(30.0)
    assert flow.fwd_bytes == pytest.approx(0.25e6, rel=0.01)
    assert flow.rev_bytes == pytest.approx(0.75e6, rel=0.01)


def test_wire_direction_mapping(tiny_network):
    net = tiny_network
    outbound = net.make_flow("h0_0_0", "inet0", size_bytes=1e3)
    assert outbound.src_internal
    assert outbound.wire_direction("fwd") == "out"
    assert outbound.wire_direction("rev") == "in"
    inbound = net.make_flow("inet0", "h0_0_0", size_bytes=1e3)
    assert not inbound.src_internal
    assert inbound.wire_direction("fwd") == "in"
    assert inbound.wire_direction("rev") == "out"
