"""Campus topology construction and addressing."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.netsim.topology import (
    CampusTopology,
    NodeKind,
    TopologySpec,
    build_campus_topology,
    _public_ip,
)


@pytest.fixture(scope="module")
def topo():
    return build_campus_topology(TopologySpec(), seed=3)


def test_validates_and_is_connected(topo):
    topo.validate()   # raises on failure


def test_has_expected_tiers(topo):
    assert len(topo.nodes_of_kind(NodeKind.BORDER)) == 1
    assert len(topo.nodes_of_kind(NodeKind.CORE)) == 2
    spec = TopologySpec()
    assert len(topo.hosts) == (
        spec.departments * spec.access_per_department * spec.hosts_per_access
        + spec.wifi_aps * spec.hosts_per_ap
    )
    assert len(topo.servers) == spec.servers
    assert len(topo.internet_hosts) == spec.internet_hosts


def test_border_link_connects_border_and_internet(topo):
    a, b = topo.border_link
    kinds = {topo.kind(a), topo.kind(b)}
    assert kinds == {NodeKind.BORDER, NodeKind.INTERNET_GW}


def test_endpoint_ips_unique_and_resolvable(topo):
    ips = [topo.ip(n) for n in topo.endpoints]
    assert len(set(ips)) == len(ips)
    for node in topo.endpoints:
        assert topo.node_by_ip(topo.ip(node)) == node


def test_internal_vs_external_addressing(topo):
    for host in topo.hosts:
        assert topo.is_internal_ip(topo.ip(host))
    for remote in topo.internet_hosts:
        assert not topo.is_internal_ip(topo.ip(remote))
    assert not topo.is_internal_ip("not-an-ip")


def test_departments_assigned(topo):
    departments = {topo.department(h) for h in topo.hosts}
    assert "dept0" in departments
    assert "wifi" in departments


def test_duplicate_node_rejected():
    t = CampusTopology()
    t.add_node("x", NodeKind.HOST, ip="10.0.0.1")
    with pytest.raises(ValueError):
        t.add_node("x", NodeKind.HOST, ip="10.0.0.2")


def test_link_to_unknown_node_rejected():
    t = CampusTopology()
    t.add_node("x", NodeKind.HOST, ip="10.0.0.1")
    with pytest.raises(ValueError):
        t.add_link("x", "ghost", 1e9, 0.001)


def test_validate_rejects_disconnected():
    t = CampusTopology()
    t.add_node("a", NodeKind.HOST, ip="10.0.0.1")
    t.add_node("b", NodeKind.HOST, ip="10.0.0.2")
    t.border_link = None
    with pytest.raises(ValueError):
        t.validate()


@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=500))
def test_property_public_ips_are_not_rfc1918(seed, index):
    ip = ipaddress.ip_address(_public_ip(seed, index))
    assert not ip.is_private


def test_link_attributes(topo):
    a, b = topo.border_link
    assert topo.link_capacity(a, b) == TopologySpec().uplink_gbps * 1e9
    assert topo.link_delay(a, b) == TopologySpec().uplink_delay_s
