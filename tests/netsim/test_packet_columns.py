"""Columnar packet batches: encoding, lazy materialization, filters."""

import numpy as np
import pytest

from repro.netsim.packets import (
    DictColumn,
    PacketColumns,
    PacketRecord,
    ip_to_u32,
    u32_to_ip,
)


def _pkt(i, **overrides):
    base = dict(
        timestamp=i * 0.5, src_ip=f"9.9.0.{i % 200}", dst_ip="10.0.0.1",
        src_port=443, dst_port=40_000 + i, protocol=6, size=1400,
        payload_len=1372, flags=0x12, ttl=60, payload=b"\x16\x03\x03",
        flow_id=i, app="web", label="benign", direction="in",
    )
    base.update(overrides)
    return PacketRecord(**base)


class TestIpCodec:
    def test_roundtrip(self):
        for ip in ("0.0.0.0", "255.255.255.255", "10.0.0.1", "192.168.1.9"):
            assert u32_to_ip(ip_to_u32(ip)) == ip

    def test_rejects_non_canonical(self):
        for bad in ("10.0.0", "10.0.0.0.1", "10.0.0.256", "09.9.9.1",
                    "1٣.0.0.1", "10.0.0.-1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                ip_to_u32(bad)


class TestDictColumn:
    def test_encode_decode(self):
        col = DictColumn.encode(["a", "b", "a", "c"])
        assert [col.decode(i) for i in range(4)] == ["a", "b", "a", "c"]
        assert col.code_of("b") == 1
        assert col.code_of("zz") is None

    def test_equals_mask(self):
        col = DictColumn.encode(["in", "out", "in"])
        assert list(col.equals_mask("in")) == [True, False, True]
        assert not col.equals_mask("gone").any()
        assert col.equals_mask(7) is None   # non-str: residual check


class TestPacketColumns:
    def test_record_roundtrip(self):
        records = [_pkt(i) for i in range(10)]
        cols = PacketColumns.from_records(records)
        assert len(cols) == 10
        assert list(cols.iter_records()) == records

    def test_weird_ip_falls_back_to_dict_column(self):
        records = [_pkt(0), _pkt(1, src_ip="host.example")]
        cols = PacketColumns.from_records(records)
        assert isinstance(cols.src_ip, DictColumn)
        assert isinstance(cols.dst_ip, np.ndarray)
        assert list(cols.iter_records()) == records

    def test_time_sorted_and_slice(self):
        cols = PacketColumns.from_records([_pkt(i) for i in range(20)])
        assert cols.time_sorted
        lo, hi = cols.time_slice(2.0, 5.0)
        ts = cols.timestamp[lo:hi]
        assert (ts >= 2.0).all() and (ts <= 5.0).all()
        assert lo == 4 and hi == 11  # inclusive bounds

    def test_unsorted_and_nan_never_sorted(self):
        out_of_order = [_pkt(1), _pkt(0)]
        assert not PacketColumns.from_records(out_of_order).time_sorted
        with_nan = [_pkt(0, timestamp=float("nan")), _pkt(1)]
        assert not PacketColumns.from_records(with_nan).time_sorted

    def test_equals_mask_numeric_and_ip(self):
        cols = PacketColumns.from_records([_pkt(i) for i in range(5)])
        assert list(cols.equals_mask("dst_port", 40_002)) == \
            [False, False, True, False, False]
        assert cols.equals_mask("dst_ip", "10.0.0.1").all()
        # non-canonical text cannot match a uint32 column
        assert not cols.equals_mask("dst_ip", "010.0.0.1").any()
        # exotic value types defer to the residual per-record check
        assert cols.equals_mask("dst_port", "40002") is None
        assert cols.equals_mask("payload", b"\x16\x03\x03") is None

    def test_zone_maps(self):
        cols = PacketColumns.from_records([_pkt(i) for i in range(5)])
        assert cols.minmax("timestamp") == (0.0, 2.0)
        assert cols.zone_admits("dst_port", 40_000)
        assert not cols.zone_admits("dst_port", 39_999)
        assert cols.zone_admits("dst_ip", "10.0.0.1")
        assert not cols.zone_admits("dst_ip", "10.0.0.2")
        assert not cols.zone_admits("dst_ip", "not-an-ip")
        assert cols.zone_admits("payload", b"anything")
