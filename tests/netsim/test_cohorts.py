"""Cohort aggregation: the population rate survives the collapse.

The fluid engine's core claim is that binning users into equal-count
activity cohorts preserves the population's aggregate flow-arrival
rate *exactly* (count x mean == member sum per bin), for any activity
draw and any cohort count.  Property-tested here, against both the raw
activity sum and the discrete :class:`UserPopulation`'s per-user rate.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.cohorts import (
    CohortTable,
    build_cohorts,
    cohorts_from_activities,
)
from repro.netsim.users import UserPopulation, diurnal_factor

activity_arrays = st.lists(
    st.floats(min_value=1e-6, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=400,
).map(lambda xs: np.asarray(xs, dtype=np.float64))


@given(activities=activity_arrays,
       n_cohorts=st.integers(min_value=1, max_value=64))
@settings(max_examples=200, deadline=None)
def test_cohort_activity_mass_equals_member_sum(activities, n_cohorts):
    table = cohorts_from_activities(activities, n_cohorts)
    assert table.n_users == len(activities)
    assert int(table.counts.sum()) == len(activities)
    assert table.activity_sum == pytest.approx(
        float(activities.sum()), rel=1e-12, abs=1e-12)


@given(activities=activity_arrays,
       n_cohorts=st.integers(min_value=1, max_value=64),
       time_s=st.floats(min_value=0.0, max_value=7 * 86_400.0,
                        allow_nan=False, allow_infinity=False),
       flows_per_hour=st.floats(min_value=1.0, max_value=600.0))
@settings(max_examples=200, deadline=None)
def test_aggregate_arrival_rate_equals_per_user_sum(
        activities, n_cohorts, time_s, flows_per_hour):
    """The rate the fluid engine integrates == the discrete sum."""
    table = cohorts_from_activities(activities, n_cohorts)
    base = flows_per_hour / 3600.0
    per_user = float(activities.sum()) * base * diurnal_factor(time_s)
    assert table.total_expected_rate(flows_per_hour, time_s) \
        == pytest.approx(per_user, rel=1e-9)


@given(activities=activity_arrays,
       n_cohorts=st.integers(min_value=1, max_value=64))
@settings(max_examples=200, deadline=None)
def test_cohorts_are_equal_count_and_activity_sorted(activities, n_cohorts):
    table = cohorts_from_activities(activities, n_cohorts)
    # Equal-count binning: sizes differ by at most one user.
    assert table.counts.max() - table.counts.min() <= 1
    # Built from the sorted activity array, so cohort means ascend and
    # heavy-tailed "top talkers" stay visible in the top cohorts.
    assert np.all(np.diff(table.activity) >= -1e-12)
    # Never more cohorts than users.
    assert table.n_cohorts <= min(n_cohorts, len(activities))


def test_matches_discrete_user_population_rate():
    """Same gamma draw through both models -> identical expected rate."""
    hosts = [f"h{i}" for i in range(500)]
    population = UserPopulation(hosts, np.random.default_rng(42),
                                mean_flows_per_hour=120.0)
    activities = np.array([u.activity for u in population.users])
    table = cohorts_from_activities(activities, 32)
    for hour in (3.0, 8.5, 12.3, 15.0, 23.9):
        t = hour * 3600.0
        assert table.total_expected_rate(120.0, t) == pytest.approx(
            population.total_expected_rate(t), rel=1e-9)


def test_build_cohorts_deterministic_per_seed():
    a = build_cohorts(10_000, 32, np.random.default_rng(7))
    b = build_cohorts(10_000, 32, np.random.default_rng(7))
    assert np.array_equal(a.counts, b.counts)
    assert np.array_equal(a.activity, b.activity)


def test_more_cohorts_than_users_collapses():
    table = cohorts_from_activities(np.array([2.0, 1.0, 3.0]), 64)
    assert table.n_cohorts == 3
    assert np.array_equal(table.counts, [1, 1, 1])
    assert np.array_equal(table.activity, [1.0, 2.0, 3.0])


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        cohorts_from_activities(np.array([1.0]), 0)
    with pytest.raises(ValueError):
        cohorts_from_activities(np.empty(0), 4)
    with pytest.raises(ValueError):
        build_cohorts(0, 4, np.random.default_rng(0))


def test_cohort_table_shape():
    table = build_cohorts(1000, 16, np.random.default_rng(3))
    assert isinstance(table, CohortTable)
    assert table.n_cohorts == 16
    assert table.counts.sum() == 1000
    assert (table.activity > 0).all()
