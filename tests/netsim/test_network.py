"""CampusNetwork facade: traffic generation and observation."""

import collections

import pytest

from repro.netsim import CAMPUS_PROFILES, make_campus
from repro.netsim.traffic.base import FlowTemplate


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        make_campus("atlantis")


def test_profiles_all_buildable():
    for name in CAMPUS_PROFILES:
        net = make_campus(name, seed=1)
        net.topology.validate()


def test_background_traffic_generates_flows():
    net = make_campus("tiny", seed=3)
    flows = []
    net.add_flow_observer(flows.append)
    net.start_background_traffic()
    net.run_for(1800.0)
    net.finish()
    assert len(flows) > 10
    apps = {f.app for f in flows}
    assert "dns" in apps or "web" in apps
    assert all(f.label == "benign" for f in flows)


def test_border_observer_sees_internet_flows_only():
    net = make_campus("tiny", seed=4)
    packets = []
    net.add_packet_observer(lambda batch: packets.extend(batch))
    # internal flow: host -> server, never crosses the border
    net.inject_flow(net.make_flow("h0_0_0", "srv0", size_bytes=1e5))
    net.run_for(30.0)
    assert packets == []
    net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1e5))
    net.run_for(30.0)
    assert packets
    assert {p.flow_id for p in packets} == {2}


def test_injected_flow_spoofed_source():
    net = make_campus("tiny", seed=5)
    flow = net.make_flow("inet0", "h0_0_0", size_bytes=1e4,
                         src_ip="203.0.113.9")
    assert flow.key.src_ip == "203.0.113.9"
    assert not flow.src_internal


def test_launch_from_template_routes_to_server_or_internet():
    net = make_campus("tiny", seed=6)
    template = FlowTemplate(app="x", size_bytes=1e4, fwd_fraction=0.5,
                            protocol=6, dst_port=22, to_internet=False,
                            to_server=True)
    flow = net.launch_from_template("h0_0_0", template)
    assert flow.dst_node in net.topology.servers


def test_finish_truncates_and_reports():
    net = make_campus("tiny", seed=7)
    net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1e13))
    net.run_for(1.0)
    drained = net.finish()
    assert len(drained) == 1
    assert net.flows.active == {}


def test_flow_ids_monotonic():
    net = make_campus("tiny", seed=8)
    ids = [net.new_flow_id() for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_seed_reproducibility():
    def run(seed):
        net = make_campus("tiny", seed=seed)
        flows = []
        net.add_flow_observer(flows.append)
        net.start_background_traffic()
        net.run_for(600.0)
        net.finish()
        return [(f.flow_id, f.key.src_ip, f.app, round(f.size_bytes))
                for f in flows]

    assert run(99) == run(99)
    assert run(99) != run(100)
