"""Packet synthesis: byte conservation, flags, ordering, capping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.flows import Flow
from repro.netsim.packets import (
    FiveTuple,
    MAX_SEGMENT,
    PacketRecord,
    Protocol,
    TcpFlags,
    synthesize_packets,
    total_wire_bytes,
)


def _finished_flow(size=100_000, fwd_fraction=0.3, protocol=6,
                   duration=2.0, src_internal=True):
    flow = Flow(
        flow_id=1,
        key=FiveTuple("10.0.0.1", "8.8.8.8", 1234, 443, protocol),
        src_node="a", dst_node="b", size_bytes=size,
        fwd_fraction=fwd_fraction, protocol=protocol,
        src_internal=src_internal,
    )
    flow.start_time = 100.0
    flow.end_time = 100.0 + duration
    flow.transferred_bytes = size
    return flow


def test_payload_bytes_conserved_per_direction():
    flow = _finished_flow(size=100_000, fwd_fraction=0.3)
    packets = synthesize_packets(flow)
    fwd_payload = sum(p.payload_len for p in packets
                      if p.src_ip == "10.0.0.1")
    rev_payload = sum(p.payload_len for p in packets
                      if p.src_ip == "8.8.8.8")
    assert fwd_payload == flow.fwd_bytes
    assert rev_payload == flow.rev_bytes


def test_timestamps_within_flow_lifetime_and_sorted():
    flow = _finished_flow()
    packets = synthesize_packets(flow)
    times = [p.timestamp for p in packets]
    assert times == sorted(times)
    assert all(flow.start_time <= t <= flow.end_time for t in times)


def test_tcp_flags_syn_and_fin():
    flow = _finished_flow(size=50_000, fwd_fraction=0.5)
    packets = synthesize_packets(flow)
    fwd = [p for p in packets if p.src_ip == "10.0.0.1"]
    rev = [p for p in packets if p.src_ip == "8.8.8.8"]
    assert fwd[0].is_syn()
    assert rev[0].flags & TcpFlags.SYN and rev[0].flags & TcpFlags.ACK
    assert fwd[-1].flags & TcpFlags.FIN
    assert not any(p.flags for p in synthesize_packets(
        _finished_flow(protocol=17)))


def test_udp_has_no_flags_and_smaller_header():
    packets = synthesize_packets(_finished_flow(size=3000, protocol=17))
    assert all(p.flags == 0 for p in packets)
    assert all(p.size == p.payload_len + 28 for p in packets)


def test_direction_mapping_for_internal_initiator():
    packets = synthesize_packets(_finished_flow(src_internal=True))
    for p in packets:
        if p.src_ip == "10.0.0.1":
            assert p.direction == "out"
        else:
            assert p.direction == "in"


def test_max_packets_cap_preserves_bytes():
    flow = _finished_flow(size=300 * MAX_SEGMENT)
    packets = synthesize_packets(flow, max_packets=50)
    fwd = [p for p in packets if p.src_ip == "10.0.0.1"]
    assert len(fwd) <= 50
    assert sum(p.payload_len for p in fwd) == flow.fwd_bytes


def test_unfinished_flow_raises():
    flow = _finished_flow()
    flow.end_time = None
    with pytest.raises(ValueError):
        synthesize_packets(flow)


def test_zero_direction_skipped():
    flow = _finished_flow(size=1000, fwd_fraction=1.0)
    packets = synthesize_packets(flow)
    assert all(p.src_ip == "10.0.0.1" for p in packets)


def test_five_tuple_helpers():
    ft = FiveTuple("1.1.1.1", "2.2.2.2", 10, 20, 6)
    assert ft.reversed().reversed() == ft
    assert ft.canonical() == ft.reversed().canonical()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=64, max_value=10_000_000),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_total_payload_conserved(size, fwd_fraction):
    flow = _finished_flow(size=size, fwd_fraction=fwd_fraction)
    packets = synthesize_packets(flow)
    total_payload = sum(p.payload_len for p in packets)
    assert total_payload == flow.fwd_bytes + flow.rev_bytes
    assert total_wire_bytes(packets) >= total_payload
