"""Link accounting, failure, and degradation."""

import pytest

from repro.netsim.links import Link, LinkTable, edge_key
from repro.netsim.topology import TopologySpec, build_campus_topology


def test_edge_key_is_canonical():
    assert edge_key("b", "a") == edge_key("a", "b") == ("a", "b")


def test_byte_accounting_is_time_weighted():
    link = Link("a", "b", capacity_bps=8e6, delay_s=0.001)
    link.set_rate(0.0, 8e6)       # 1 MB/s
    link.accumulate(2.0)
    assert link.bytes_carried == pytest.approx(2e6)
    link.set_rate(2.0, 0.0)
    link.accumulate(5.0)
    assert link.bytes_carried == pytest.approx(2e6)


def test_utilization():
    link = Link("a", "b", capacity_bps=10e9, delay_s=0.001)
    link.set_rate(0.0, 5e9)
    assert link.utilization() == pytest.approx(0.5)


def test_failure_and_restore():
    link = Link("a", "b", capacity_bps=1e9, delay_s=0.001)
    link.set_up(False)
    assert not link.up
    assert link.capacity_bps <= 1.0
    link.restore()
    assert link.up
    assert link.capacity_bps == 1e9


def test_degrade_bounds():
    link = Link("a", "b", capacity_bps=1e9, delay_s=0.001)
    link.degrade(0.1)
    assert link.capacity_bps == pytest.approx(1e8)
    with pytest.raises(ValueError):
        link.degrade(0.0)
    with pytest.raises(ValueError):
        link.degrade(1.5)


def test_table_from_topology_and_path_ops():
    topo = build_campus_topology(TopologySpec(), seed=0)
    table = LinkTable.from_topology(topo)
    assert len(table) == topo.graph.number_of_edges()
    path = ["h0_0_0", "acc0_0", "dist0"]
    links = table.links_on_path(path)
    assert len(links) == 2
    assert table.path_delay(path) > 0


def test_duplicate_link_rejected():
    table = LinkTable()
    table.add(Link("a", "b", 1e9, 0.001))
    with pytest.raises(ValueError):
        table.add(Link("b", "a", 1e9, 0.001))
