"""Fluid engine units: config, allocation, determinism, overlays."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.campus import make_fluid_campus
from repro.netsim.fluid import (
    CAMPUS_BASE_U32,
    INTERNET_BASE_U32,
    FluidConfig,
    FluidOverlay,
    FluidTrafficEngine,
    RATE_EPSILON,
    weighted_max_min,
)
from repro.netsim.packets import PacketColumns


def _engine(seed=0, **overrides) -> FluidTrafficEngine:
    defaults = dict(n_users=2_000, n_cohorts=16, tick_seconds=60.0,
                    mean_flows_per_hour=240.0)
    defaults.update(overrides)
    return FluidTrafficEngine(FluidConfig(**defaults), seed=seed)


class TestConfig:
    def test_defaults_valid(self):
        config = FluidConfig()
        assert config.n_users == 10_000
        assert config.tap_sample == 1.0

    @pytest.mark.parametrize("bad", [
        dict(n_users=0), dict(n_users=-5),
        dict(tap_sample=0.0), dict(tap_sample=1.5),
        dict(tick_seconds=0.0), dict(tick_seconds=-1.0),
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            FluidConfig(**bad)


class TestWeightedMaxMin:
    @given(
        demand=st.lists(st.floats(min_value=0.0, max_value=1e9,
                                  allow_nan=False, allow_infinity=False),
                        min_size=1, max_size=12),
        weights=st.lists(st.floats(min_value=0.1, max_value=100.0),
                         min_size=12, max_size=12),
        capacity=st.lists(st.floats(min_value=1e3, max_value=1e9),
                          min_size=3, max_size=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants(self, demand, weights, capacity, seed):
        demand = np.asarray(demand)
        n = len(demand)
        weights = np.asarray(weights[:n])
        capacity = np.asarray(capacity)
        rng = np.random.default_rng(seed)
        membership = rng.random((3, n)) < 0.6
        membership[0, :] = True     # shared uplink, like the engine's
        alloc = weighted_max_min(demand, weights, membership, capacity)
        tol = 1e-6 * max(capacity.max(), demand.max(), 1.0)
        assert (alloc >= -tol).all()
        assert (alloc <= demand + tol).all()
        assert (membership @ alloc <= capacity + tol).all()
        # Max-min completeness: a class short of its demand must be
        # bottlenecked on some saturated link it crosses.
        load = membership @ alloc
        saturated = load >= capacity - max(tol, RATE_EPSILON * 10)
        short = demand - alloc > tol + RATE_EPSILON
        for i in np.nonzero(short)[0]:
            assert membership[saturated, i].any()

    def test_ample_capacity_meets_all_demand(self):
        demand = np.array([100.0, 50.0, 10.0])
        membership = np.ones((1, 3), dtype=bool)
        alloc = weighted_max_min(demand, np.ones(3), membership,
                                 np.array([1e6]))
        assert alloc == pytest.approx(demand)

    def test_equal_weights_share_bottleneck_equally(self):
        demand = np.array([1e9, 1e9])
        membership = np.ones((1, 2), dtype=bool)
        alloc = weighted_max_min(demand, np.ones(2), membership,
                                 np.array([100.0]))
        assert alloc == pytest.approx([50.0, 50.0])

    def test_weights_skew_the_shares(self):
        demand = np.array([1e9, 1e9])
        membership = np.ones((1, 2), dtype=bool)
        alloc = weighted_max_min(demand, np.array([3.0, 1.0]),
                                 membership, np.array([100.0]))
        assert alloc == pytest.approx([75.0, 25.0])

    def test_unused_link_leaves_other_classes_alone(self):
        demand = np.array([40.0, 70.0])
        membership = np.array([[True, False], [False, True]])
        alloc = weighted_max_min(demand, np.ones(2), membership,
                                 np.array([50.0, 50.0]))
        assert alloc == pytest.approx([40.0, 50.0])


class TestDeterminism:
    def _batches(self, seed):
        engine = _engine(seed=seed)
        batches = []
        engine.add_packet_observer(batches.append)
        summary = engine.run(300.0)
        return batches, summary

    def test_identical_seed_bit_identical_batches(self):
        a_batches, a_summary = self._batches(7)
        b_batches, b_summary = self._batches(7)
        assert len(a_batches) == len(b_batches) > 0
        for a, b in zip(a_batches, b_batches):
            for fld in ("timestamp", "src_ip", "dst_ip", "src_port",
                        "dst_port", "protocol", "size", "payload_len",
                        "flags", "ttl", "flow_id"):
                assert np.array_equal(np.asarray(getattr(a, fld)),
                                      np.asarray(getattr(b, fld))), fld
            for fld in ("direction", "app", "label"):
                ca, cb = getattr(a, fld), getattr(b, fld)
                assert np.array_equal(ca.codes, cb.codes)
                assert list(ca.values) == list(cb.values)
        assert a_summary.total_packets == b_summary.total_packets
        assert a_summary.total_bytes == b_summary.total_bytes

    def test_different_seeds_differ(self):
        a_batches, _ = self._batches(1)
        b_batches, _ = self._batches(2)
        assert not all(
            len(a) == len(b)
            and np.array_equal(a.timestamp, b.timestamp)
            for a, b in zip(a_batches, b_batches))


class TestTickLoop:
    def test_batches_time_sorted_and_inside_tick(self):
        engine = _engine(seed=3)
        batches = []
        engine.add_packet_observer(batches.append)
        start = engine.now
        engine.run(180.0)
        assert batches
        lo = start
        for batch in batches:
            ts = batch.timestamp
            assert np.all(np.diff(ts) >= 0)
            assert ts[0] >= lo - 1e-9
            lo += 60.0

    def test_addresses_follow_the_plan(self):
        engine = _engine(seed=4)
        batches = []
        engine.add_packet_observer(batches.append)
        engine.run(60.0)
        batch = batches[0]
        src = np.asarray(batch.src_ip, dtype=np.uint64)
        dst = np.asarray(batch.dst_ip, dtype=np.uint64)
        out = batch.direction.codes == batch.direction.code_of("out")
        campus_hi = CAMPUS_BASE_U32 + engine.config.n_users
        # Outbound: campus source, internet destination; inbound mirrors.
        assert np.all((src[out] >= CAMPUS_BASE_U32)
                      & (src[out] < campus_hi))
        assert np.all(dst[out] >= INTERNET_BASE_U32)
        assert np.all(src[~out] >= INTERNET_BASE_U32)
        assert np.all((dst[~out] >= CAMPUS_BASE_U32)
                      & (dst[~out] < campus_hi))

    def test_congestion_backlogs_under_narrow_uplink(self):
        narrow = _engine(seed=5, uplink_gbps=1e-4, core_gbps=1e-4,
                         distribution_gbps=1e-4)
        wide = _engine(seed=5)
        narrow.run(300.0)
        wide.run(300.0)
        # The narrow uplink cannot drain the offered load within the
        # run; the backlog the fluid state carries is the queue.
        assert narrow.backlog_bytes.sum() > 1e6
        assert wide.backlog_bytes.sum() < narrow.backlog_bytes.sum()

    def test_tap_sampling_thins_packets_not_demand(self):
        full = _engine(seed=6)
        thin = _engine(seed=6, tap_sample=0.05)
        s_full = full.run(300.0)
        s_thin = thin.run(300.0)
        assert s_thin.total_packets < s_full.total_packets / 4
        # Demand accounting still covers the whole population.
        assert s_thin.total_bytes == pytest.approx(
            s_full.total_bytes, rel=0.35)

    def test_summary_counters_match_observed_batches(self):
        engine = _engine(seed=8)
        seen = []
        engine.add_packet_observer(seen.append)
        summary = engine.run(120.0)
        assert summary.total_packets == sum(len(b) for b in seen)
        assert len(summary.ticks) == 2
        assert summary.total_flows >= summary.total_tap_flows > 0

    def test_collect_flows_arrays(self):
        engine = _engine(seed=9)
        summary = engine.run(120.0, collect_flows=True)
        n = summary.total_tap_flows
        assert len(summary.flow_sizes) == n
        assert len(summary.flow_starts) == n
        assert len(summary.flow_durations) == n
        assert len(summary.flow_apps) == n
        assert (summary.flow_sizes > 0).all()
        assert (summary.flow_durations > 0).all()

    def test_quiet_population_is_fine(self):
        engine = _engine(seed=10, n_users=1, n_cohorts=1,
                         mean_flows_per_hour=1e-6)
        batches = []
        engine.add_packet_observer(batches.append)
        summary = engine.run(60.0)
        # Empty batches are never delivered to observers.
        assert all(len(b) for b in batches)
        assert summary.total_packets == sum(len(b) for b in batches)

    def test_flow_ids_monotonic(self):
        engine = _engine(seed=11)
        first = engine.new_flow_ids(5)
        second = engine.new_flow_ids(3)
        assert list(first) == [0, 1, 2, 3, 4]
        assert list(second) == [5, 6, 7]


class TestOverlays:
    def test_overlay_packets_labeled_and_windowed(self):
        engine = _engine(seed=12)
        start = engine.now
        engine.add_overlay(FluidOverlay(
            label="exfiltration", app="exfil",
            start_time=start + 60.0, end_time=start + 120.0,
            flows_per_second=2.0,
            size_sampler=lambda rng, n: np.full(n, 50_000.0),
            src_ips=np.array([CAMPUS_BASE_U32 + 3], dtype=np.uint32),
            dst_ips=np.array([INTERNET_BASE_U32 + 9], dtype=np.uint32),
            src_internal=True))
        batches = []
        engine.add_packet_observer(batches.append)
        engine.run(180.0)
        merged_labels = []
        for batch in batches:
            merged_labels.extend(batch.label.decode(i)
                                 for i in range(len(batch)))
            assert np.all(np.diff(batch.timestamp) >= 0)
        labels = set(merged_labels)
        assert labels == {"benign", "exfiltration"}
        # Overlay packets stay inside the overlay window.
        for batch in batches:
            evil = batch.label.codes == batch.label.code_of(
                "exfiltration") if "exfiltration" in batch.label.values \
                else np.zeros(len(batch), dtype=bool)
            ts = batch.timestamp[evil]
            if len(ts):
                assert ts.min() >= start + 60.0 - 1e-6
                assert ts.max() <= start + 125.0

    def test_overlay_outside_window_is_silent(self):
        engine = _engine(seed=13)
        engine.add_overlay(FluidOverlay(
            label="late", app="x",
            start_time=engine.now + 9_000.0,
            end_time=engine.now + 9_060.0,
            flows_per_second=50.0,
            size_sampler=lambda rng, n: np.full(n, 1000.0),
            src_ips=np.array([INTERNET_BASE_U32], dtype=np.uint32),
            dst_ips=np.array([CAMPUS_BASE_U32], dtype=np.uint32)))
        batches = []
        engine.add_packet_observer(batches.append)
        engine.run(120.0)
        for batch in batches:
            assert "late" not in batch.label.values


class TestFactory:
    def test_make_fluid_campus_maps_profile(self):
        engine = make_fluid_campus("tiny", n_users=500, seed=7)
        assert engine.config.n_users == 500
        assert engine.config.uplink_gbps == pytest.approx(1.0)
        assert isinstance(engine, FluidTrafficEngine)

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="tiny"):
            make_fluid_campus("no-such-campus")

    def test_batches_are_packet_columns(self):
        engine = make_fluid_campus("tiny", n_users=200, seed=1,
                                   tick_seconds=30.0)
        batches = []
        engine.add_packet_observer(batches.append)
        engine.run(30.0)
        assert batches and all(
            isinstance(b, PacketColumns) for b in batches)
