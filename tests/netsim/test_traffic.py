"""Application models, mixes, and payload synthesis."""

import numpy as np
import pytest

from repro.netsim.flows import Flow
from repro.netsim.packets import FiveTuple, Protocol
from repro.netsim.traffic import (
    DEFAULT_MIX,
    DnsModel,
    TrafficMix,
    VideoStreamingModel,
    WebBrowsingModel,
    default_mix,
)
from repro.netsim.traffic.payloads import (
    decode_dns_qname,
    dns_amplification_payload,
    dns_query_payload,
    encode_dns_qname,
    http_payload,
    ssh_payload,
    tls_payload,
)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def _dummy_flow(flow_id=7):
    return Flow(flow_id=flow_id,
                key=FiveTuple("10.0.0.1", "9.9.9.9", 1234, 53, 17),
                src_node="a", dst_node="b", size_bytes=500)


def test_mix_weights_normalised():
    mix = default_mix()
    assert mix.weights.sum() == pytest.approx(1.0)
    assert len(mix.models) == len(mix.weights)


def test_mix_rejects_bad_weights():
    with pytest.raises(ValueError):
        TrafficMix([])
    with pytest.raises(ValueError):
        TrafficMix([(DnsModel(), -1.0)])


def test_mix_samples_follow_weights(rng):
    mix = TrafficMix([(DnsModel(), 0.9), (WebBrowsingModel(), 0.1)])
    names = [mix.sample(rng).app for _ in range(400)]
    assert names.count("dns") > names.count("web")


def test_templates_are_wellformed(rng):
    for model in DEFAULT_MIX.models:
        for _ in range(20):
            t = model.sample(rng)
            assert t.size_bytes >= 64
            assert 0.0 <= t.fwd_fraction <= 1.0
            assert t.protocol in (int(Protocol.TCP), int(Protocol.UDP))
            assert 0 < t.dst_port < 65536


def test_video_is_rate_capped(rng):
    t = VideoStreamingModel().sample(rng)
    assert t.rate_cap_bps is not None
    assert t.rate_cap_bps >= 3e6


def test_dns_qname_roundtrip():
    wire = encode_dns_qname("lms.campus.edu")
    assert decode_dns_qname(b"\x00" * 12 + wire) == "lms.campus.edu"


def test_dns_query_and_response_payloads():
    flow = _dummy_flow()
    query = dns_query_payload(flow, 0, "fwd")
    response = dns_query_payload(flow, 0, "rev")
    assert query[2] & 0x80 == 0          # QR bit clear
    assert response[2] & 0x80            # QR bit set
    assert decode_dns_qname(query)       # parseable name


def test_amplification_payload_is_any_query():
    flow = _dummy_flow()
    query = dns_amplification_payload(flow, 0, "fwd")
    # QTYPE sits right after the encoded qname.
    i = 12
    while query[i] != 0:
        i += query[i] + 1
    qtype = int.from_bytes(query[i + 1:i + 3], "big")
    assert qtype == 255
    response = dns_amplification_payload(flow, 0, "rev")
    assert len(response) > len(query)


def test_http_and_tls_and_ssh_payload_shapes():
    flow = _dummy_flow()
    assert http_payload(flow, 0, "fwd").startswith(b"GET ")
    assert http_payload(flow, 0, "rev").startswith(b"HTTP/1.1 200")
    assert tls_payload(flow, 0, "fwd").startswith(b"\x16\x03\x03")
    assert ssh_payload(flow, 0, "fwd").startswith(b"SSH-2.0")


def test_payloads_are_deterministic():
    a = dns_query_payload(_dummy_flow(9), 0, "fwd")
    b = dns_query_payload(_dummy_flow(9), 0, "fwd")
    assert a == b
