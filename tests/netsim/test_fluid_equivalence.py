"""Discrete engine as the fluid engine's equivalence oracle.

The fluid engine only models border-crossing traffic (the tap cannot
see anything else), so every comparison here restricts the discrete
run to flows whose destination is outside the campus.  Seeds are
fixed: these are regression tolerances around a deterministic pair of
runs, not statistical tests that can flake.
"""

import numpy as np
import pytest

from repro.netsim.flows import rate_curve
from repro.netsim.fluid import FluidConfig, FluidTrafficEngine
from repro.netsim.network import CampusNetwork
from repro.netsim.topology import TopologySpec, build_campus_topology

SEED = 3
N_USERS = 120
DURATION = 200.0
START = 8 * 3600.0
#: apps short enough to complete within the window, so the discrete
#: completed-flow record is the full arrival record.
SHORT_APPS = ("dns", "web", "ntp", "mail")


@pytest.fixture(scope="module")
def discrete_border_flows():
    spec = TopologySpec(name="equiv", departments=2,
                        access_per_department=2, hosts_per_access=30,
                        servers=2, wifi_aps=0, hosts_per_ap=0,
                        internet_hosts=64)
    topology = build_campus_topology(spec, SEED)
    net = CampusNetwork(topology=topology, seed=SEED)
    flows = []
    net.add_flow_observer(flows.append)
    net.start_background_traffic()
    net.run_for(DURATION)
    return [f for f in flows
            if not topology.is_internal_ip(f.key.dst_ip)]


@pytest.fixture(scope="module")
def fluid_summary():
    engine = FluidTrafficEngine(
        FluidConfig(n_users=N_USERS, n_cohorts=16, tick_seconds=50.0),
        seed=SEED)
    return engine.run(DURATION, collect_flows=True)


def test_border_arrival_counts_agree(discrete_border_flows,
                                     fluid_summary):
    discrete = len(discrete_border_flows)
    fluid = fluid_summary.total_flows
    assert discrete > 50
    assert abs(discrete - fluid) / discrete < 0.25


def test_app_mix_agrees(discrete_border_flows, fluid_summary):
    """Border flow shares per app: weights x p_internet both sides."""
    def shares(apps):
        apps = list(apps)
        return {a: apps.count(a) / len(apps) for a in set(apps)}

    discrete = shares(f.app for f in discrete_border_flows)
    fluid = shares(fluid_summary.flow_apps)
    for app, share in discrete.items():
        if share < 0.05:
            continue   # too few samples for a share comparison
        assert abs(share - fluid.get(app, 0.0)) < 0.2, app


def test_flow_size_marginals_agree(discrete_border_flows,
                                   fluid_summary):
    """Per-app size distributions come from the same samplers."""
    discrete = {}
    for flow in discrete_border_flows:
        discrete.setdefault(flow.app, []).append(flow.size_bytes)
    fluid = {}
    for app, size in zip(fluid_summary.flow_apps,
                         fluid_summary.flow_sizes):
        fluid.setdefault(app, []).append(size)
    compared = 0
    for app in set(discrete) & set(fluid):
        if len(discrete[app]) < 15 or len(fluid[app]) < 15:
            continue
        d_log = float(np.mean(np.log10(discrete[app])))
        f_log = float(np.mean(np.log10(fluid[app])))
        assert abs(d_log - f_log) < 0.6, (app, d_log, f_log)
        compared += 1
    assert compared >= 2   # the window must be long enough to compare


def test_short_flow_durations_agree(discrete_border_flows,
                                    fluid_summary):
    """Uncongested durations: size/rate through both engines."""
    discrete = [f.duration for f in discrete_border_flows
                if f.app in ("dns", "web")]
    fluid = [d for a, d in zip(fluid_summary.flow_apps,
                               fluid_summary.flow_durations)
             if a in ("dns", "web")]
    d_med, f_med = np.median(discrete), np.median(fluid)
    assert 0.2 < d_med / f_med < 5.0


def test_rate_curves_agree(discrete_border_flows, fluid_summary):
    """Byte-rate curves over the window, short apps only (long bulk
    flows straddle the window's end on the discrete side)."""
    short = [f for f in discrete_border_flows if f.app in SHORT_APPS]
    d_curve = rate_curve(
        np.array([f.start_time for f in short]),
        np.array([f.end_time for f in short]),
        np.array([f.size_bytes for f in short]),
        50.0, START, START + DURATION)
    keep = np.array([a in SHORT_APPS for a in fluid_summary.flow_apps],
                    dtype=bool)
    starts = fluid_summary.flow_starts[keep]
    f_curve = rate_curve(
        starts, starts + fluid_summary.flow_durations[keep],
        fluid_summary.flow_sizes[keep], 50.0, START, START + DURATION)
    assert d_curve.sum() > 0 and f_curve.sum() > 0
    ratio = d_curve.mean() / f_curve.mean()
    assert 0.4 < ratio < 2.5


def test_fluid_tap_flows_equal_arrivals_at_full_sampling(fluid_summary):
    # tap_sample defaults to 1.0: every border flow reaches the tap.
    assert fluid_summary.total_tap_flows == fluid_summary.total_flows
