"""Routing: shortest paths, caching, failure rerouting."""

import pytest

from repro.netsim.routing import NoRouteError, Router
from repro.netsim.topology import TopologySpec, build_campus_topology


@pytest.fixture
def topo():
    return build_campus_topology(TopologySpec(), seed=1)


def test_path_endpoints_and_adjacency(topo):
    router = Router(topo)
    path = router.path("h0_0_0", "inet0")
    assert path[0] == "h0_0_0"
    assert path[-1] == "inet0"
    for a, b in zip(path, path[1:]):
        assert topo.graph.has_edge(a, b)


def test_host_to_internet_crosses_border(topo):
    router = Router(topo)
    path = router.path("h1_0_3", "inet5")
    assert router.crosses(path, *topo.border_link)


def test_internal_path_avoids_border(topo):
    router = Router(topo)
    path = router.path("h0_0_0", "srv0")
    assert not router.crosses(path, *topo.border_link)


def test_reverse_path_is_cached_reversed(topo):
    router = Router(topo)
    forward = router.path("h0_0_0", "srv1")
    assert router.path("srv1", "h0_0_0") == list(reversed(forward))


def test_link_failure_reroutes(topo):
    router = Router(topo)
    path = router.path("h0_0_0", "inet0")
    # Fail the core->border hop; the redundant core pair provides the
    # alternate path (coreX -> coreY -> border).
    core_hop = None
    for a, b in zip(path, path[1:]):
        if {a[:4], b[:4]} == {"core", "bord"}:
            core_hop = (a, b)
            break
    assert core_hop is not None
    router.set_link_state(*core_hop, up=False)
    new_path = router.path("h0_0_0", "inet0")
    assert not router.crosses(new_path, *core_hop)
    router.set_link_state(*core_hop, up=True)


def test_no_route_raises(topo):
    router = Router(topo)
    with pytest.raises(NoRouteError):
        router.path("h0_0_0", "nonexistent")
