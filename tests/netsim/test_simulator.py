"""Event-engine semantics: ordering, cancellation, clock discipline."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.simulator import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(3.0, lambda: fired.append(3))
    sim.schedule_at(1.0, lambda: fired.append(1))
    sim.schedule_at(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule_at(5.0, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_relative_schedule_uses_current_time():
    sim = Simulator(start_time=100.0)
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [102.0]


def test_scheduling_in_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancellation_skips_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(1.0, lambda: fired.append("a"))
    sim.schedule_at(2.0, lambda: fired.append("b"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["b"]


def test_run_until_stops_at_boundary_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, lambda: fired.append(1))
    sim.schedule_at(5.0, lambda: fired.append(5))
    processed = sim.run_until(3.0)
    assert processed == 1
    assert fired == [1]
    assert sim.now == 3.0
    sim.run_until(10.0)
    assert fired == [1, 5]


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(3.0, lambda: fired.append(3))
    sim.run_until(3.0)
    assert fired == [3]


def test_run_until_backwards_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_stop_inside_callback_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule_at(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending == 1


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.schedule_at(float(i), lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.events_processed == 4


def test_peek_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule_at(1.0, lambda: None)
    sim.schedule_at(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_time() == 2.0


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, lambda: chain(n + 1))

    sim.schedule_at(0.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=60))
def test_property_fire_order_matches_sorted_times(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert sim.events_processed == len(times)


# -- live pending count + lazy tombstone compaction -------------------

def test_pending_counts_live_events_only():
    sim = Simulator()
    handles = [sim.schedule_at(float(i), lambda: None) for i in range(10)]
    assert sim.pending == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sim.pending == 6
    # Double-cancel is idempotent: the count must not go stale.
    handles[0].cancel()
    assert sim.pending == 6
    sim.run()
    assert sim.pending == 0


def test_pending_tracks_processing():
    sim = Simulator()
    for i in range(5):
        sim.schedule_at(float(i), lambda: None)
    sim.step()
    assert sim.pending == 4


def test_compaction_purges_tombstones():
    sim = Simulator()
    keep = [sim.schedule_at(1000.0 + i, lambda: None) for i in range(10)]
    doomed = [sim.schedule_at(2000.0 + i, lambda: None)
              for i in range(200)]
    for handle in doomed:
        handle.cancel()
    assert sim.pending == 10
    assert len(sim._heap) == 210
    # The next step compacts (>=64 cancelled and a majority) before
    # popping, so the tombstones vanish without being popped one by one.
    assert sim.step()
    assert len(sim._heap) == 9
    assert sim.pending == 9
    assert all(not h.cancelled for h in keep)


def test_compaction_threshold_respected():
    sim = Simulator()
    for i in range(100):
        sim.schedule_at(1000.0 + i, lambda: None)
    doomed = [sim.schedule_at(2000.0 + i, lambda: None)
              for i in range(63)]
    for handle in doomed:
        handle.cancel()
    sim.step()
    # 63 < COMPACT_MIN_CANCELLED: tombstones still queued.
    assert len(sim._heap) == 99 + 63
    assert sim.pending == 99


def test_cancelled_events_never_fire_after_compaction():
    sim = Simulator()
    fired = []
    live = [sim.schedule_at(10.0 + i, lambda i=i: fired.append(i))
            for i in range(5)]
    doomed = [sim.schedule_at(5.0 + i * 0.01, lambda: fired.append("bad"))
              for i in range(150)]
    for handle in doomed:
        handle.cancel()
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.pending == 0
    assert live[0].cancelled is False


def test_timeout_pattern_keeps_heap_bounded():
    """The motivating workload: schedule-then-cancel in a loop."""
    sim = Simulator()
    for i in range(2000):
        handle = sim.schedule_at(1e6 + i, lambda: None)
        sim.schedule_at(float(i), lambda h=handle: h.cancel())
    sim.run_until(2500.0)
    # All 2000 timeouts were cancelled; compaction must have kept the
    # heap from retaining all their tombstones until t=1e6.
    assert sim.pending == 0
    assert len(sim._heap) < 200
