"""Diagnostics framework: codes, severities, locations, reporters."""

import json

import pytest

from repro.verify.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    ProgramVerificationError,
    REP_CODES,
    Severity,
    SourceLocation,
    diag,
)


class TestRegistry:
    def test_codes_are_stable_blocks(self):
        for code, (severity, title) in REP_CODES.items():
            assert code.startswith("REP") and len(code) == 6
            assert isinstance(severity, Severity)
            assert title

    def test_documented_codes_present(self):
        # The codes the ISSUE acceptance criteria name must exist.
        for code in ["REP001", "REP101", "REP201", "REP301"]:
            assert code in REP_CODES

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            diag("REP999", "nope")


class TestDiag:
    def test_default_severity_from_registry(self):
        d = diag("REP001", "overflow")
        assert d.severity is Severity.ERROR
        assert d.title == REP_CODES["REP001"][1]

    def test_severity_override(self):
        d = diag("REP104", "gap", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING

    def test_program_location_render(self):
        d = diag("REP001", "x", program="p", table="t", entry=3, field="f")
        assert d.location.render() == "p/t[3].f"

    def test_file_location_render(self):
        d = diag("REP301", "x", file="netsim/sim.py", line=12)
        assert d.location.render() == "netsim/sim.py:12"


class TestReport:
    def _report(self):
        report = DiagnosticReport(subject="prog")
        report.add(diag("REP001", "bad width", table="t", entry=0))
        report.add(diag("REP101", "dead entry", table="t", entry=1))
        report.add(diag("REP103", "default unreachable", table="t"))
        return report

    def test_severity_buckets(self):
        report = self._report()
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert not report.ok
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}

    def test_by_code(self):
        report = self._report()
        assert len(report.by_code("REP101")) == 1
        assert report.by_code("REP202") == []

    def test_text_reporter_orders_by_severity(self):
        text = self._report().render_text()
        lines = text.splitlines()
        assert lines[0].startswith("error")
        assert lines[-1] == "prog: 1 error(s), 1 warning(s), 1 info"

    def test_text_reporter_severity_floor(self):
        text = self._report().render_text(min_severity=Severity.ERROR)
        assert "REP001" in text and "REP101" not in text

    def test_json_reporter_roundtrips(self):
        payload = json.loads(self._report().render_json())
        assert payload["ok"] is False
        assert payload["counts"]["error"] == 1
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes == ["REP001", "REP101", "REP103"]
        assert payload["diagnostics"][0]["location"] == {
            "table": "t", "entry": 0}

    def test_empty_report_is_ok(self):
        assert DiagnosticReport().ok


class TestVerificationError:
    def test_message_names_codes(self):
        report = DiagnosticReport(subject="tool")
        report.add(diag("REP001", "x"))
        report.add(diag("REP005", "y"))
        error = ProgramVerificationError(report)
        assert "REP001" in str(error) and "REP005" in str(error)
        assert error.report is report
