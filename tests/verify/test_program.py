"""Program verifier: structural passes, semantic interval passes,
resource pre-check, and the deploy/load trust gates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.deploy.compiler import FeatureQuantizer, compile_tree
from repro.deploy.ir import (
    FieldMatch,
    MatchActionTable,
    MatchKind,
    SwitchProgram,
    TableEntry,
)
from repro.deploy.resources import SwitchResourceModel
from repro.learning.models import DecisionTreeClassifier
from repro.verify import (
    ProgramVerificationError,
    check_deployable,
    resource_precheck,
    verify_program,
)


def _table(entries=None, key_widths=None, default_action="set_class",
           default_params=None):
    table = MatchActionTable(
        name="classify",
        key_fields=list((key_widths or {"a": 8, "b": 8})),
        key_widths=dict(key_widths or {"a": 8, "b": 8}),
        default_action=default_action,
        default_params=(default_params if default_params is not None
                        else {"class_id": 0}),
    )
    for entry in entries or []:
        table.entries.append(entry)      # bypass add_entry validation
    return table


def _program(table) -> SwitchProgram:
    return SwitchProgram(name="prog", tables=[table],
                         feature_fields=list(table.key_fields))


def _entry(priority=0, matches=None, action="set_class", params=None):
    return TableEntry(priority=priority, matches=matches or {},
                      action=action,
                      params=params if params is not None
                      else {"class_id": 1})


class TestStructural:
    def test_exact_value_overflow_rep001(self):
        table = _table([_entry(matches={"a": FieldMatch.exact(256)})])
        report = verify_program(_program(table))
        assert [d.code for d in report.errors] == ["REP001"]
        assert report.errors[0].location.field == "a"

    def test_ternary_mask_overflow_rep001(self):
        match = FieldMatch(kind=MatchKind.TERNARY, value=1, mask=0x1FF)
        table = _table([_entry(matches={"a": match})])
        report = verify_program(_program(table))
        assert report.by_code("REP001")

    def test_range_exceeds_width_rep002(self):
        match = FieldMatch(kind=MatchKind.RANGE, lo=0, hi=300)
        table = _table([_entry(matches={"a": match})])
        report = verify_program(_program(table))
        assert report.by_code("REP002") and not report.ok

    def test_empty_range_rep002(self):
        match = FieldMatch(kind=MatchKind.RANGE, lo=9, hi=3)
        table = _table([_entry(matches={"a": match})])
        assert verify_program(_program(table)).by_code("REP002")

    def test_lpm_prefix_too_long_rep003(self):
        match = FieldMatch(kind=MatchKind.LPM, value=0, prefix_len=9)
        table = _table([_entry(matches={"a": match})])
        assert verify_program(_program(table)).by_code("REP003")

    def test_undeclared_key_field_rep004(self):
        table = _table([_entry(matches={"zzz": FieldMatch.exact(1)})])
        report = verify_program(_program(table))
        assert report.by_code("REP004")

    def test_unknown_action_rep005(self):
        table = _table([_entry(action="teleport", params={})])
        assert verify_program(_program(table)).by_code("REP005")

    def test_unknown_default_action_rep005(self):
        table = _table([], default_action="vanish", default_params={})
        assert verify_program(_program(table)).by_code("REP005")

    def test_missing_required_param_rep006(self):
        table = _table([_entry(params={})])
        report = verify_program(_program(table))
        assert report.by_code("REP006") and not report.ok

    def test_mistyped_param_rep006(self):
        table = _table([_entry(params={"class_id": "one"})])
        assert not verify_program(_program(table)).ok

    def test_unexpected_param_is_warning(self):
        table = _table([_entry(params={"class_id": 1, "ttl": 3})])
        report = verify_program(_program(table))
        assert report.ok
        assert any(d.code == "REP006" for d in report.warnings)

    def test_bad_key_width_rep007(self):
        table = _table([], key_widths={"a": 0, "b": 8})
        assert verify_program(_program(table)).by_code("REP007")

    def test_clean_table_no_errors(self):
        table = _table([
            _entry(priority=1, matches={"a": FieldMatch.range(0, 10)}),
            _entry(priority=0, matches={"b": FieldMatch.exact(7)},
                   params={"class_id": 0, "confidence": 0.9}),
        ])
        assert verify_program(_program(table)).ok


class TestSemantic:
    def test_shadowed_by_single_entry_rep101(self):
        table = _table([
            _entry(priority=5, matches={"a": FieldMatch.range(0, 100)}),
            _entry(priority=1, matches={"a": FieldMatch.range(10, 20)},
                   params={"class_id": 2}),
        ])
        report = verify_program(_program(table))
        flagged = report.by_code("REP101")
        assert len(flagged) == 1 and flagged[0].location.entry == 1

    def test_shadowed_by_union_rep101(self):
        """No single higher-priority entry covers the victim, but the
        union of two does — interval subtraction catches it."""
        table = _table([
            _entry(priority=5, matches={"a": FieldMatch.range(0, 60)}),
            _entry(priority=5, matches={"a": FieldMatch.range(50, 255)},
                   params={"class_id": 1}),
            _entry(priority=1, matches={"a": FieldMatch.range(40, 80)},
                   params={"class_id": 2}),
        ])
        report = verify_program(_program(table))
        assert [d.location.entry for d in report.by_code("REP101")] == [2]

    def test_equal_priority_earlier_entry_shadows(self):
        table = _table([
            _entry(priority=3, matches={"a": FieldMatch.range(0, 50)}),
            _entry(priority=3, matches={"a": FieldMatch.range(10, 20)},
                   params={"class_id": 1}),
        ])
        report = verify_program(_program(table))
        assert [d.location.entry for d in report.by_code("REP101")] == [1]

    def test_partial_overlap_not_shadowed(self):
        table = _table([
            _entry(priority=5, matches={"a": FieldMatch.range(0, 50)}),
            _entry(priority=1, matches={"a": FieldMatch.range(40, 80)},
                   params={"class_id": 2}),
        ])
        assert not verify_program(_program(table)).by_code("REP101")

    def test_multifield_not_shadowed_across_dims(self):
        """Covering in each projection separately is not covering."""
        table = _table([
            _entry(priority=5, matches={"a": FieldMatch.range(0, 255),
                                        "b": FieldMatch.range(0, 10)}),
            _entry(priority=1, matches={"a": FieldMatch.range(5, 9),
                                        "b": FieldMatch.range(5, 20)},
                   params={"class_id": 2}),
        ])
        assert not verify_program(_program(table)).by_code("REP101")

    def test_ambiguous_overlap_rep102(self):
        table = _table([
            _entry(priority=2, matches={"a": FieldMatch.range(0, 30)},
                   params={"class_id": 1}),
            _entry(priority=2, matches={"a": FieldMatch.range(20, 50)},
                   params={"class_id": 2}),
        ])
        report = verify_program(_program(table))
        # entry 1 is partially claimed by entry 0 on [20,30]: ambiguous
        # on real hardware, order-resolved in the emulator.
        assert report.by_code("REP102")

    def test_same_outcome_overlap_not_ambiguous(self):
        table = _table([
            _entry(priority=2, matches={"a": FieldMatch.range(0, 30)}),
            _entry(priority=2, matches={"a": FieldMatch.range(20, 50)}),
        ])
        assert not verify_program(_program(table)).by_code("REP102")

    def test_unreachable_default_rep103(self):
        table = _table([_entry(matches={})])      # wildcard entry
        report = verify_program(_program(table))
        assert report.by_code("REP103")

    def test_coverage_gap_warning_with_noaction_default(self):
        table = _table(
            [_entry(matches={"a": FieldMatch.range(0, 99)})],
            default_action="NoAction", default_params={})
        report = verify_program(_program(table))
        gaps = report.by_code("REP104")
        assert gaps and any(d in report.warnings for d in gaps)
        assert any("[100, 255]" in d.message for d in gaps)

    def test_non_prefix_ternary_reported_and_skipped_rep105(self):
        weird = FieldMatch(kind=MatchKind.TERNARY, value=0b0101,
                           mask=0b0101)
        table = _table([
            _entry(priority=5, matches={"a": FieldMatch.range(0, 255),
                                        "b": FieldMatch.range(0, 255)}),
            _entry(priority=1, matches={"a": weird},
                   params={"class_id": 2}),
        ])
        report = verify_program(_program(table))
        assert report.by_code("REP105")
        # conservatively NOT flagged as shadowed even though covered
        assert not any(d.location.entry == 1
                       for d in report.by_code("REP101"))

    def test_prefix_ternary_participates_in_intervals(self):
        prefix = FieldMatch(kind=MatchKind.TERNARY, value=0b1100_0000,
                            mask=0b1100_0000)       # [192, 255]
        table = _table([
            _entry(priority=5, matches={"a": FieldMatch.range(192, 255)}),
            _entry(priority=1, matches={"a": prefix},
                   params={"class_id": 2}),
        ])
        report = verify_program(_program(table))
        assert [d.location.entry for d in report.by_code("REP101")] == [1]

    def test_large_table_capped_rep106(self):
        entries = [_entry(priority=i,
                          matches={"a": FieldMatch.exact(i % 256)})
                   for i in range(600)]
        report = verify_program(_program(_table(entries)))
        assert report.by_code("REP106")
        assert not report.by_code("REP101")


# -- Hypothesis: the shadow pass is sound w.r.t. lookup() -------------------

_WIDTH = 4
_FULL = (1 << _WIDTH) - 1

_match_spec = st.one_of(
    st.none(),
    st.tuples(st.just("exact"), st.integers(0, _FULL)),
    st.tuples(st.just("range"), st.integers(0, _FULL),
              st.integers(0, _FULL)),
    st.tuples(st.just("ternary"), st.integers(0, _FULL),
              st.integers(0, _FULL)),
)

_entry_spec = st.tuples(st.integers(0, 3), _match_spec, _match_spec)


def _spec_to_match(spec):
    if spec is None:
        return None
    if spec[0] == "exact":
        return FieldMatch.exact(spec[1])
    if spec[0] == "range":
        lo, hi = sorted(spec[1:])
        return FieldMatch.range(lo, hi)
    return FieldMatch(kind=MatchKind.TERNARY, value=spec[1], mask=spec[2])


@settings(max_examples=120, deadline=None)
@given(st.lists(_entry_spec, min_size=1, max_size=6))
def test_property_shadow_pass_never_flags_live_entries(specs):
    """Removing any entry the pass calls shadowed must not change any
    lookup() result over the whole (small) key space."""
    entries = []
    for i, (priority, spec_a, spec_b) in enumerate(specs):
        matches = {}
        for name, spec in (("a", spec_a), ("b", spec_b)):
            match = _spec_to_match(spec)
            if match is not None:
                matches[name] = match
        entries.append(TableEntry(priority=priority, matches=matches,
                                  action="set_class",
                                  params={"class_id": i}))
    table = _table(entries, key_widths={"a": _WIDTH, "b": _WIDTH})
    report = verify_program(_program(table))
    shadowed = [d.location.entry for d in report.by_code("REP101")]
    for victim in shadowed:
        pruned = _table([e for i, e in enumerate(entries) if i != victim],
                        key_widths={"a": _WIDTH, "b": _WIDTH})
        for a in range(_FULL + 1):
            for b in range(_FULL + 1):
                fields = {"a": a, "b": b}
                assert table.lookup(fields) == pruned.lookup(fields), (
                    f"shadow pass flagged live entry {victim} "
                    f"(differs at {fields})")


# -- compiled programs (the acceptance scenarios) ---------------------------

@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(7)
    X = np.abs(rng.normal(size=(300, 4))) * [10, 1000, 1, 100]
    y = ((X[:, 1] > 800) & (X[:, 2] > 0.4)).astype(int)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    quantizer = FeatureQuantizer.for_features(X)
    return compile_tree(tree, ["pkts", "bytes", "ratio", "rate"],
                        quantizer, class_names=["benign", "ddos"])


class TestCompiledPrograms:
    def test_fitted_tree_verifies_clean(self, compiled):
        report = verify_program(compiled.program, compile_result=compiled)
        assert report.ok
        assert not report.warnings

    def test_injected_width_overflow_flagged(self, compiled):
        import copy

        result = copy.deepcopy(compiled)
        table = result.program.table("classify")
        width = table.key_widths[table.key_fields[0]]
        table.entries.append(TableEntry(
            priority=99,
            matches={table.key_fields[0]:
                     FieldMatch(kind=MatchKind.RANGE, lo=0,
                                hi=1 << width)},
            action="set_class", params={"class_id": 1}))
        report = verify_program(result.program)
        assert report.by_code("REP002") and not report.ok

    def test_injected_shadowed_entry_flagged(self, compiled):
        import copy

        result = copy.deepcopy(compiled)
        table = result.program.table("classify")
        table.entries.append(TableEntry(
            priority=-1,                 # loses to every tree path
            matches={},                  # ...while matching everything
            action="set_class", params={"class_id": 1}))
        report = verify_program(result.program)
        flagged = [d.location.entry for d in report.by_code("REP101")]
        assert len(table.entries) - 1 in flagged

    def test_check_deployable_raises_on_errors(self, compiled):
        import copy

        result = copy.deepcopy(compiled)
        table = result.program.table("classify")
        table.entries.append(TableEntry(
            priority=1, matches={}, action="not_an_action", params={}))
        with pytest.raises(ProgramVerificationError):
            check_deployable(result.program)
        assert check_deployable(compiled.program).ok

    def test_switch_load_path_refuses_bad_program(self, compiled):
        import copy

        from repro.deploy.switch import EmulatedSwitch

        result = copy.deepcopy(compiled)
        result.program.table("classify").entries.append(TableEntry(
            priority=1, matches={}, action="not_an_action", params={}))
        # Verification fires before the network is touched, so the
        # refusal is observable without standing up a simulation.
        with pytest.raises(ProgramVerificationError):
            EmulatedSwitch(network=None, compile_result=result)


class TestResourcePrecheck:
    def test_fitting_program_gets_headroom_info(self, compiled):
        diagnostics = resource_precheck(compiled, SwitchResourceModel())
        codes = {d.code for d in diagnostics}
        assert "REP206" in codes
        assert not codes & {"REP201", "REP202", "REP203"}

    def test_tcam_overflow_rep201(self, compiled):
        model = SwitchResourceModel(tcam_bits_total=1)
        codes = {d.code for d in resource_precheck(compiled, model)}
        assert "REP201" in codes

    def test_sram_overflow_rep202(self, compiled):
        model = SwitchResourceModel(sram_bits_total=10, sketch_sram_bits=0)
        codes = {d.code for d in resource_precheck(compiled, model)}
        assert "REP202" in codes

    def test_table_slots_rep203(self, compiled):
        model = SwitchResourceModel(n_stages=0)
        codes = {d.code for d in resource_precheck(compiled, model)}
        assert "REP203" in codes

    def test_tcam_pressure_warning_rep205(self, compiled):
        model = SwitchResourceModel(
            tcam_bits_total=int(compiled.tcam_bits * 1.1))
        diagnostics = resource_precheck(compiled, model)
        assert any(d.code == "REP205" for d in diagnostics)

    def test_pathological_expansion_rep204(self):
        # [1, 2^16 - 2] expands to 2*16 - 2 = 30 covers per key; two
        # such keys multiply to 900 TCAM rows for one entry, past the
        # 512-row pathological-expansion threshold.
        table = MatchActionTable(
            name="classify", key_fields=["a", "b"],
            key_widths={"a": 16, "b": 16},
            default_action="NoAction")
        table.add_entry(TableEntry(
            priority=0,
            matches={"a": FieldMatch.range(1, (1 << 16) - 2),
                     "b": FieldMatch.range(1, (1 << 16) - 2)},
            action="set_class", params={"class_id": 1}))
        program = SwitchProgram(name="p", tables=[table])

        class _FakeResult:
            pass

        result = _FakeResult()
        result.program = program
        result.n_entries = 1
        result.tcam_bits = 900 * 32
        codes = {d.code
                 for d in resource_precheck(result, SwitchResourceModel())}
        assert "REP204" in codes
