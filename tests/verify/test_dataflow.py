"""Forward dataflow: reaching definitions + brute-force cross-checks.

The hypothesis suite generates random assignment programs (straight
lines and one level of ``if``/``else`` branching), runs the taint
engine over them, and cross-checks which sink calls see the source
against a brute-force enumeration of every execution path.
"""

import ast
import textwrap

from hypothesis import given, settings, strategies as st

from repro.verify.cfg import build_cfg
from repro.verify.dataflow import (
    Definition,
    ReachingDefinitions,
    assigned_names,
    solve_forward,
)
from repro.verify.taint import ProjectIndex, TaintAnalysis, TaintRules


def _cfg(src: str):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0], "f")


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------

def _reaching_at_exit(src, parameters=()):
    cfg = _cfg(src)
    rd = ReachingDefinitions(cfg, parameters=parameters)
    states = rd.solve()
    in_state, _ = states[cfg.exit]
    return {(d.name, d.line) for d in in_state}


def test_straight_line_kills_previous_definition():
    reaching = _reaching_at_exit("""
        def f():
            x = 1
            x = 2
            y = 3
    """)
    names = {}
    for name, line in reaching:
        names.setdefault(name, set()).add(line)
    assert len(names["x"]) == 1  # second definition killed the first
    assert len(names["y"]) == 1


def test_branches_merge_both_definitions():
    reaching = _reaching_at_exit("""
        def f(a):
            if a:
                x = 1
            else:
                x = 2
    """, parameters=("a",))
    x_lines = {line for name, line in reaching if name == "x"}
    assert len(x_lines) == 2  # both arms reach the join


def test_loop_body_definition_reaches_exit():
    reaching = _reaching_at_exit("""
        def f(a):
            x = 0
            while a:
                x = x + 1
    """, parameters=("a",))
    x_lines = {line for name, line in reaching if name == "x"}
    assert len(x_lines) == 2  # init and loop-carried definition


def test_parameters_are_entry_definitions():
    reaching = _reaching_at_exit("""
        def f(a, b):
            x = a
    """, parameters=("a", "b"))
    assert ("a", 0) in reaching and ("b", 0) in reaching


def test_assigned_names_covers_statement_forms():
    tree = ast.parse(textwrap.dedent("""
        x = 1
        y, (z, *rest) = v
        q += 1
        for i, j in pairs: pass
        with open('f') as fh: pass
        import os.path as osp
        from sys import argv
        def g(): pass
        class C: pass
    """))
    names = []
    for stmt in tree.body:
        names.extend(assigned_names(stmt))
    assert set(names) >= {"x", "y", "z", "rest", "q", "i", "j", "fh",
                          "osp", "argv", "g", "C"}


def test_solver_detects_nonmonotone_transfer():
    import pytest

    from repro.verify.dataflow import ForwardProblem

    class Oscillating(ForwardProblem):
        def __init__(self):
            self.flip = 0

        def bottom(self):
            return 0

        def entry_state(self):
            return 0

        def join(self, states):
            return max(states) if states else 0

        def transfer(self, cfg, block_id, state):
            self.flip += 1
            return self.flip  # never stabilizes

    cfg = _cfg("""
        def f(a):
            while a:
                a = a - 1
    """)
    with pytest.raises(RuntimeError, match="fixpoint"):
        solve_forward(cfg, Oscillating())


# ---------------------------------------------------------------------------
# hypothesis: taint reachability vs brute-force path enumeration
# ---------------------------------------------------------------------------

_RULES = TaintRules(source_fields=set(), source_calls=["get_secret"],
                    sinks=["emit"], sanitizers=["scrub"])

_VARS = ["v0", "v1", "v2", "v3"]


@st.composite
def taint_programs(draw):
    """(source lines, expected tainted-sink lines by brute force).

    Items: assignments from {source(), another var, scrub(var),
    constant}, sink calls, and one-level if/else around sub-sequences.
    Brute force enumerates every path and unions the verdicts —
    exactly the may-taint semantics the engine implements.
    """
    items = []
    for _ in range(draw(st.integers(2, 8))):
        kind = draw(st.sampled_from(
            ["source", "copy", "scrub", "const", "sink", "branch"]))
        dst = draw(st.sampled_from(_VARS))
        src_var = draw(st.sampled_from(_VARS))
        if kind == "branch":
            then_items = [draw(_flat_item()) for _ in
                          range(draw(st.integers(1, 2)))]
            else_items = [draw(_flat_item()) for _ in
                          range(draw(st.integers(0, 2)))]
            items.append(("branch", then_items, else_items))
        else:
            items.append((kind, dst, src_var))
    return items


@st.composite
def _flat_item(draw):
    kind = draw(st.sampled_from(["source", "copy", "scrub", "const",
                                 "sink"]))
    return (kind, draw(st.sampled_from(_VARS)),
            draw(st.sampled_from(_VARS)))


def _render(items):
    lines = ["def f(flag):"]

    def emit(item, indent):
        pad = "    " * indent
        kind = item[0]
        if kind == "branch":
            _, then_items, else_items = item
            lines.append(f"{pad}if flag:")
            for sub in then_items:
                emit(sub, indent + 1)
            if else_items:
                lines.append(f"{pad}else:")
                for sub in else_items:
                    emit(sub, indent + 1)
            return
        _, dst, src_var = item
        if kind == "source":
            lines.append(f"{pad}{dst} = get_secret()")
        elif kind == "copy":
            lines.append(f"{pad}{dst} = {src_var}")
        elif kind == "scrub":
            lines.append(f"{pad}{dst} = scrub({src_var})")
        elif kind == "const":
            lines.append(f"{pad}{dst} = 0")
        elif kind == "sink":
            lines.append(f"{pad}emit({src_var})")

    for item in items:
        emit(item, 1)
    lines.append("    return 0")
    return "\n".join(lines) + "\n"


def _brute_force_tainted_sinks(src):
    """Enumerate all paths; union the sink lines that saw the source."""
    tree = ast.parse(src)
    fn = tree.body[0]
    tainted_sinks = set()

    def run(stmts, state, paths):
        # `state`: var -> bool (tainted). Returns list of out-states.
        states = [dict(state)]
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                next_states = []
                for current in states:
                    next_states.extend(run(stmt.body, current, paths))
                    next_states.extend(run(stmt.orelse, current, paths))
                states = next_states
            elif isinstance(stmt, ast.Assign):
                dst = stmt.targets[0].id
                value = stmt.value
                for current in states:
                    if isinstance(value, ast.Call):
                        callee = value.func.id
                        if callee == "get_secret":
                            current[dst] = True
                        else:  # scrub
                            current[dst] = False
                    elif isinstance(value, ast.Name):
                        current[dst] = current.get(value.id, False)
                    else:
                        current[dst] = False
            elif isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Call):
                arg = stmt.value.args[0]
                for current in states:
                    if current.get(arg.id, False):
                        tainted_sinks.add(stmt.value.lineno)
        return states

    run(fn.body, {}, [])
    return tainted_sinks


def _engine_tainted_sinks(src):
    modules = {"m.py": ast.parse(src)}
    analysis = TaintAnalysis(modules, _RULES, ProjectIndex(modules))
    return {d.location.line for d in analysis.run()
            if d.code in ("REP401", "REP402")}


@settings(max_examples=100, deadline=None)
@given(taint_programs())
def test_taint_matches_brute_force_path_walk(items):
    src = _render(items)
    assert _engine_tainted_sinks(src) == _brute_force_tainted_sinks(src)
