"""REP5xx parallel-safety: shipped functions vs module-level state."""

import ast
import textwrap

from repro.verify.lint import lint_source
from repro.verify.parallel_rules import ParallelSafetyAnalysis
from repro.verify.taint import ProjectIndex


def _findings(sources):
    modules = {rel: ast.parse(textwrap.dedent(text))
               for rel, text in sources.items()}
    analysis = ParallelSafetyAnalysis(modules, ProjectIndex(modules))
    return analysis.run()


# ---------------------------------------------------------------------------
# REP501: module-level mutable state mutated in a shipped function
# ---------------------------------------------------------------------------

def test_shipped_function_mutating_global_is_flagged():
    findings = _findings({"m.py": """
        _CACHE = {}

        def work(item):
            _CACHE[item] = 1
            return item

        def run(executor, items):
            return executor.map_tasks(work, items)
    """})
    assert [d.code for d in findings] == ["REP501"]
    finding = findings[0]
    assert "_CACHE" in finding.message
    assert finding.location.symbol == "run"
    notes = [step.note for step in finding.trace]
    assert any("shipped to workers" in note for note in notes)


def test_transitive_global_mutation_is_found_across_modules():
    findings = _findings({
        "util.py": """
            _SEEN = []

            def record(item):
                _SEEN.append(item)
        """,
        "tasks.py": """
            from repro.util import record

            def work(item):
                record(item)
                return item

            def run(executor, items):
                return executor.submit(work, items)
        """,
    })
    assert [d.code for d in findings] == ["REP501"]
    notes = [step.note for step in findings[0].trace]
    assert any("record" in note for note in notes)


def test_local_mutation_is_fine():
    findings = _findings({"m.py": """
        def work(item):
            cache = {}
            cache[item] = 1
            return cache

        def run(executor, items):
            return executor.map_tasks(work, items)
    """})
    assert findings == []


def test_global_rebind_is_flagged():
    findings = _findings({"m.py": """
        _TOTAL = 0

        def work(item):
            global _TOTAL
            _TOTAL += item
            return item

        def run(executor, items):
            return executor.submit(work, items)
    """})
    assert [d.code for d in findings] == ["REP501"]


# ---------------------------------------------------------------------------
# REP502: nested functions cannot be pickled to workers
# ---------------------------------------------------------------------------

def test_nested_function_shipped_is_flagged():
    findings = _findings({"m.py": """
        def run(executor, items, scale):
            def work(item):
                return item * scale
            return executor.map_tasks(work, items)
    """})
    assert [d.code for d in findings] == ["REP502"]
    assert "nested" in findings[0].message


def test_module_level_function_is_not_a_closure():
    findings = _findings({"m.py": """
        def work(item):
            return item + 1

        def run(executor, items):
            return executor.map_tasks(work, items)
    """})
    assert findings == []


# ---------------------------------------------------------------------------
# REP503: import-scope RNG / lock objects across workers
# ---------------------------------------------------------------------------

def test_import_scope_lock_use_is_flagged():
    findings = _findings({"m.py": """
        import threading

        _LOCK = threading.Lock()

        def work(item):
            with _LOCK:
                return item

        def run(executor, items):
            return executor.submit(work, items)
    """})
    assert [d.code for d in findings] == ["REP503"]
    assert "_LOCK" in findings[0].message


def test_import_scope_rng_use_is_flagged():
    findings = _findings({"m.py": """
        import random

        _RNG = random.Random(0)

        def work(item):
            return _RNG.random() + item

        def run(executor, items):
            return executor.map_tasks(work, items)
    """})
    assert [d.code for d in findings] == ["REP503"]


# ---------------------------------------------------------------------------
# ship-site shapes
# ---------------------------------------------------------------------------

def test_taskgraph_add_is_a_ship_site():
    findings = _findings({"m.py": """
        _STATE = {}

        def work(item):
            _STATE[item] = True

        def build(graph, items):
            graph.add("stage", work, items)
    """})
    assert [d.code for d in findings] == ["REP501"]


def test_set_add_is_not_a_ship_site():
    findings = _findings({"m.py": """
        _STATE = {}

        def work(item):
            _STATE[item] = True

        def build(seen):
            seen.add(work(1))
    """})
    assert findings == []


def test_partial_wrapping_is_unwrapped():
    findings = _findings({"m.py": """
        from functools import partial

        _STATE = []

        def work(scale, item):
            _STATE.append(item)
            return item * scale

        def run(executor, items):
            return executor.map_tasks(partial(work, 2), items)
    """})
    assert [d.code for d in findings] == ["REP501"]


def test_rep501_suppression_via_lint_engine():
    source = textwrap.dedent("""
        _CACHE = {}

        def work(item):
            _CACHE[item] = 1
            return item

        def run(executor, items):
            return executor.map_tasks(work, items)  # rep: ignore[REP501]
    """)
    assert lint_source(source, "parallel/m.py") == []
