"""REP403: federation boundary sinks in the privacy taint analysis.

Satellite of the federation PR: any ``SiteGateway`` send API or
release-envelope constructor is a *boundary* sink — a raw
``src_ip``/``dst_ip``/``payload`` value reaching one without a
``repro.privacy`` sanitizer is a cross-site leak, reported under its
own code (REP403) so the finding reads as "left the campus", not just
"hit a file".  The dogfood test pins the new subsystem itself clean.
"""

import ast
import textwrap

from repro.verify.lint import LintConfig, lint_package
from repro.verify.taint import ProjectIndex, TaintAnalysis, TaintRules


def _taint_findings(sources, rules=None, package="repro"):
    modules = {rel: ast.parse(textwrap.dedent(text))
               for rel, text in sources.items()}
    analysis = TaintAnalysis(modules, rules or TaintRules(),
                             ProjectIndex(modules, package=package))
    return analysis.run()


_BOUNDARY_LEAK = """
    def publish(gateway, records, query):
        for record in records:
            gateway.send_histogram(query, record.src_ip, 0.1)
"""

_ENVELOPE_LEAK = """
    def wrap(record):
        return HistogramRelease(site="a", fld="src_ip",
                                bins=record.src_ip, epsilon=0.1,
                                suppressed_bins=0)
"""

_SANITIZED = """
    def publish(gateway, records, query, cryptopan):
        for record in records:
            pseudonym = cryptopan.anonymize(record.src_ip)
            gateway.send_histogram(query, pseudonym, 0.1)
"""

_INTERPROCEDURAL = """
    def publish(gateway, record, query):
        ship(gateway, record.dst_ip, query)

    def ship(gateway, value, query):
        gateway.send_heavy_hitters(query, value, 8, 0.1)
"""


def test_raw_field_into_gateway_send_is_rep403():
    findings = _taint_findings({"federation/x.py": _BOUNDARY_LEAK})
    assert [d.code for d in findings] == ["REP403"]
    finding = findings[0]
    assert "crosses the federation boundary" in finding.message
    assert "send_histogram" in finding.message
    notes = [step.note for step in finding.trace]
    assert any("src_ip" in note for note in notes)


def test_raw_field_into_release_envelope_is_rep403():
    findings = _taint_findings({"federation/y.py": _ENVELOPE_LEAK})
    assert [d.code for d in findings] == ["REP403"]
    assert "HistogramRelease" in findings[0].message


def test_sanitized_flow_is_clean():
    assert _taint_findings({"federation/z.py": _SANITIZED}) == []


def test_leak_through_helper_is_still_caught():
    findings = _taint_findings({"federation/w.py": _INTERPROCEDURAL})
    codes = {d.code for d in findings}
    # the helper's call site is REP403 (direct) or REP402 (via the
    # parameter-to-sink summary) — either way the leak is loud
    assert codes & {"REP402", "REP403"}


def test_boundary_sinks_configurable():
    config = LintConfig(taint_boundary_sinks=["*.publish_upstream"])
    rules = config.taint_rules()
    assert rules.is_boundary_sink("gateway.publish_upstream")
    assert not rules.is_boundary_sink("gateway.send_count")
    findings = _taint_findings(
        {"federation/custom.py": """
            def leak(gateway, record):
                gateway.publish_upstream(record.payload)
         """},
        rules=rules)
    assert [d.code for d in findings] == ["REP403"]


def test_dogfood_federation_subsystem_is_clean():
    """The shipped gateway/coordinator pass their own boundary lint."""
    report = lint_package()
    rep4xx = [d for d in report.diagnostics
              if d.code.startswith("REP4")]
    assert rep4xx == [], [str(d) for d in rep4xx]
    assert report.ok
