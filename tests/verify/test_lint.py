"""AST lint: rule units on synthetic modules + the repo-wide gate."""

import textwrap
from pathlib import Path

from repro.verify.lint import (
    LintConfig,
    lint_package,
    lint_path,
    lint_source,
)


def _lint(source, rel_path="netsim/mod.py", config=None):
    return lint_source(textwrap.dedent(source), rel_path,
                       config or LintConfig())


class TestMutableDefaults:
    def test_list_default_flagged(self):
        findings = _lint("def f(x=[]):\n    return x\n")
        assert [d.code for d in findings] == ["REP301"]

    def test_dict_set_and_call_defaults_flagged(self):
        findings = _lint("""
            def f(a={}, b=set(), c=dict(), *, d=list()):
                return a, b, c, d
        """)
        assert [d.code for d in findings] == ["REP301"] * 4

    def test_immutable_defaults_clean(self):
        findings = _lint("""
            def f(a=None, b=3, c=(), d="x", e=frozenset()):
                return a, b, c, d, e
        """)
        assert findings == []

    def test_method_and_nested_functions_checked(self):
        findings = _lint("""
            class C:
                def m(self, x=[]):
                    def inner(y={}):
                        return y
                    return inner(x)
        """)
        assert len(findings) == 2


class TestBareExcept:
    def test_bare_except_flagged(self):
        findings = _lint("""
            try:
                pass
            except:
                pass
        """)
        assert [d.code for d in findings] == ["REP302"]

    def test_typed_except_clean(self):
        findings = _lint("""
            try:
                pass
            except (ValueError, KeyError):
                pass
            except Exception:
                pass
        """)
        assert findings == []


class TestUnseededRandom:
    def test_numpy_global_rng_flagged_in_scope(self):
        findings = _lint("import numpy as np\nx = np.random.rand(3)\n")
        assert [d.code for d in findings] == ["REP303"]

    def test_stdlib_random_flagged_in_scope(self):
        findings = _lint("import random\nx = random.randint(0, 9)\n",
                         rel_path="learning/mod.py")
        assert [d.code for d in findings] == ["REP303"]

    def test_default_rng_is_fine(self):
        findings = _lint("""
            import numpy as np
            rng = np.random.default_rng(7)
            x = rng.normal()
            g = np.random.Generator(np.random.PCG64(7))
        """)
        assert findings == []

    def test_out_of_scope_module_not_checked(self):
        findings = _lint("import numpy as np\nx = np.random.rand(3)\n",
                         rel_path="analysis/mod.py")
        assert findings == []


class TestWallClock:
    def test_time_time_flagged_in_simulator_code(self):
        findings = _lint("import time\nt = time.time()\n")
        assert [d.code for d in findings] == ["REP304"]

    def test_perf_counter_and_monotonic_fine(self):
        findings = _lint("""
            import time
            a = time.perf_counter()
            b = time.monotonic()
        """)
        assert findings == []

    def test_out_of_scope_time_time_allowed(self):
        findings = _lint("import time\nt = time.time()\n",
                         rel_path="analysis/mod.py")
        assert findings == []


class TestObsClock:
    def test_every_wallclock_read_flagged_in_obs(self):
        findings = _lint("""
            import time
            a = time.time()
            b = time.monotonic()
            c = time.perf_counter()
            d = time.perf_counter_ns()
        """, rel_path="obs/tracing.py")
        assert [d.code for d in findings] == ["REP306"] * 4

    def test_injectable_clock_is_clean(self):
        findings = _lint("""
            def span(self):
                return self.clock.now()
        """, rel_path="obs/tracing.py")
        assert findings == []

    def test_out_of_scope_monotonic_allowed(self):
        # chaos' MonotonicClock wraps the wall clock on purpose: it IS
        # the injectable boundary obs code reads through.
        findings = _lint("import time\nt = time.monotonic()\n",
                         rel_path="chaos/resilience.py")
        assert findings == []

    def test_scope_configurable_from_pyproject_key(self):
        config = LintConfig(obs_clock_scope=["telemetry"])
        findings = _lint("import time\nt = time.monotonic()\n",
                         rel_path="telemetry/mod.py", config=config)
        assert [d.code for d in findings] == ["REP306"]


class TestParallelSubmissions:
    def test_lambda_in_submit_flagged(self):
        findings = _lint("pool.submit(lambda: work())\n",
                         rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP305"]

    def test_lambda_in_map_tasks_flagged(self):
        findings = _lint(
            "executor.map_tasks(lambda x: x + 1, tasks)\n",
            rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP305"]

    def test_applies_everywhere_not_just_scoped_packages(self):
        findings = _lint("self._pool.submit(lambda: 1)\n",
                         rel_path="whatever/mod.py")
        assert [d.code for d in findings] == ["REP305"]

    def test_module_level_function_submission_clean(self):
        findings = _lint("""
            executor.map_tasks(kernel, tasks)
            pool.submit(kernel, shipment, time_range)
        """, rel_path="analysis/mod.py")
        assert findings == []

    def test_lambdas_elsewhere_are_not_flagged(self):
        findings = _lint("""
            items.sort(key=lambda x: x.rid)
            plain_submit = submit(lambda: 1)
            other.map(lambda x: x, xs)
        """, rel_path="analysis/mod.py")
        assert findings == []


class TestQueryInternals:
    def test_scan_internal_call_flagged_outside_planner(self):
        findings = _lint("""
            from repro.datastore.query import _scan_segment

            def peek(segment, query):
                return _scan_segment(segment, query)
        """, rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP307"]

    def test_attribute_chain_call_flagged(self):
        findings = _lint("""
            import repro.datastore.query as q

            def peek(cols, tr, where):
                return q.columnar_positions(cols, tr, where)
        """, rel_path="learning/mod.py")
        assert [d.code for d in findings] == ["REP307"]

    def test_planner_and_executor_modules_allowed(self):
        source = """
            def execute(segment, query):
                return _scan_segment(segment, query)
        """
        for rel_path in ("datastore/query.py", "datastore/planner.py",
                         "parallel/kernels.py"):
            assert _lint(source, rel_path=rel_path) == []

    def test_public_query_api_is_clean(self):
        findings = _lint("""
            from repro.datastore.query import execute_query

            def fetch(store, query):
                return execute_query(store, query)
        """, rel_path="analysis/mod.py")
        assert findings == []

    def test_scope_configurable_from_pyproject_key(self):
        config = LintConfig(query_internal_scope=["analysis"])
        findings = _lint(
            "def f(s, q):\n    return _scan_segment(s, q)\n",
            rel_path="analysis/mod.py", config=config)
        assert findings == []

    def test_inline_suppression(self):
        findings = _lint(
            "def f(s, q):\n"
            "    return _scan_segment(s, q)  # rep: ignore[REP307]\n",
            rel_path="analysis/mod.py")
        assert findings == []


class TestSegmentMutation:
    def test_segments_accessor_mutation_flagged_outside_scope(self):
        findings = _lint("""
            def drop_first(store):
                store.segments("packets").remove(
                    store.segments("packets")[0])
        """, rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP308"]

    def test_private_segments_map_mutation_flagged(self):
        findings = _lint("""
            def graft(store, segment):
                store._segments["packets"].append(segment)
        """, rel_path="capture/mod.py")
        assert [d.code for d in findings] == ["REP308"]

    def test_every_list_mutator_flagged(self):
        findings = _lint("""
            def churn(store, seg):
                segs = "unused"
                store.segments("packets").append(seg)
                store.segments("packets").extend([seg])
                store.segments("packets").insert(0, seg)
                store.segments("packets").pop()
                store.segments("packets").clear()
                store.segments("packets").sort()
                store.segments("packets").reverse()
        """, rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP308"] * 7

    def test_reads_and_sanctioned_api_are_clean(self):
        findings = _lint("""
            def inspect(store, collection, segment):
                n = len(store.segments(collection))
                first = store.segments(collection)[0]
                store.evict_segment(collection, segment)
                return n, first
        """, rel_path="analysis/mod.py")
        assert findings == []

    def test_unrelated_list_mutation_is_clean(self):
        findings = _lint("""
            def collect(rows):
                out = []
                out.append(rows)
                out.sort()
                return out
        """, rel_path="analysis/mod.py")
        assert findings == []

    def test_store_and_tiers_modules_allowed(self):
        source = """
            def _splice(self, remove, insert):
                self._segments["packets"].append(insert)
                self.segments("packets").remove(remove)
        """
        for rel_path in ("datastore/store.py", "datastore/tiers.py"):
            assert _lint(source, rel_path=rel_path) == []

    def test_scope_configurable_from_pyproject_key(self):
        config = LintConfig(segment_mutation_scope=["analysis"])
        findings = _lint(
            "def f(store, seg):\n"
            "    store.segments(\"packets\").append(seg)\n",
            rel_path="analysis/mod.py", config=config)
        assert findings == []

    def test_inline_suppression(self):
        findings = _lint(
            "def f(store, seg):\n"
            "    store.segments(\"p\").append(seg)"
            "  # rep: ignore[REP308]\n",
            rel_path="analysis/mod.py")
        assert findings == []


class TestExemptions:
    def test_specific_exemption_suppresses(self):
        config = LintConfig(exemptions={"netsim/mod.py:REP304"})
        findings = _lint("import time\nt = time.time()\n", config=config)
        assert findings == []

    def test_wildcard_exemption_suppresses_all(self):
        config = LintConfig(exemptions={"netsim/mod.py:*"})
        findings = _lint("def f(x=[]):\n    return time.time()\n",
                         config=config)
        assert findings == []

    def test_exemption_is_path_specific(self):
        config = LintConfig(exemptions={"netsim/other.py:REP304"})
        findings = _lint("import time\nt = time.time()\n", config=config)
        assert [d.code for d in findings] == ["REP304"]


class TestLintPath:
    def test_walks_tree_and_reports_relative_paths(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "netsim").mkdir(parents=True)
        (package / "netsim" / "bad.py").write_text(
            "import time\n\n\ndef f(x=[]):\n    return time.time()\n")
        (package / "clean.py").write_text("def f(x=None):\n    return x\n")
        report = lint_path(package, config=LintConfig())
        codes = sorted(d.code for d in report.diagnostics)
        assert codes == ["REP301", "REP304"]
        assert all(d.location.file == "netsim/bad.py"
                   for d in report.diagnostics)

    def test_unparseable_module_rep300(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "broken.py").write_text("def f(:\n")
        report = lint_path(package, config=LintConfig())
        assert [d.code for d in report.diagnostics] == ["REP300"]

    def test_excluded_directories_skipped(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / "__pycache__" / "junk.py").write_text("def f(x=[]): pass")
        report = lint_path(package, config=LintConfig())
        assert report.diagnostics == []


class TestConfig:
    def test_from_pyproject_reads_repo_config(self):
        import repro

        config = LintConfig.from_pyproject(
            Path(repro.__file__).resolve().parent)
        assert "netsim" in config.seeded_random_scope
        assert "netsim" in config.wallclock_scope

    def test_missing_pyproject_falls_back_to_defaults(self, tmp_path):
        config = LintConfig.from_pyproject(tmp_path)
        assert config.seeded_random_scope


class TestRepoGate:
    def test_repo_lint_is_green(self):
        """The tier-1 gate: the whole installed package passes the
        project AST rules (exemptions, if any, live in pyproject)."""
        report = lint_package()
        assert report.ok, "\n" + report.render_text()
        assert report.diagnostics == [], "\n" + report.render_text()


class TestSharedParseCache:
    def test_one_parse_per_file_across_all_rules(self, monkeypatch):
        """Regression: the engine parses each module exactly once and
        every rule family (patterns, taint, parallel) shares the
        :class:`ParsedModule` cache."""
        import ast as ast_module

        from repro.verify.lint import LintEngine

        real_parse = ast_module.parse
        parsed = []

        def spy(source, *args, **kwargs):
            parsed.append(kwargs.get("filename")
                          or (args[0] if args else "<unknown>"))
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(ast_module, "parse", spy)
        sources = {
            "pkg/a.py": "def f(r, out):\n    out.write(r.src_ip)\n",
            "pkg/b.py": "_C = {}\n\ndef g(i):\n    _C[i] = 1\n\n"
                        "def run(ex, items):\n"
                        "    return ex.map_tasks(g, items)\n",
            "pkg/c.py": "def h(x=[]):\n    return x\n",
        }
        engine = LintEngine(LintConfig(taint_exempt_scope=[]),
                            use_baseline=False)
        report = engine.run_sources(sources)
        # every rule family found its finding off the shared trees...
        assert {d.code for d in report.diagnostics} == \
            {"REP401", "REP501", "REP301"}
        # ...and each file was parsed exactly once
        assert sorted(parsed) == sorted(sources)


class TestInlineSuppressions:
    def test_bare_ignore_suppresses_any_code(self):
        findings = _lint(
            "def f(x=[]):  # rep: ignore\n    return x\n")
        assert findings == []

    def test_listed_code_suppresses_only_that_code(self):
        findings = _lint(
            "import time\n"
            "t = time.time()  # rep: ignore[REP304]\n")
        assert findings == []

    def test_wrong_code_does_not_suppress(self):
        findings = _lint(
            "import time\n"
            "t = time.time()  # rep: ignore[REP301]\n")
        assert [d.code for d in findings] == ["REP304"]

    def test_suppressed_count_lands_in_report(self):
        from repro.verify.lint import LintEngine

        engine = LintEngine(LintConfig(), use_baseline=False)
        report = engine.run_sources({
            "netsim/m.py": "def f(x=[]):  # rep: ignore[REP301]\n"
                           "    return x\n"})
        assert report.diagnostics == []
        assert report.suppressed == 1


class TestBaseline:
    def _config(self, tmp_path):
        return LintConfig(taint_exempt_scope=[], config_dir=tmp_path,
                          baseline="baseline.json")

    def test_baselined_finding_is_filtered_and_counted(self, tmp_path):
        from repro.verify.lint import LintEngine, write_baseline

        config = self._config(tmp_path)
        source = "def f(r, out):\n    out.write(r.src_ip)\n"
        noisy = LintEngine(config, use_baseline=False).run_sources(
            {"m.py": source})
        assert len(noisy.diagnostics) == 1
        write_baseline(noisy.diagnostics, config.baseline_path())

        gated = LintEngine(config).run_sources({"m.py": source})
        assert gated.diagnostics == []
        assert gated.baselined == 1
        assert gated.ok

    def test_new_finding_still_fails_the_gate(self, tmp_path):
        from repro.verify.lint import LintEngine, write_baseline

        config = self._config(tmp_path)
        old = "def f(r, out):\n    out.write(r.src_ip)\n"
        noisy = LintEngine(config, use_baseline=False).run_sources(
            {"m.py": old})
        write_baseline(noisy.diagnostics, config.baseline_path())

        grown = old + "\ndef g(r):\n    print(r.dst_ip)\n"
        gated = LintEngine(config).run_sources({"m.py": grown})
        assert [d.code for d in gated.diagnostics] == ["REP401"]
        assert gated.diagnostics[0].location.symbol == "g"
        assert gated.baselined == 1

    def test_fingerprint_survives_line_drift(self, tmp_path):
        from repro.verify.lint import LintEngine, write_baseline

        config = self._config(tmp_path)
        source = "def f(r, out):\n    out.write(r.src_ip)\n"
        noisy = LintEngine(config, use_baseline=False).run_sources(
            {"m.py": source})
        write_baseline(noisy.diagnostics, config.baseline_path())

        shifted = "import os\n\n\n" + source  # finding moves down 3 lines
        gated = LintEngine(config).run_sources({"m.py": shifted})
        assert gated.diagnostics == []
        assert gated.baselined == 1

    def test_update_baseline_preserves_justifications(self, tmp_path):
        import json

        from repro.verify.lint import (
            LintEngine,
            load_baseline,
            write_baseline,
        )

        config = self._config(tmp_path)
        source = "def f(r, out):\n    out.write(r.src_ip)\n"
        report = LintEngine(config, use_baseline=False).run_sources(
            {"m.py": source})
        path = config.baseline_path()
        write_baseline(report.diagnostics, path)

        payload = json.loads(path.read_text())
        assert payload["entries"][0]["justification"].startswith("TODO")
        payload["entries"][0]["justification"] = "raw export by design"
        path.write_text(json.dumps(payload))

        write_baseline(report.diagnostics, path,
                       previous=load_baseline(path))
        assert json.loads(path.read_text())["entries"][0][
            "justification"] == "raw export by design"


class TestJsonDiagnostics:
    def test_schema_and_flow_trace_round_trip(self):
        import json

        from repro.verify.lint import LintEngine

        engine = LintEngine(LintConfig(taint_exempt_scope=[]),
                            use_baseline=False)
        report = engine.run_sources(
            {"m.py": "def f(r, out):\n    out.write(r.src_ip)\n"})
        payload = json.loads(report.render_json())
        assert payload["schema"] == "repro.diagnostics/v1"
        assert payload["ok"] is False
        assert set(payload["counts"]) == {"error", "warning", "info"}
        diagnostic = payload["diagnostics"][0]
        assert diagnostic["code"] == "REP401"
        assert diagnostic["severity"] == "error"
        assert diagnostic["location"] == {"file": "m.py", "line": 2,
                                          "symbol": "f"}
        trace = diagnostic["trace"]
        assert len(trace) >= 2
        assert {"file", "line", "note"} <= set(trace[0])


class TestCommittedBaseline:
    def test_repo_baseline_entries_are_justified(self):
        """Every committed exemption carries a real justification."""
        import json

        import repro

        repo_root = Path(repro.__file__).resolve().parents[2]
        baseline = repo_root / "lint-baseline.json"
        assert baseline.is_file()
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        for entry in payload["entries"]:
            assert entry["justification"]
            assert not entry["justification"].startswith("TODO")


class TestFluidHotPath:
    def test_packet_record_construction_flagged_in_fluid(self):
        findings = _lint("""
            from repro.netsim.packets import PacketRecord

            def emit(ts):
                return PacketRecord(timestamp=ts)
        """, rel_path="netsim/fluid.py")
        assert [d.code for d in findings] == ["REP309"]

    def test_iter_records_flagged_in_fluid(self):
        findings = _lint("""
            def drain(batch):
                return list(batch.iter_records())
        """, rel_path="netsim/fluid.py")
        assert [d.code for d in findings] == ["REP309"]

    def test_scalar_record_helpers_flagged(self):
        findings = _lint("""
            def slow(batch, packets, flow):
                a = batch.record(0)
                b = batch.from_records(packets)
                c = synthesize_packets(flow)
                return a, b, c
        """, rel_path="netsim/fluid.py")
        assert [d.code for d in findings] == ["REP309"] * 3

    def test_columnar_construction_is_clean(self):
        findings = _lint("""
            import numpy as np
            from repro.netsim.packets import DictColumn, PacketColumns

            def emit(ts):
                return PacketColumns.from_arrays(
                    timestamp=ts,
                    direction=DictColumn(np.zeros(1, dtype=np.int64),
                                         ["in"]))
        """, rel_path="netsim/fluid.py")
        assert findings == []

    def test_other_modules_out_of_scope(self):
        source = """
            def rows(batch):
                return list(batch.iter_records())
        """
        for rel_path in ("datastore/store.py", "capture/engine.py",
                         "netsim/network.py"):
            assert _lint(source, rel_path=rel_path) == []

    def test_scope_configurable_from_pyproject_key(self):
        config = LintConfig(fluid_hot_scope=["capture/columnar.py"])
        source = "def f(b):\n    return b.iter_records()\n"
        assert [d.code for d in
                _lint(source, rel_path="capture/columnar.py",
                      config=config)] == ["REP309"]
        assert _lint(source, rel_path="netsim/fluid.py",
                     config=config) == []

    def test_inline_suppression(self):
        findings = _lint(
            "def f(b):\n"
            "    return b.iter_records()  # rep: ignore[REP309]\n",
            rel_path="netsim/fluid.py")
        assert findings == []
