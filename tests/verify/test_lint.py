"""AST lint: rule units on synthetic modules + the repo-wide gate."""

import textwrap
from pathlib import Path

from repro.verify.lint import (
    LintConfig,
    lint_package,
    lint_path,
    lint_source,
)


def _lint(source, rel_path="netsim/mod.py", config=None):
    return lint_source(textwrap.dedent(source), rel_path,
                       config or LintConfig())


class TestMutableDefaults:
    def test_list_default_flagged(self):
        findings = _lint("def f(x=[]):\n    return x\n")
        assert [d.code for d in findings] == ["REP301"]

    def test_dict_set_and_call_defaults_flagged(self):
        findings = _lint("""
            def f(a={}, b=set(), c=dict(), *, d=list()):
                return a, b, c, d
        """)
        assert [d.code for d in findings] == ["REP301"] * 4

    def test_immutable_defaults_clean(self):
        findings = _lint("""
            def f(a=None, b=3, c=(), d="x", e=frozenset()):
                return a, b, c, d, e
        """)
        assert findings == []

    def test_method_and_nested_functions_checked(self):
        findings = _lint("""
            class C:
                def m(self, x=[]):
                    def inner(y={}):
                        return y
                    return inner(x)
        """)
        assert len(findings) == 2


class TestBareExcept:
    def test_bare_except_flagged(self):
        findings = _lint("""
            try:
                pass
            except:
                pass
        """)
        assert [d.code for d in findings] == ["REP302"]

    def test_typed_except_clean(self):
        findings = _lint("""
            try:
                pass
            except (ValueError, KeyError):
                pass
            except Exception:
                pass
        """)
        assert findings == []


class TestUnseededRandom:
    def test_numpy_global_rng_flagged_in_scope(self):
        findings = _lint("import numpy as np\nx = np.random.rand(3)\n")
        assert [d.code for d in findings] == ["REP303"]

    def test_stdlib_random_flagged_in_scope(self):
        findings = _lint("import random\nx = random.randint(0, 9)\n",
                         rel_path="learning/mod.py")
        assert [d.code for d in findings] == ["REP303"]

    def test_default_rng_is_fine(self):
        findings = _lint("""
            import numpy as np
            rng = np.random.default_rng(7)
            x = rng.normal()
            g = np.random.Generator(np.random.PCG64(7))
        """)
        assert findings == []

    def test_out_of_scope_module_not_checked(self):
        findings = _lint("import numpy as np\nx = np.random.rand(3)\n",
                         rel_path="analysis/mod.py")
        assert findings == []


class TestWallClock:
    def test_time_time_flagged_in_simulator_code(self):
        findings = _lint("import time\nt = time.time()\n")
        assert [d.code for d in findings] == ["REP304"]

    def test_perf_counter_and_monotonic_fine(self):
        findings = _lint("""
            import time
            a = time.perf_counter()
            b = time.monotonic()
        """)
        assert findings == []

    def test_out_of_scope_time_time_allowed(self):
        findings = _lint("import time\nt = time.time()\n",
                         rel_path="analysis/mod.py")
        assert findings == []


class TestObsClock:
    def test_every_wallclock_read_flagged_in_obs(self):
        findings = _lint("""
            import time
            a = time.time()
            b = time.monotonic()
            c = time.perf_counter()
            d = time.perf_counter_ns()
        """, rel_path="obs/tracing.py")
        assert [d.code for d in findings] == ["REP306"] * 4

    def test_injectable_clock_is_clean(self):
        findings = _lint("""
            def span(self):
                return self.clock.now()
        """, rel_path="obs/tracing.py")
        assert findings == []

    def test_out_of_scope_monotonic_allowed(self):
        # chaos' MonotonicClock wraps the wall clock on purpose: it IS
        # the injectable boundary obs code reads through.
        findings = _lint("import time\nt = time.monotonic()\n",
                         rel_path="chaos/resilience.py")
        assert findings == []

    def test_scope_configurable_from_pyproject_key(self):
        config = LintConfig(obs_clock_scope=["telemetry"])
        findings = _lint("import time\nt = time.monotonic()\n",
                         rel_path="telemetry/mod.py", config=config)
        assert [d.code for d in findings] == ["REP306"]


class TestParallelSubmissions:
    def test_lambda_in_submit_flagged(self):
        findings = _lint("pool.submit(lambda: work())\n",
                         rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP305"]

    def test_lambda_in_map_tasks_flagged(self):
        findings = _lint(
            "executor.map_tasks(lambda x: x + 1, tasks)\n",
            rel_path="analysis/mod.py")
        assert [d.code for d in findings] == ["REP305"]

    def test_applies_everywhere_not_just_scoped_packages(self):
        findings = _lint("self._pool.submit(lambda: 1)\n",
                         rel_path="whatever/mod.py")
        assert [d.code for d in findings] == ["REP305"]

    def test_module_level_function_submission_clean(self):
        findings = _lint("""
            executor.map_tasks(kernel, tasks)
            pool.submit(kernel, shipment, time_range)
        """, rel_path="analysis/mod.py")
        assert findings == []

    def test_lambdas_elsewhere_are_not_flagged(self):
        findings = _lint("""
            items.sort(key=lambda x: x.rid)
            plain_submit = submit(lambda: 1)
            other.map(lambda x: x, xs)
        """, rel_path="analysis/mod.py")
        assert findings == []


class TestExemptions:
    def test_specific_exemption_suppresses(self):
        config = LintConfig(exemptions={"netsim/mod.py:REP304"})
        findings = _lint("import time\nt = time.time()\n", config=config)
        assert findings == []

    def test_wildcard_exemption_suppresses_all(self):
        config = LintConfig(exemptions={"netsim/mod.py:*"})
        findings = _lint("def f(x=[]):\n    return time.time()\n",
                         config=config)
        assert findings == []

    def test_exemption_is_path_specific(self):
        config = LintConfig(exemptions={"netsim/other.py:REP304"})
        findings = _lint("import time\nt = time.time()\n", config=config)
        assert [d.code for d in findings] == ["REP304"]


class TestLintPath:
    def test_walks_tree_and_reports_relative_paths(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "netsim").mkdir(parents=True)
        (package / "netsim" / "bad.py").write_text(
            "import time\n\n\ndef f(x=[]):\n    return time.time()\n")
        (package / "clean.py").write_text("def f(x=None):\n    return x\n")
        report = lint_path(package, config=LintConfig())
        codes = sorted(d.code for d in report.diagnostics)
        assert codes == ["REP301", "REP304"]
        assert all(d.location.file == "netsim/bad.py"
                   for d in report.diagnostics)

    def test_unparseable_module_rep300(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "broken.py").write_text("def f(:\n")
        report = lint_path(package, config=LintConfig())
        assert [d.code for d in report.diagnostics] == ["REP300"]

    def test_excluded_directories_skipped(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / "__pycache__" / "junk.py").write_text("def f(x=[]): pass")
        report = lint_path(package, config=LintConfig())
        assert report.diagnostics == []


class TestConfig:
    def test_from_pyproject_reads_repo_config(self):
        import repro

        config = LintConfig.from_pyproject(
            Path(repro.__file__).resolve().parent)
        assert "netsim" in config.seeded_random_scope
        assert "netsim" in config.wallclock_scope

    def test_missing_pyproject_falls_back_to_defaults(self, tmp_path):
        config = LintConfig.from_pyproject(tmp_path)
        assert config.seeded_random_scope


class TestRepoGate:
    def test_repo_lint_is_green(self):
        """The tier-1 gate: the whole installed package passes the
        project AST rules (exemptions, if any, live in pyproject)."""
        report = lint_package()
        assert report.ok, "\n" + report.render_text()
        assert report.diagnostics == [], "\n" + report.render_text()
