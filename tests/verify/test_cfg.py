"""CFG construction: hand-written shapes + hypothesis well-formedness.

The property suite generates random structured programs (nested
``if``/``while``/``for``/``try`` with ``return``/``raise``/``break``/
``continue``) and asserts the well-formedness contract
:meth:`repro.verify.cfg.CFG.validate` documents: symmetric edges,
single no-successor exit, no-predecessor entry, and every block either
reachable from the entry or reported by ``unreachable()``.
"""

import ast
import textwrap

from hypothesis import given, settings, strategies as st

from repro.verify.cfg import BranchStmt, build_cfg, function_cfgs


def _cfg(src: str):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0], "f")


def _stmt_lines(cfg):
    lines = set()
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            node = stmt.node if isinstance(stmt, BranchStmt) else stmt
            lines.add(node.lineno)
    return lines


# ---------------------------------------------------------------------------
# hand-written shapes
# ---------------------------------------------------------------------------

def test_linear_function():
    cfg = _cfg("""
        def f(a):
            x = a
            y = x + 1
            return y
    """)
    assert cfg.validate() == []
    assert cfg.unreachable() == []
    # entry -> body -> exit
    assert cfg.blocks[cfg.exit].succs == set()


def test_if_else_diamond():
    cfg = _cfg("""
        def f(a):
            if a:
                x = 1
            else:
                x = 2
            return x
    """)
    assert cfg.validate() == []
    header = next(b for b in cfg.blocks.values()
                  if any(isinstance(s, BranchStmt) for s in b.stmts))
    assert len(header.succs) == 2
    join = next(b for b in cfg.blocks.values()
                if len(b.preds) == 2 and b.id != cfg.exit)
    assert join is not None


def test_while_back_edge():
    cfg = _cfg("""
        def f(a):
            while a:
                a = a - 1
            return a
    """)
    assert cfg.validate() == []
    header = next(b for b in cfg.blocks.values()
                  if any(isinstance(s, BranchStmt) for s in b.stmts))
    # loop body loops back: the header is its own (transitive) successor
    assert header.id in {s for b in cfg.blocks.values()
                         if header.id in b.succs for s in [header.id]}
    assert len(header.preds) >= 2  # entry path + back edge


def test_break_exits_loop():
    cfg = _cfg("""
        def f(a):
            while a:
                if a > 2:
                    break
                a = a - 1
            return a
    """)
    assert cfg.validate() == []
    assert cfg.unreachable() == []


def test_continue_targets_header():
    cfg = _cfg("""
        def f(a):
            for i in a:
                if i:
                    continue
                a = i
            return a
    """)
    assert cfg.validate() == []


def test_try_except_edges():
    cfg = _cfg("""
        def f(a):
            try:
                x = a()
            except ValueError:
                x = 0
            return x
    """)
    assert cfg.validate() == []
    assert cfg.unreachable() == []


def test_code_after_return_is_reported_unreachable():
    cfg = _cfg("""
        def f(a):
            return a
            x = 1
    """)
    assert cfg.validate() == []
    dead = cfg.unreachable()
    assert dead, "statement after return must be reported unreachable"
    dead_stmts = [s for bid in dead for s in cfg.blocks[bid].stmts]
    assert any(isinstance(s, ast.Assign) for s in dead_stmts)  # `x = 1`


def test_module_cfg_and_function_cfgs():
    tree = ast.parse(textwrap.dedent("""
        def top(a):
            return a

        class C:
            def method(self):
                while self:
                    break
                return 1
    """))
    cfgs = function_cfgs(tree)
    assert set(cfgs) == {"top", "C.method"}
    for cfg in cfgs.values():
        assert cfg.validate() == []


def test_every_statement_lands_in_exactly_one_block():
    src = """
        def f(a, b):
            x = a
            if b:
                y = x
            else:
                y = 0
            for i in a:
                x = x + i
            return y
    """
    cfg = _cfg(src)
    counts = {}
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            node = stmt.node if isinstance(stmt, BranchStmt) else stmt
            counts[id(node)] = counts.get(id(node), 0) + 1
    assert all(n == 1 for n in counts.values())


# ---------------------------------------------------------------------------
# hypothesis: random structured programs stay well-formed
# ---------------------------------------------------------------------------

_MAX_DEPTH = 3


def _indent(lines):
    return ["    " + line for line in lines]


def _draw_block(draw, depth, in_loop, n_min=1, n_max=3):
    out = []
    for _ in range(draw(st.integers(n_min, n_max))):
        out.extend(_draw_stmt(draw, depth, in_loop))
    return out


def _draw_stmt(draw, depth, in_loop):
    options = ["assign", "assign", "pass", "return", "raise"]
    if depth < _MAX_DEPTH:
        options += ["if", "ifelse", "while", "for", "try", "tryfinally"]
    if in_loop:
        options += ["break", "continue"]
    kind = draw(st.sampled_from(options))
    var = f"x{draw(st.integers(0, 3))}"
    if kind == "assign":
        return [f"{var} = a"]
    if kind == "pass":
        return ["pass"]
    if kind == "return":
        return ["return a"]
    if kind == "raise":
        return ["raise ValueError(a)"]
    if kind == "break":
        return ["break"]
    if kind == "continue":
        return ["continue"]
    if kind == "if":
        return [f"if {var}:"] + _indent(_draw_block(draw, depth + 1,
                                                    in_loop))
    if kind == "ifelse":
        return ([f"if {var}:"] + _indent(_draw_block(draw, depth + 1,
                                                     in_loop))
                + ["else:"] + _indent(_draw_block(draw, depth + 1,
                                                  in_loop)))
    if kind == "while":
        return [f"while {var}:"] + _indent(_draw_block(draw, depth + 1,
                                                       True))
    if kind == "for":
        return [f"for it in {var}:"] + _indent(_draw_block(draw,
                                                           depth + 1,
                                                           True))
    if kind == "try":
        return (["try:"] + _indent(_draw_block(draw, depth + 1, in_loop))
                + ["except Exception:"]
                + _indent(_draw_block(draw, depth + 1, in_loop)))
    if kind == "tryfinally":
        return (["try:"] + _indent(_draw_block(draw, depth + 1, in_loop))
                + ["finally:"]
                + _indent(_draw_block(draw, depth + 1, in_loop)))
    raise AssertionError(kind)


@st.composite
def function_sources(draw):
    body = _draw_block(draw, 0, False, n_min=1, n_max=4)
    return "def f(a, b):\n" + "\n".join(_indent(body)) + "\n"


@settings(max_examples=80, deadline=None)
@given(function_sources())
def test_random_program_cfg_well_formed(src):
    tree = ast.parse(src)  # generated programs are valid by construction
    cfg = build_cfg(tree.body[0], "f")
    assert cfg.validate() == []

    reachable = cfg.reachable()
    dead = set(cfg.unreachable())
    # reachable-or-reported is total and disjoint
    assert reachable | dead == set(cfg.blocks)
    assert not (reachable & dead)

    # the single exit is reachable (conservative loop edges guarantee
    # a path even through `while`-only bodies)
    assert cfg.exit in reachable
    assert cfg.blocks[cfg.exit].succs == set()
    assert cfg.blocks[cfg.entry].preds == set()

    # rpo covers each reachable block exactly once, entry first
    order = cfg.rpo()
    assert sorted(order) == sorted(reachable)
    assert order[0] == cfg.entry


@settings(max_examples=60, deadline=None)
@given(function_sources())
def test_random_program_statements_partitioned(src):
    """Live statements land in exactly one block; none are lost."""
    tree = ast.parse(src)
    cfg = build_cfg(tree.body[0], "f")
    seen = {}
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            node = stmt.node if isinstance(stmt, BranchStmt) else stmt
            seen[id(node)] = seen.get(id(node), 0) + 1
    assert all(count == 1 for count in seen.values())
