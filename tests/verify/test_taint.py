"""REP4xx privacy taint: sources, sinks, sanitizers, summaries.

The acceptance fixture: a seeded raw-IP-to-export leak is flagged with
a full source->sink flow trace, and the *same* flow routed through the
repro.privacy Crypto-PAn sanitizer is not.
"""

import ast
import textwrap

from repro.verify.lint import LintConfig, lint_source
from repro.verify.taint import (
    ProjectIndex,
    TaintAnalysis,
    TaintRules,
    dotted_name,
)


def _taint_findings(sources, rules=None, package="repro"):
    modules = {rel: ast.parse(textwrap.dedent(text))
               for rel, text in sources.items()}
    analysis = TaintAnalysis(modules, rules or TaintRules(),
                             ProjectIndex(modules, package=package))
    return analysis.run()


# ---------------------------------------------------------------------------
# the seeded leak fixture (acceptance criteria)
# ---------------------------------------------------------------------------

_LEAK = """
    def export_flows(records, out):
        for record in records:
            line = record.src_ip
            out.write(line)
"""

_SANITIZED = """
    def export_flows(records, out, cryptopan):
        for record in records:
            line = cryptopan.anonymize(record.src_ip)
            out.write(line)
"""


def test_raw_ip_to_export_is_flagged_with_full_trace():
    findings = _taint_findings({"exporter.py": _LEAK})
    assert [d.code for d in findings] == ["REP401"]
    finding = findings[0]
    assert finding.location.file == "exporter.py"
    assert finding.location.symbol == "export_flows"
    assert "src_ip" in finding.message
    assert "out.write" in finding.message
    # the flow trace walks source -> sink
    notes = [step.note for step in finding.trace]
    assert any("src_ip" in note for note in notes)
    assert any("sink" in note for note in notes)
    assert finding.trace[0].line < finding.trace[-1].line or \
        len(finding.trace) >= 2


def test_same_flow_through_cryptopan_is_not_flagged():
    findings = _taint_findings({"exporter.py": _SANITIZED})
    assert findings == []


def test_payload_to_print_is_flagged():
    findings = _taint_findings({"m.py": """
        def dump(packet):
            print(packet.payload)
    """})
    assert [d.code for d in findings] == ["REP401"]


def test_comparison_declassifies():
    findings = _taint_findings({"m.py": """
        def is_internal(record):
            flag = record.src_ip == "10.0.0.1"
            print(flag)
            return flag
    """})
    assert findings == []


# ---------------------------------------------------------------------------
# inter-procedural summaries
# ---------------------------------------------------------------------------

def test_taint_through_helper_return():
    findings = _taint_findings({"m.py": """
        def pick(record):
            return record.src_ip

        def export(records, out):
            for record in records:
                out.write(pick(record))
    """})
    codes = [d.code for d in findings]
    assert "REP401" in codes
    flagged = next(d for d in findings if d.code == "REP401")
    assert flagged.location.symbol == "export"
    assert any("pick" in step.note for step in flagged.trace)


def test_taint_into_helper_sink_cross_module():
    findings = _taint_findings({
        "util/io.py": """
            def emit(value):
                print(value)
        """,
        "pipeline.py": """
            from repro.util.io import emit

            def run(record):
                emit(record.dst_ip)
        """,
    })
    codes = {d.code for d in findings}
    assert "REP402" in codes
    flagged = next(d for d in findings if d.code == "REP402")
    assert flagged.location.file == "pipeline.py"


def test_sanitizer_in_helper_clears_taint():
    findings = _taint_findings({"m.py": """
        def scrub_ip(pan, value):
            return pan.anonymize(value)

        def export(pan, record, out):
            out.write(scrub_ip(pan, record.src_ip))
    """})
    assert findings == []


def test_escaping_function_reference_carries_taint():
    findings = _taint_findings({"m.py": """
        def build(records, group_by):
            def key(record):
                return record.src_ip
            return group_by(key, records)

        def run(records, group_by):
            print(build(records, group_by))
    """})
    codes = [d.code for d in findings]
    assert "REP401" in codes


# ---------------------------------------------------------------------------
# container flows + configuration
# ---------------------------------------------------------------------------

def test_container_append_taints_receiver():
    findings = _taint_findings({"m.py": """
        def collect(records):
            acc = []
            for record in records:
                acc.append(record.src_ip)
            print(acc)
    """})
    assert [d.code for d in findings] == ["REP401"]


def test_custom_source_and_sink_patterns():
    rules = TaintRules(source_fields={"user_token"},
                       sinks=["telemetry.push"],
                       sanitizers=["redact"])
    findings = _taint_findings({"m.py": """
        import telemetry

        def leak(session):
            telemetry.push(session.user_token)

        def safe(session):
            telemetry.push(redact(session.user_token))
    """}, rules=rules)
    assert [d.code for d in findings] == ["REP401"]
    assert findings[0].location.symbol == "leak"


def test_exempt_scope_skips_privacy_layer():
    modules = {
        "privacy/pan.py": "def show(r):\n    print(r.src_ip)\n",
        "capture/tap.py": "def show(r):\n    print(r.src_ip)\n",
    }
    parsed = {rel: ast.parse(text) for rel, text in modules.items()}
    analysis = TaintAnalysis(parsed, TaintRules(), ProjectIndex(parsed),
                             exempt_scope=["privacy"])
    findings = analysis.run()
    assert [d.location.file for d in findings] == ["capture/tap.py"]


def test_dotted_name():
    expr = ast.parse("a.b.c", mode="eval").body
    assert dotted_name(expr) == "a.b.c"
    call = ast.parse("f(x).y", mode="eval").body
    assert dotted_name(call) is None


# ---------------------------------------------------------------------------
# integration with the lint engine (suppressions + config)
# ---------------------------------------------------------------------------

def test_inline_suppression_silences_taint_finding():
    source = textwrap.dedent("""
        def export(record, out):
            out.write(record.src_ip)  # rep: ignore[REP401]
    """)
    assert lint_source(source, "capture/export.py") == []


def test_inline_suppression_is_code_specific():
    source = textwrap.dedent("""
        def export(record, out):
            out.write(record.src_ip)  # rep: ignore[REP305]
    """)
    findings = lint_source(source, "capture/export.py")
    assert [d.code for d in findings] == ["REP401"]


def test_lint_config_overrides_taint_patterns():
    config = LintConfig(taint_source_fields=["secret_key"],
                        taint_exempt_scope=[])
    source = textwrap.dedent("""
        def export(record, out):
            out.write(record.src_ip)
            out.write(record.secret_key)
    """)
    findings = lint_source(source, "m.py", config=config)
    assert [d.code for d in findings] == ["REP401"]
    assert "secret_key" in findings[0].message
