"""XAI edge cases: degenerate trees, single-class data, empty paths."""

import numpy as np
import pytest

from repro.learning.models import DecisionTreeClassifier
from repro.xai import explain_decision, tree_to_rules
from repro.xai.distill import distill_tree
from repro.xai.fidelity import fidelity_report


def _stump_on_constant():
    """Tree fit on single-class data: one leaf, no splits."""
    X = np.ones((20, 3))
    y = np.zeros(20, dtype=int)
    return DecisionTreeClassifier().fit(X, y, n_classes=2), X


def test_single_leaf_tree_rules():
    tree, X = _stump_on_constant()
    rules = tree_to_rules(tree)
    assert len(rules) == 1
    assert rules.rules[0].conditions == ()
    assert "TRUE" in rules.rules[0].render()
    assert np.array_equal(rules.predict(X), tree.predict(X))


def test_single_leaf_evidence():
    tree, X = _stump_on_constant()
    evidence = explain_decision(tree, X[0])
    assert evidence.clauses == []
    assert evidence.confidence == 1.0
    assert evidence.strength > 0


def test_distill_constant_teacher():
    class ConstantTeacher:
        n_classes_ = 2

        def predict(self, X):
            return np.zeros(len(X), dtype=int)

    X = np.abs(np.random.default_rng(0).normal(size=(50, 4)))
    result = distill_tree(ConstantTeacher(), X, max_depth=3)
    assert result.train_fidelity == 1.0
    assert result.n_leaves == 1


def test_fidelity_report_without_proba():
    class NoProba:
        def predict(self, X):
            return np.zeros(len(X), dtype=int)

    X = np.zeros((10, 2))
    report = fidelity_report(NoProba(), NoProba(), X,
                             np.zeros(10, dtype=int))
    assert report.label_fidelity == 1.0
    # falls back to label fidelity when predict_proba is missing
    assert report.probability_fidelity == 1.0


def test_rules_on_deep_tree_stay_consistent():
    rng = np.random.default_rng(4)
    X = rng.uniform(size=(800, 4))
    y = ((X[:, 0] > 0.3) & (X[:, 1] < 0.7) |
         (X[:, 2] > 0.9)).astype(int)
    tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
    rules = tree_to_rules(tree)
    probe = rng.uniform(size=(300, 4))
    assert np.array_equal(rules.predict(probe), tree.predict(probe))
