"""VIPER policy extraction from a Q-learning teacher."""

import numpy as np
import pytest

from repro.learning.rl import (
    ClassifierPolicy,
    DdosMitigationEnv,
    GreedyQPolicy,
    QLearningAgent,
    evaluate_policy,
)
from repro.xai import viper_extract


@pytest.fixture(scope="module")
def trained_teacher():
    env = DdosMitigationEnv(episode_len=60, seed=1)
    agent = QLearningAgent(n_actions=env.action_space.n, seed=2)
    agent.train(env, episodes=150)
    return env, agent


def test_extracted_tree_is_small(trained_teacher):
    env, agent = trained_teacher
    result = viper_extract(agent, env, iterations=4, episodes_per_iter=8,
                           max_depth=3, seed=0)
    assert result.student.depth <= 3
    assert result.dataset_size > 0
    assert result.iterations == 4


def test_extraction_fidelity(trained_teacher):
    env, agent = trained_teacher
    result = viper_extract(agent, env, iterations=4, episodes_per_iter=8,
                           max_depth=3, seed=0)
    assert result.action_fidelity > 0.8


def test_student_performs_close_to_teacher(trained_teacher):
    env, agent = trained_teacher
    result = viper_extract(agent, env, iterations=5, episodes_per_iter=8,
                           max_depth=3, seed=0)
    teacher_eval = evaluate_policy(env, GreedyQPolicy(agent), episodes=15)
    student_eval = evaluate_policy(env, ClassifierPolicy(result.student),
                                   episodes=15)
    # allow modest degradation but not collapse
    assert student_eval.mean_reward > teacher_eval.mean_reward * 1.5 \
        if teacher_eval.mean_reward < 0 else True
    assert student_eval.attack_admitted_fraction < 0.5


def test_per_iteration_rewards_recorded(trained_teacher):
    env, agent = trained_teacher
    result = viper_extract(agent, env, iterations=3, episodes_per_iter=5,
                           seed=1)
    assert len(result.per_iteration_reward) == 3
