"""Rule lists and evidence lists."""

import numpy as np
import pytest

from repro.learning.models import DecisionTreeClassifier
from repro.xai import explain_decision, tree_to_rules


@pytest.fixture(scope="module")
def tree_task():
    rng = np.random.default_rng(9)
    X = rng.uniform(size=(500, 3))
    y = ((X[:, 0] > 0.5) & (X[:, 2] > 0.3)).astype(int)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    return tree, X, y


def test_rule_list_equivalent_to_tree(tree_task):
    tree, X, _ = tree_task
    rules = tree_to_rules(tree)
    assert np.array_equal(rules.predict(X), tree.predict(X))


def test_rule_count_equals_leaves(tree_task):
    tree, _, _ = tree_task
    rules = tree_to_rules(tree)
    assert len(rules) == tree.n_leaves


def test_rules_ordered_by_support(tree_task):
    tree, _, _ = tree_task
    rules = tree_to_rules(tree)
    supports = [r.support for r in rules.rules]
    assert supports == sorted(supports, reverse=True)


def test_rule_rendering_uses_names(tree_task):
    tree, _, _ = tree_task
    rules = tree_to_rules(tree, feature_names=["alpha", "beta", "gamma"],
                          class_names=["benign", "attack"])
    text = rules.render()
    assert "IF " in text and "THEN" in text
    assert ("alpha" in text or "gamma" in text)
    assert ("benign" in text or "attack" in text)
    assert "x0" not in text


def test_evidence_path_is_consistent(tree_task):
    tree, X, _ = tree_task
    x = X[0]
    evidence = explain_decision(tree, x,
                                feature_names=["alpha", "beta", "gamma"],
                                class_names=["benign", "attack"])
    predicted = int(tree.predict(x.reshape(1, -1))[0])
    assert evidence.predicted_class == predicted
    assert evidence.predicted_label in ("benign", "attack")
    assert 0.0 <= evidence.confidence <= 1.0
    # every clause must actually hold for x
    for clause in evidence.clauses:
        if clause.op == "<=":
            assert x[clause.feature] <= clause.threshold
        else:
            assert x[clause.feature] > clause.threshold


def test_evidence_renders_reasons(tree_task):
    tree, X, _ = tree_task
    evidence = explain_decision(tree, X[3],
                                feature_names=["alpha", "beta", "gamma"])
    text = evidence.render()
    assert "decision:" in text
    assert "because" in text


def test_evidence_strength_in_unit_interval(tree_task):
    tree, X, _ = tree_task
    for x in X[:50]:
        evidence = explain_decision(tree, x)
        assert 0.0 <= evidence.strength <= 1.0


def test_evidence_class_shift_sums_to_total_shift(tree_task):
    tree, X, _ = tree_task
    x = X[1]
    evidence = explain_decision(tree, x)
    path = tree.decision_path(x)
    cls = evidence.predicted_class

    def proba(node):
        total = node.value.sum()
        return node.value[cls] / total if total else 0.0

    total_shift = proba(path[-1]) - proba(path[0])
    assert sum(c.class_shift for c in evidence.clauses) == \
        pytest.approx(total_shift)
