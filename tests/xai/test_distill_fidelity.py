"""Model extraction and fidelity measurement."""

import numpy as np
import pytest

from repro.learning.models import (
    GradientBoostingClassifier,
    MLPClassifier,
    RandomForestClassifier,
)
from repro.xai import distill_tree, fidelity, fidelity_report, proba_fidelity


@pytest.fixture(scope="module")
def teacher_task():
    rng = np.random.default_rng(17)
    X = np.abs(rng.normal(size=(600, 6)))
    y = ((X[:, 0] > 1.0) | (X[:, 3] > 1.5)).astype(int)
    teacher = GradientBoostingClassifier(n_estimators=40).fit(X, y)
    return teacher, X, y


def test_student_closely_approximates_teacher(teacher_task):
    teacher, X, y = teacher_task
    result = distill_tree(teacher, X, max_depth=4, seed=1)
    assert result.train_fidelity > 0.9
    report = fidelity_report(teacher, result.student, X, y)
    assert report.label_fidelity > 0.9
    assert report.probability_fidelity > 0.7


def test_student_is_lightweight(teacher_task):
    teacher, X, _ = teacher_task
    result = distill_tree(teacher, X, max_depth=3, seed=1)
    assert result.depth <= 3
    assert result.n_leaves <= 8


def test_capacity_tradeoff(teacher_task):
    """Deeper students track the teacher at least as well."""
    teacher, X, _ = teacher_task
    shallow = distill_tree(teacher, X, max_depth=1, seed=1)
    deep = distill_tree(teacher, X, max_depth=6, seed=1)
    assert deep.train_fidelity >= shallow.train_fidelity


def test_synthetic_pool_size(teacher_task):
    teacher, X, _ = teacher_task
    result = distill_tree(teacher, X, synthetic_factor=2.0, seed=1)
    assert result.n_pool == pytest.approx(3 * len(X), abs=2)
    none = distill_tree(teacher, X, synthetic_factor=0.0, seed=1)
    assert none.n_pool == len(X)


def test_works_for_multiple_teacher_families():
    rng = np.random.default_rng(3)
    X = np.abs(rng.normal(size=(400, 4)))
    y = (X[:, 1] > 0.8).astype(int)
    for teacher_cls in (RandomForestClassifier, MLPClassifier):
        teacher = teacher_cls().fit(X, y)
        result = distill_tree(teacher, X, max_depth=3, seed=2)
        assert result.train_fidelity > 0.85, teacher_cls.__name__


def test_empty_input_rejected(teacher_task):
    teacher, _, _ = teacher_task
    with pytest.raises(ValueError):
        distill_tree(teacher, np.zeros((0, 6)))


def test_fidelity_functions():
    assert fidelity([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)
    assert fidelity([], []) == 0.0
    with pytest.raises(ValueError):
        fidelity([1, 0], [1])
    a = np.asarray([[0.9, 0.1], [0.2, 0.8]])
    assert proba_fidelity(a, a) == 1.0
    b = np.asarray([[0.1, 0.9], [0.8, 0.2]])
    assert proba_fidelity(a, b) == pytest.approx(1.0 - 0.7)


def test_fidelity_report_accuracy_gap(teacher_task):
    teacher, X, y = teacher_task
    result = distill_tree(teacher, X, max_depth=4, seed=1)
    report = fidelity_report(teacher, result.student, X, y)
    assert report.accuracy_gap == pytest.approx(
        report.teacher_accuracy - report.student_accuracy)
