"""Unit tests for the tiered store: policy, sealing, cold format,
registry resume, eviction, and the bounded ingest queue."""

import json

import numpy as np
import pytest

from repro.chaos.resilience import VirtualClock
from repro.datastore import DataStore, PersistenceError, Query
from repro.datastore.stats import SegmentStats
from repro.datastore.tiers import (
    ColdSegment, IngestQueue, StreamingIngestor, TieredDataStore,
    TieredShardedDataStore, TierPolicy, _stats_from_json, _stats_to_json,
)
from repro.netsim.packets import PacketRecord


def _packet(ts, i=0, proto=6, src="10.0.0.1"):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip="10.1.0.1", src_port=1000 + i,
        dst_port=80, protocol=proto, size=100 + i, payload_len=60,
        flags=2, ttl=64, payload=bytes([i % 251]) * (i % 5),
        flow_id=i % 7, app="web", label="benign", direction="in")


def _batch(n, t0=0.0, step=0.01):
    return [_packet(t0 + i * step, i) for i in range(n)]


def _dump(store):
    """Every stored packet, by value, in (time, rid) order."""
    result = store.query(Query(collection="packets"))
    return [(s.rid, s.record.timestamp, s.record.src_ip, s.record.dst_ip,
             s.record.src_port, s.record.dst_port, s.record.protocol,
             s.record.size, s.record.payload_len, s.record.flags,
             s.record.ttl, bytes(s.record.payload), s.record.flow_id,
             s.record.app, s.record.label, s.record.direction,
             dict(s.tags), s.label) for s in result]


SMALL = TierPolicy(memtable_records=16, warm_fanin=2,
                   warm_max_segments=2, cold_fanin=2)


# -- policy -----------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"memtable_records": 0},
    {"seal_age_s": 0.0},
    {"seal_age_s": -1.0},
    {"warm_fanin": 1},
    {"warm_max_segments": 0},
    {"cold_fanin": 1},
])
def test_policy_rejects_degenerate_values(kwargs):
    with pytest.raises(ValueError):
        TierPolicy(**kwargs)


# -- sealing ----------------------------------------------------------------

def test_memtable_rolls_over_at_capacity():
    store = TieredDataStore(policy=SMALL)
    store.ingest_packets(_batch(40))
    hot, warm, cold = store.tier_segments()
    assert len(hot) == 1 and len(hot[0]) == 8
    assert [len(s) for s in warm] == [16, 16]
    assert all(s.sealed for s in warm)
    assert not cold


def test_seal_hot_sorts_by_time_then_rid():
    store = TieredDataStore(policy=SMALL)
    # out-of-order timestamps, with ties
    pkts = [_packet(ts, i) for i, ts in enumerate([3.0, 1.0, 2.0, 1.0])]
    store.ingest_packets(pkts)
    store.seal_hot()
    _, warm, _ = store.tier_segments()
    rows = [(s.record.timestamp, s.rid) for s in warm[0].records]
    assert rows == sorted(rows)
    # rids are 1-based ingest order; the 1.0-timestamp tie keeps it
    assert [r for _, r in rows] == [2, 4, 3, 1]


def test_age_based_seal_uses_injected_clock():
    clock = VirtualClock()
    policy = TierPolicy(memtable_records=1000, seal_age_s=5.0)
    store = TieredDataStore(policy=policy, clock=clock)
    store.ingest_packets(_batch(3))
    assert not store.maybe_seal()
    clock.advance(6.0)
    store.ingest_packets(_batch(3, t0=10.0))
    hot, warm, _ = store.tier_segments()
    assert len(warm) == 1 and len(warm[0]) == 3
    assert len(hot) == 1 and len(hot[0]) == 3


def test_query_unaffected_by_seal_and_compaction():
    store = TieredDataStore(policy=SMALL)
    flat = DataStore()
    for b in (_batch(30, 0.0), _batch(30, 5.0), _batch(30, 2.5)):
        store.ingest_packets(b)
        flat.ingest_packets(b)
    q = Query(collection="packets", where={"protocol": 6},
              time_range=(1.0, 6.0))
    before = _dump(store)
    assert before == _dump(flat)
    store.seal_hot()
    store.compactor.run()
    assert _dump(store) == before
    assert [s.rid for s in store.query(q)] == [s.rid for s in flat.query(q)]


# -- cold format ------------------------------------------------------------

def test_cold_round_trip_and_reopen(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(50))
    before = _dump(store)
    store.flush_to_cold()
    _, warm, cold = store.tier_segments()
    assert not warm and cold
    assert _dump(store) == before

    reopened = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    assert _dump(reopened) == before


def test_cold_segment_reports_minmax_without_loading(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(20, t0=3.0))
    store.flush_to_cold()
    _, _, cold = store.tier_segments()
    assert min(s.min_time for s in cold) == pytest.approx(3.0)
    assert max(s.max_time for s in cold) == pytest.approx(3.0 + 19 * 0.01)
    for seg in cold:
        assert not seg.overlaps(100.0, 200.0)
        assert seg.overlaps(None, None)
        cols = seg.columns()
        assert cols._time_sorted is True
        assert "timestamp" in cols._minmax


def test_cold_segment_is_immutable(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(5))
    store.flush_to_cold()
    _, _, cold = store.tier_segments()
    with pytest.raises(RuntimeError):
        cold[0].append(None)
    with pytest.raises(RuntimeError):
        cold[0].append_batch([None])


def test_reopen_detects_corruption(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(20))
    store.flush_to_cold()
    victim = next((tmp_path / "cold").glob("seg-*/rids.npy"))
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF
    victim.write_bytes(bytes(blob))
    with pytest.raises(PersistenceError, match="checksum mismatch"):
        TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")


def test_reopen_clears_unregistered_debris(tmp_path):
    spill = tmp_path / "cold"
    store = TieredDataStore(policy=SMALL, spill_dir=spill)
    store.ingest_packets(_batch(20))
    before = _dump(store)
    store.flush_to_cold()
    (spill / "seg-99999999.tmp-123").mkdir()
    (spill / "seg-99999999.tmp-123" / "junk.npy").write_bytes(b"x")
    (spill / "stray.txt").write_text("leftover")
    reopened = TieredDataStore(policy=SMALL, spill_dir=spill)
    assert _dump(reopened) == before
    assert not (spill / "seg-99999999.tmp-123").exists()
    assert not (spill / "stray.txt").exists()


def test_reopen_resumes_id_counters(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(20))
    store.flush_to_cold()
    max_rid = max(r[0] for r in _dump(store))
    reopened = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    reopened.ingest_packets(_batch(5, t0=50.0))
    rids = [r[0] for r in _dump(reopened)]
    assert len(rids) == len(set(rids))
    assert all(r > max_rid for r in rids if r not in
               {x[0] for x in _dump(store)})


def test_stats_json_round_trip():
    store = DataStore(segment_capacity=32)
    store.ingest_packets(_batch(30))
    segment = store.segments("packets")[0]
    stats = segment.build_stats()
    restored = _stats_from_json(
        json.loads(json.dumps(_stats_to_json(stats))))
    assert isinstance(restored, SegmentStats)
    assert restored.n == stats.n
    for fld, col in stats.columns.items():
        other = restored.columns[fld]
        assert other.ndv == col.ndv
        assert other.counts == col.counts       # int keys survive
        assert other.topk == col.topk
        if col.cms is not None:
            assert np.array_equal(other.cms._table, col.cms._table)
        if col.hll is not None:
            assert np.array_equal(other.hll._registers,
                                  col.hll._registers)
        assert other.bloom is None              # dropped by design


def test_cold_stats_survive_spill_and_prune(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold",
                            stats_on_seal=True)
    store.ingest_packets(_batch(40))
    store.flush_to_cold()
    reopened = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    _, _, cold = reopened.tier_segments()
    assert all(s.stats() is not None for s in cold)
    answer = reopened.count_matching(
        Query(collection="packets", where={"protocol": 6}))
    assert answer.value == 40


# -- compactor --------------------------------------------------------------

def test_compactor_debt_ordering(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(80))
    store.seal_hot()
    kinds = [kind for kind, _ in store.compactor.debt()]
    assert kinds[0] == "warm-merge"
    done = store.compactor.run()
    assert "warm-merge" in done
    assert store.compactor.debt() == []


def test_compactor_spills_past_warm_cap(tmp_path):
    policy = TierPolicy(memtable_records=8, warm_fanin=8,
                        warm_max_segments=1, cold_fanin=2)
    store = TieredDataStore(policy=policy, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(40))
    before = _dump(store)
    done = store.compactor.run()
    assert "spill" in done
    _, warm, cold = store.tier_segments()
    assert len(warm) <= policy.warm_max_segments
    assert cold
    assert _dump(store) == before


def test_cold_merge_combines_segments(tmp_path):
    policy = TierPolicy(memtable_records=8, warm_fanin=8,
                        warm_max_segments=1, cold_fanin=2)
    store = TieredDataStore(policy=policy, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(48, t0=0.0))
    before = _dump(store)
    done = store.compactor.run()
    assert "cold-merge" in done
    _, _, cold = store.tier_segments()
    assert len(cold) < policy.cold_fanin or store.compactor.debt() == []
    assert _dump(store) == before
    # the merged directory set matches the registry exactly
    registry = json.loads(
        (tmp_path / "cold" / "registry.json").read_text())
    on_disk = sorted(p.name for p in (tmp_path / "cold").glob("seg-*"))
    assert sorted(registry["segments"]) == on_disk


def test_warm_merge_reuses_stats_blocks():
    store = TieredDataStore(policy=SMALL, stats_on_seal=True)
    store.ingest_packets(_batch(32))
    store.seal_hot()
    _, warm, _ = store.tier_segments()
    assert all(s.stats() is not None for s in warm)
    store.compactor.run()
    _, warm, _ = store.tier_segments()
    assert len(warm) == 1
    merged = warm[0].stats()
    assert merged is not None and merged.n == 32


# -- eviction ---------------------------------------------------------------

def test_evict_cold_segment_removes_directory(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(20))
    store.flush_to_cold()
    _, _, cold = store.tier_segments()
    victim = cold[0]
    store.evict_segment("packets", victim)
    assert not victim.directory.exists()
    registry = json.loads(
        (tmp_path / "cold" / "registry.json").read_text())
    assert victim.directory.name not in registry["segments"]
    reopened = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    assert len(_dump(reopened)) == len(_dump(store))


def test_retention_handles_cold_segments(tmp_path):
    from repro.datastore.retention import RetentionPolicy

    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(20, t0=0.0))
    store.flush_to_cold()
    store.ingest_packets(_batch(5, t0=100.0))
    report = RetentionPolicy(max_age_s=10.0).enforce(store, now=100.0)
    assert report.segments_evicted >= 1
    _, _, cold = store.tier_segments()
    assert not cold
    assert all(r[1] >= 100.0 for r in _dump(store))


# -- ingest queue -----------------------------------------------------------

def test_queue_rejects_whole_batches_at_capacity():
    queue = IngestQueue(capacity_records=10)
    assert queue.offer(_batch(6))
    assert not queue.offer(_batch(6))
    assert queue.offer(_batch(4))
    assert queue.depth == 10
    assert queue.accepted_records == 10
    assert queue.rejected_records == 6
    assert queue.rejected_batches == 1
    assert len(queue.take()) == 6
    assert len(queue.take()) == 4
    assert queue.take() is None
    assert queue.depth == 0


def test_queue_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        IngestQueue(capacity_records=0)


def test_streaming_ingestor_end_to_end(tmp_path):
    from repro.capture.engine import CaptureEngine

    engine = CaptureEngine()
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    ingestor = StreamingIngestor(store, engine=engine, queue_records=64)
    engine.ingest(_batch(50, t0=0.0))
    engine.ingest(_batch(50, t0=1.0))       # queue full: refused, accounted
    assert engine.stats.packets_backpressure_dropped == 50
    assert engine.stats.bytes_backpressure_dropped > 0
    ingestor.drain()
    assert ingestor.ingested_records == 50
    assert len(_dump(store)) == 50
    # queue freed: next batch flows through
    engine.ingest(_batch(20, t0=2.0))
    ingestor.drain()
    assert len(_dump(store)) == 70
    assert engine.stats.packets_backpressure_dropped == 50


# -- sharded ----------------------------------------------------------------

def test_sharded_tiered_store_matches_flat(tmp_path):
    flat = DataStore()
    store = TieredShardedDataStore(n_shards=4, policy=SMALL,
                                   spill_dir=tmp_path / "shards")
    for b in (_batch(40, 0.0), _batch(40, 5.0)):
        flat.ingest_packets(b)
        store.ingest_packets(b)
    store.seal_hot()
    store.compactor.run()
    store.flush_to_cold()
    assert _dump(store) == _dump(flat)
    reopened = TieredShardedDataStore(n_shards=4, policy=SMALL,
                                      spill_dir=tmp_path / "shards")
    assert _dump(reopened) == _dump(flat)
    reopened.ingest_packets(_batch(10, t0=20.0))
    rids = [r[0] for r in _dump(reopened)]
    assert len(rids) == len(set(rids))


def test_tier_summary_shape(tmp_path):
    store = TieredDataStore(policy=SMALL, spill_dir=tmp_path / "cold")
    store.ingest_packets(_batch(40))
    summary = store.tier_summary()
    assert set(summary) == {"hot", "warm", "cold", "compaction_debt"}
    assert summary["warm"]["records"] == 32
    store.flush_to_cold()
    summary = store.tier_summary()
    assert summary["cold"]["records"] == 40
    assert summary["hot"]["records"] == 0
