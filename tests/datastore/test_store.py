"""DataStore ingest, segments, transforms, summary."""

import pytest

from repro.capture.flows import FlowRecord
from repro.capture.metadata import MetadataExtractor
from repro.capture.sensors import LogRecord
from repro.datastore import DataStore, Query
from repro.netsim.packets import PacketRecord


def _packet(ts, src="9.9.9.9", dst="10.0.0.1", dport=4444, payload=b""):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip=dst, src_port=53, dst_port=dport,
        protocol=17, size=1400, payload_len=1372, flags=0, ttl=60,
        payload=payload, flow_id=1, app="dns", label="benign",
        direction="in",
    )


def _flow(first=0.0, last=1.0):
    return FlowRecord(src_ip="9.9.9.9", dst_ip="10.0.0.1", src_port=53,
                      dst_port=4444, protocol=17, first_seen=first,
                      last_seen=last)


def test_ingest_counts_and_summary():
    store = DataStore()
    assert store.ingest_packets([_packet(float(i)) for i in range(10)]) == 10
    assert store.ingest_flows([_flow()]) == 1
    store.ingest_log(LogRecord(timestamp=5.0, source="s", kind="k",
                               message="m"))
    summary = store.summary()
    assert summary["packets"]["records"] == 10
    assert summary["flows"]["records"] == 1
    assert summary["logs"]["records"] == 1
    assert summary["packets"]["min_time"] == 0.0
    assert summary["packets"]["max_time"] == 9.0
    assert store.bytes_estimate() > 0


def test_segments_seal_at_capacity():
    store = DataStore(segment_capacity=4)
    store.ingest_packets([_packet(float(i)) for i in range(10)])
    segments = store.segments("packets")
    assert len(segments) == 3
    assert segments[0].sealed and segments[1].sealed
    assert not segments[2].sealed


def test_metadata_attached_at_ingest():
    store = DataStore(metadata_extractor=MetadataExtractor())
    store.ingest_packets([_packet(0.0)])
    stored = store.query(Query(collection="packets"))[0]
    assert stored.tags["service"] == "dns"


def test_ingest_transform_rewrites():
    store = DataStore()

    def redact(collection, record, tags):
        record.src_ip = "0.0.0.0"
        return record, tags

    store.add_ingest_transform(redact)
    store.ingest_packets([_packet(0.0)])
    assert store.query(Query(collection="packets"))[0].record.src_ip == \
        "0.0.0.0"


def test_ingest_transform_drops():
    store = DataStore()
    store.add_ingest_transform(
        lambda c, r, t: (None, None) if c == "packets" else (r, t))
    assert store.ingest_packets([_packet(0.0)]) == 0
    assert store.ingest_flows([_flow()]) == 1


def test_unknown_collection_raises():
    store = DataStore()
    with pytest.raises(KeyError):
        store.segments("nonexistent")


def test_record_ids_unique_across_collections():
    store = DataStore()
    store.ingest_packets([_packet(0.0)])
    store.ingest_flows([_flow()])
    rid_a = store.query(Query(collection="packets"))[0].rid
    rid_b = store.query(Query(collection="flows"))[0].rid
    assert rid_a != rid_b


def test_time_span_empty_collection():
    store = DataStore()
    assert store.time_span("logs") == (None, None)
