"""The cost-based query planner: IR, pruning, ordering, and sketches.

Unit coverage for :mod:`repro.datastore.planner`: the EXPLAIN tree,
selectivity-ordered predicates, stats/shard/time pruning (and the
cases where pruning must *not* fire), the error-budget API, and the
sketch-backed approximate aggregates with their exact fallbacks.
"""

import pytest

from repro.capture.metadata import MetadataExtractor
from repro.datastore.planner import (
    GATHER_SELECTIVITY,
    ErrorBudget,
    execute_plan,
    plan_query,
    within,
)
from repro.datastore.query import Query, execute_query, execute_query_linear
from repro.datastore.store import DataStore, ShardedDataStore
from repro.netsim.packets import PacketRecord


def _packet(t, src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80,
            proto=6, flow=0, label=""):
    return PacketRecord(
        timestamp=t, src_ip=src, dst_ip=dst, src_port=sport,
        dst_port=dport, protocol=proto, size=100, payload_len=40,
        flags=0, ttl=64, payload=b"", flow_id=flow, app="web",
        label=label, direction="in")


def _store(packets, capacity=50, stats=True):
    store = DataStore(metadata_extractor=MetadataExtractor(),
                      segment_capacity=capacity)
    store.ingest_packets(packets)
    for segment in store.segments("packets"):
        if not segment.sealed:
            segment.seal()
    if stats:
        store.build_stats()
    return store


def _skewed_packets():
    """120 packets: dst_port 53 is rare (6 rows), protocol 6 is common."""
    packets = []
    for i in range(120):
        rare = i % 20 == 0
        packets.append(_packet(
            t=float(i), dport=53 if rare else 80, proto=6,
            src=f"10.0.{i % 4}.1", flow=i % 8))
    return packets


class TestPlanIR:
    def test_explain_tree_shape(self):
        store = _store(_skewed_packets(), capacity=40)
        plan = plan_query(store, Query(
            collection="packets", time_range=(10.0, 90.0),
            where={"dst_port": 53, "protocol": 6}))
        text = plan.explain()
        assert text.splitlines()[0].startswith("Merge ")
        assert "TimeSlice" in text
        assert "PredicateApply" in text
        assert "est_rows=" in text

    def test_actual_rows_filled_after_execution(self):
        store = _store(_skewed_packets(), capacity=40)
        query = Query(collection="packets", where={"dst_port": 53})
        plan = plan_query(store, query)
        assert plan.root.actual_rows is None
        records = execute_plan(store, plan)
        assert plan.root.actual_rows == len(records) == 6
        assert "actual_rows=" in plan.explain()

    def test_prune_accounting(self):
        store = _store(_skewed_packets(), capacity=40)
        plan = plan_query(store, Query(
            collection="packets", time_range=(1000.0, 2000.0)))
        assert plan.scanned == 0
        assert plan.pruned == {"time": 3}


class TestCostModel:
    def test_predicates_ordered_most_selective_first(self):
        store = _store(_skewed_packets(), capacity=200)
        plan = plan_query(store, Query(
            collection="packets",
            where={"protocol": 6, "dst_port": 53}))
        (sp,) = [p for p in plan.segment_plans if p.pruned is None]
        assert [fld for fld, _ in sp.where_items] == \
            ["dst_port", "protocol"]

    def test_gather_engages_on_selective_lead(self):
        store = _store(_skewed_packets(), capacity=200)
        sel = 6 / 120
        assert sel <= GATHER_SELECTIVITY
        plan = plan_query(store, Query(
            collection="packets",
            where={"protocol": 6, "dst_port": 53}))
        (sp,) = [p for p in plan.segment_plans if p.pruned is None]
        assert sp.gather
        single = plan_query(store, Query(
            collection="packets", where={"dst_port": 53}))
        (sp,) = [p for p in single.segment_plans if p.pruned is None]
        assert not sp.gather

    def test_unknown_fields_keep_declaration_order_last(self):
        store = _store(_skewed_packets(), capacity=200)
        plan = plan_query(store, Query(
            collection="packets",
            where={"size": 100, "dst_port": 53}))
        (sp,) = [p for p in plan.segment_plans if p.pruned is None]
        assert sp.where_items[0][0] == "dst_port"

    def test_no_stats_means_declaration_order(self):
        store = _store(_skewed_packets(), capacity=200, stats=False)
        plan = plan_query(store, Query(
            collection="packets",
            where={"protocol": 6, "dst_port": 53}))
        (sp,) = [p for p in plan.segment_plans if p.pruned is None]
        assert [fld for fld, _ in sp.where_items] == \
            ["protocol", "dst_port"]
        assert not sp.gather


class TestStatsPruning:
    def test_absent_value_prunes_every_segment(self):
        store = _store(_skewed_packets(), capacity=40)
        query = Query(collection="packets", where={"dst_port": 9999})
        plan = plan_query(store, query)
        assert plan.scanned == 0
        assert plan.pruned == {"stats": 3}
        assert execute_plan(store, plan) == []

    def test_pruning_is_exact(self):
        """A value folded differently (443 vs 443.0) must not prune."""
        store = _store(_skewed_packets(), capacity=40)
        for probe in (53, 53.0):
            query = Query(collection="packets", where={"dst_port": probe})
            assert execute_query(store, query) == \
                execute_query_linear(store, query)

    def test_stale_stats_are_not_consulted(self):
        store = DataStore(metadata_extractor=MetadataExtractor(),
                          segment_capacity=200)
        store.ingest_packets(_skewed_packets())
        store.build_stats()
        segment = store.segments("packets")[0]
        assert segment.stats() is not None
        store.ingest_packets([_packet(t=500.0, dport=9999)])
        assert segment.stats() is None
        query = Query(collection="packets", where={"dst_port": 9999})
        records = execute_query(store, query)
        assert len(records) == 1
        assert execute_query_linear(store, query) == records


class TestShardPruning:
    def _sharded(self, packets, n_shards=4):
        store = ShardedDataStore(
            n_shards=n_shards, metadata_extractor=MetadataExtractor(),
            segment_capacity=30, window_s=5.0)
        store.ingest_packets(packets)
        return store

    def test_full_flow_key_prunes_shards(self):
        packets = [_packet(t=float(i) * 0.5, src=f"10.0.{i % 4}.1",
                           flow=i % 8) for i in range(160)]
        store = self._sharded(packets)
        query = Query(
            collection="packets", time_range=(0.0, 4.9),
            where={"src_ip": "10.0.1.1", "dst_ip": "10.0.0.2",
                   "src_port": 1000, "dst_port": 80, "protocol": 6})
        plan = plan_query(store, query)
        assert plan.pruned.get("shard", 0) > 0
        serial = _store(packets, capacity=30, stats=False)
        assert [s.rid for s in store.query(query)] == \
            [s.rid for s in serial.query(query)]

    def test_partial_key_never_prunes_by_shard(self):
        packets = [_packet(t=float(i) * 0.5, flow=i % 8)
                   for i in range(80)]
        store = self._sharded(packets)
        plan = plan_query(store, Query(
            collection="packets", time_range=(0.0, 10.0),
            where={"src_ip": "10.0.0.1"}))
        assert "shard" not in plan.pruned

    def test_unbounded_time_never_prunes_by_shard(self):
        packets = [_packet(t=float(i) * 0.5, flow=i % 8)
                   for i in range(80)]
        store = self._sharded(packets)
        plan = plan_query(store, Query(
            collection="packets",
            where={"src_ip": "10.0.0.1", "dst_ip": "10.0.0.2",
                   "src_port": 1000, "dst_port": 80, "protocol": 6}))
        assert "shard" not in plan.pruned


class TestErrorBudget:
    def test_within_builds_budget(self):
        assert within(0.01).rel == 0.01
        assert within(0) == ErrorBudget(rel=0.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            within(-0.1)


class TestApproximateAggregates:
    def test_count_from_sketch_exact_regime(self):
        store = _store(_skewed_packets(), capacity=40)
        answer = store.count_matching(Query(
            collection="packets", where={"dst_port": 53},
            approx=within(0.01)))
        assert answer.value == 6
        assert answer.bound == 0
        assert answer.source == "sketch"
        assert "SketchAnswer" in answer.plan.explain()

    def test_count_without_budget_is_exact(self):
        store = _store(_skewed_packets(), capacity=40)
        answer = store.count_matching(Query(
            collection="packets", where={"dst_port": 53}))
        assert (answer.value, answer.bound, answer.source) == \
            (6, 0, "exact")

    def test_count_falls_back_on_ineligible_shape(self):
        store = _store(_skewed_packets(), capacity=40)
        answer = store.count_matching(Query(
            collection="packets",
            where={"dst_port": 53, "protocol": 6},
            approx=within(0.01)))
        assert answer.source == "exact"
        assert answer.value == 6

    def test_hybrid_count_on_partial_time_coverage(self):
        store = _store(_skewed_packets(), capacity=40)
        query = Query(collection="packets", time_range=(0.0, 60.5),
                      where={"dst_port": 80}, approx=within(0.01))
        answer = store.count_matching(query)
        exact = len(execute_query_linear(store, Query(
            collection="packets", time_range=(0.0, 60.5),
            where={"dst_port": 80})))
        assert answer.value == exact
        assert answer.source in ("hybrid", "sketch")
        assert answer.bound <= 0.01 * max(answer.value, 1)

    def test_distinct_exact_regime(self):
        store = _store(_skewed_packets(), capacity=40)
        answer = store.distinct_count(
            Query(collection="packets", approx=within(0.05)), "src_ip")
        assert answer.value == 4
        assert answer.source == "sketch"

    def test_distinct_folds_numeric_keys_on_exact_path(self):
        store = _store(_skewed_packets(), capacity=40)
        answer = store.distinct_count(
            Query(collection="packets"), "dst_port")
        assert answer.value == 2
        assert answer.source == "exact"

    def test_heavy_hitters_match_exact_ranking(self):
        store = _store(_skewed_packets(), capacity=40)
        query = Query(collection="packets", approx=within(0.05))
        sketched = store.heavy_hitters(query, "dst_port", k=2)
        exact = store.heavy_hitters(
            Query(collection="packets"), "dst_port", k=2)
        assert sketched.source == "sketch"
        assert exact.source == "exact"
        assert sketched.value == exact.value == [(80, 114), (53, 6)]

    def test_no_stats_means_exact_fallback(self):
        store = _store(_skewed_packets(), capacity=40, stats=False)
        answer = store.count_matching(Query(
            collection="packets", where={"dst_port": 53},
            approx=within(0.01)))
        assert answer.source in ("hybrid", "exact")
        assert answer.value == 6


class TestObservability:
    def test_plan_counters_and_spans(self):
        from repro.obs import Observability
        from repro.obs.export import obs_records

        obs = Observability()
        store = _store(_skewed_packets(), capacity=40)
        store.bind_obs(obs)
        store.query(Query(collection="packets", where={"dst_port": 53}))
        store.count_matching(Query(
            collection="packets", where={"dst_port": 9999},
            approx=within(0.01)))
        metrics = obs.metrics
        assert metrics.counter("repro_query_plan_segments_total",
                               result="scanned").value == 3
        assert metrics.counter("repro_query_plan_segments_total",
                               result="pruned_stats").value == 3
        assert metrics.counter("repro_query_plan_rows_total",
                               kind="actual").value >= 6
        assert metrics.counter("repro_query_plan_sketch_total",
                               kind="count", result="hit").value == 1
        names = {r["name"] for r in obs_records(obs, {})
                 if r.get("type") == "span"}
        assert "query.plan.scan" in names
        assert "query.plan.merge" in names
        assert "query.plan.sketch" in names

    def test_report_stage_for_planner_spans(self):
        from repro.obs.report import span_stage

        assert span_stage("query.plan.scan") == "query.plan"
        assert span_stage("query.plan.sketch") == "query.plan"
        assert span_stage("store.query") == "query"
        assert span_stage("store.ingest") == "store"
