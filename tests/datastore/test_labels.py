"""Ground-truth labeling jobs."""

import pytest

from repro.datastore import DataStore, Labeler, Query
from repro.events.base import EventWindow, GroundTruth
from repro.netsim.packets import PacketRecord


def _packet(ts, src, label="benign"):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip="10.0.0.1", src_port=53,
        dst_port=4444, protocol=17, size=100, payload_len=72, flags=0,
        ttl=60, payload=b"", flow_id=1, app="dns", label=label,
        direction="in",
    )


@pytest.fixture
def labeled_store():
    store = DataStore()
    store.ingest_packets([
        _packet(5.0, "6.6.6.6", label="ddos-dns-amp"),   # inside window
        _packet(5.0, "8.8.8.8"),                         # other src
        _packet(50.0, "6.6.6.6"),                        # outside window
    ])
    gt = GroundTruth()
    gt.add(EventWindow(kind="ddos", label="ddos-dns-amp",
                       start_time=0.0, end_time=10.0,
                       victims=["10.0.0.1"], actors=["6.6.6.6"]))
    return store, gt


def test_labeling_by_window_and_endpoint(labeled_store):
    store, gt = labeled_store
    summary = Labeler(store, gt).label_collection("packets")
    stored = store.query(Query(collection="packets"))
    labels = [s.label for s in stored]
    # both packets in the window involve actor or victim
    assert labels[0] == "ddos-dns-amp"
    assert labels[1] == "ddos-dns-amp"  # victim IP matches
    assert labels[2] == "benign"
    assert summary.records_seen == 3
    assert summary.by_label["ddos-dns-amp"] == 2


def test_agreement_with_provenance(labeled_store):
    store, gt = labeled_store
    summary = Labeler(store, gt).label_collection("packets")
    # packet 2 has provenance 'benign' but curation says ddos (victim ip)
    assert summary.agreement_with_provenance == pytest.approx(2 / 3)


def test_label_all_covers_collections(labeled_store):
    store, gt = labeled_store
    summaries = Labeler(store, gt).label_all()
    assert set(summaries) == {"packets", "flows", "logs"}
