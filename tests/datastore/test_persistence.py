"""Store export/import round-trips, atomicity, and checksums."""

import pytest

from repro.capture.flows import FlowRecord
from repro.capture.sensors import LogRecord
from repro.chaos import FaultKind, FaultPlan, FaultSpec, RetryPolicy, \
    TornWriteError, VirtualClock, retry
from repro.datastore import DataStore, PersistenceError, Query, \
    export_store, import_store
from repro.datastore.query import Aggregation
from repro.netsim.packets import PacketRecord


def _packet(ts, payload=b"\x16\x03\x03x"):
    return PacketRecord(
        timestamp=ts, src_ip="9.9.9.9", dst_ip="10.0.0.1", src_port=53,
        dst_port=4444, protocol=17, size=500, payload_len=472, flags=0,
        ttl=60, payload=payload, flow_id=1, app="dns", label="benign",
        direction="in",
    )


@pytest.fixture
def populated():
    from repro.capture.metadata import MetadataExtractor

    store = DataStore(metadata_extractor=MetadataExtractor(),
                      segment_capacity=20)
    store.ingest_packets([_packet(float(i)) for i in range(50)])
    store.ingest_flows([FlowRecord(
        src_ip="9.9.9.9", dst_ip="10.0.0.1", src_port=53, dst_port=4444,
        protocol=17, first_seen=0.0, last_seen=5.0, packets_fwd=3,
        bytes_fwd=1500, label="ddos-dns-amp",
    )])
    store.ingest_log(LogRecord(timestamp=2.0, source="srv0:sshd",
                               kind="auth-fail", message="nope",
                               attrs={"src_ip": "9.9.9.9"}))
    # a curated label
    store.query(Query(collection="packets", limit=1))[0].label = "curated"
    return store


def test_round_trip_counts_and_content(populated, tmp_path):
    export_store(populated, tmp_path / "store")
    restored = import_store(tmp_path / "store")
    for collection in ("packets", "flows", "logs"):
        assert restored.count(collection) == populated.count(collection)
    flow = restored.query(Query(collection="flows"))[0].record
    assert flow.label == "ddos-dns-amp"
    assert flow.bytes_fwd == 1500
    log = restored.query(Query(collection="logs"))[0].record
    assert log.attrs["src_ip"] == "9.9.9.9"


def test_tags_and_labels_restored(populated, tmp_path):
    export_store(populated, tmp_path / "store")
    restored = import_store(tmp_path / "store")
    original_first = populated.query(Query(collection="packets",
                                           limit=1))[0]
    restored_first = restored.query(Query(collection="packets",
                                          limit=1))[0]
    assert restored_first.label == "curated"
    assert restored_first.tags == original_first.tags
    # tag index works on the restored store
    via_tags = restored.query(Query(collection="packets",
                                    tags={"service": "dns"}))
    assert len(via_tags) == 50


def test_queries_equivalent_after_round_trip(populated, tmp_path):
    export_store(populated, tmp_path / "store")
    restored = import_store(tmp_path / "store")
    q = Query(collection="packets", time_range=(10.0, 20.0))
    assert len(restored.query(q)) == len(populated.query(q))
    agg = Aggregation(key_fn=lambda s: s.record.src_ip, reducer="count")
    assert restored.aggregate(Query(collection="packets"), agg) == \
        populated.aggregate(Query(collection="packets"), agg)


def test_empty_store_round_trip(tmp_path):
    export_store(DataStore(), tmp_path / "empty")
    restored = import_store(tmp_path / "empty")
    assert restored.count("packets") == 0


def test_missing_manifest_rejected(tmp_path):
    with pytest.raises(PersistenceError):
        import_store(tmp_path)


def test_bad_version_rejected(populated, tmp_path):
    import json

    export_store(populated, tmp_path / "store")
    manifest = tmp_path / "store" / "manifest.json"
    data = json.loads(manifest.read_text())
    data["format_version"] = 99
    manifest.write_text(json.dumps(data))
    with pytest.raises(PersistenceError):
        import_store(tmp_path / "store")


# -- atomicity under injected crashes & checksum verification --------------


def _torn_write_injector(limit=None):
    plan = FaultPlan("torn", seed=0, specs=(
        FaultSpec(FaultKind.PERSIST_TORN_WRITE, rate=1.0, limit=limit),))
    return plan.injector()


def test_crash_mid_export_leaves_nothing_behind(populated, tmp_path):
    with pytest.raises(TornWriteError):
        export_store(populated, tmp_path / "store",
                     fault_injector=_torn_write_injector())
    # no torn target directory, and the temp directory was cleaned up
    assert not (tmp_path / "store").exists()
    assert list(tmp_path.iterdir()) == []


def test_crash_mid_export_preserves_previous_export(populated, tmp_path):
    export_store(populated, tmp_path / "store")
    with pytest.raises(TornWriteError):
        export_store(populated, tmp_path / "store",
                     fault_injector=_torn_write_injector())
    # the previous export survives intact: checksums verify, counts match
    restored = import_store(tmp_path / "store")
    assert restored.count("packets") == populated.count("packets")
    assert list(tmp_path.iterdir()) == [tmp_path / "store"]


def test_export_retries_through_torn_writes(populated, tmp_path):
    injector = _torn_write_injector(limit=2)   # first two attempts crash
    retry(lambda: export_store(populated, tmp_path / "store",
                               fault_injector=injector),
          policy=RetryPolicy(max_attempts=5, base_delay_s=0.01),
          clock=VirtualClock(), retry_on=(TornWriteError,))
    assert injector.fired[FaultKind.PERSIST_TORN_WRITE] == 2
    restored = import_store(tmp_path / "store")
    assert restored.count("packets") == populated.count("packets")


def test_truncated_data_file_detected_by_checksum(populated, tmp_path):
    export_store(populated, tmp_path / "store")
    flows = tmp_path / "store" / "flows.jsonl"
    data = flows.read_bytes()
    flows.write_bytes(data[:len(data) // 2])
    with pytest.raises(PersistenceError, match="checksum mismatch"):
        import_store(tmp_path / "store")


def test_missing_data_file_detected(populated, tmp_path):
    export_store(populated, tmp_path / "store")
    (tmp_path / "store" / "logs.jsonl").unlink()
    with pytest.raises(PersistenceError, match="missing"):
        import_store(tmp_path / "store")
