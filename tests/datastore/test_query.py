"""Query engine: filters, indexes, aggregation, index==scan property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore import DataStore, Query
from repro.datastore.query import Aggregation
from repro.netsim.packets import PacketRecord


def _packet(ts, src, dport, direction="in"):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip="10.0.0.1", src_port=53,
        dst_port=dport, protocol=17, size=100, payload_len=72, flags=0,
        ttl=60, payload=b"", flow_id=1, app="dns", label="benign",
        direction=direction,
    )


@pytest.fixture
def store():
    s = DataStore(segment_capacity=25)   # force multiple segments
    packets = [
        _packet(float(i), src=f"9.9.9.{i % 5}", dport=4000 + (i % 3))
        for i in range(100)
    ]
    s.ingest_packets(packets)
    return s


def test_time_range_inclusive(store):
    hits = store.query(Query(collection="packets", time_range=(10.0, 20.0)))
    assert len(hits) == 11
    assert all(10.0 <= h.record.timestamp <= 20.0 for h in hits)


def test_open_ended_time_range(store):
    assert len(store.query(Query(collection="packets",
                                 time_range=(90.0, None)))) == 10
    assert len(store.query(Query(collection="packets",
                                 time_range=(None, 9.0)))) == 10


def test_where_on_indexed_field(store):
    hits = store.query(Query(collection="packets",
                             where={"src_ip": "9.9.9.2"}))
    assert len(hits) == 20
    assert all(h.record.src_ip == "9.9.9.2" for h in hits)


def test_combined_filters(store):
    hits = store.query(Query(
        collection="packets",
        time_range=(0.0, 49.0),
        where={"src_ip": "9.9.9.0", "dst_port": 4000},
    ))
    for h in hits:
        assert h.record.src_ip == "9.9.9.0"
        assert h.record.dst_port == 4000
        assert h.record.timestamp <= 49.0


def test_predicate_residual(store):
    hits = store.query(Query(
        collection="packets",
        predicate=lambda s: s.record.timestamp % 10 == 0,
    ))
    assert len(hits) == 10


def test_limit_and_order(store):
    hits = store.query(Query(collection="packets", limit=7))
    assert len(hits) == 7
    times = [h.record.timestamp for h in hits]
    assert times == sorted(times)
    assert times[0] == 0.0


def test_tag_filters():
    from repro.capture.metadata import MetadataExtractor
    from repro.netsim.traffic.payloads import dns_amplification_payload
    from repro.netsim.flows import Flow
    from repro.netsim.packets import FiveTuple

    store = DataStore(metadata_extractor=MetadataExtractor())
    flow = Flow(flow_id=1, key=FiveTuple("a", "b", 1, 2, 17),
                src_node="a", dst_node="b", size_bytes=10)
    pkt = _packet(0.0, "9.9.9.9", 53)
    pkt.payload = dns_amplification_payload(flow, 0, "fwd")
    pkt.dst_port = 53
    pkt.src_port = 4000
    store.ingest_packets([pkt, _packet(1.0, "9.9.9.9", 4000)])
    assert len(store.query(Query(collection="packets",
                                 tags={"dns_qtype": "ANY"}))) == 1
    assert len(store.query(Query(collection="packets",
                                 tags={"dns_qtype": None}))) == 1


def test_aggregate_count_and_sum(store):
    by_src = store.aggregate(
        Query(collection="packets", order_by_time=False),
        Aggregation(key_fn=lambda s: s.record.src_ip, reducer="count"),
    )
    assert by_src == {f"9.9.9.{i}": 20 for i in range(5)}
    bytes_by_port = store.aggregate(
        Query(collection="packets", order_by_time=False),
        Aggregation(key_fn=lambda s: s.record.dst_port,
                    value_fn=lambda s: s.record.size, reducer="sum"),
    )
    assert sum(bytes_by_port.values()) == 100 * 100


def test_aggregate_mean_and_bad_reducer(store):
    means = store.aggregate(
        Query(collection="packets"),
        Aggregation(key_fn=lambda s: 0,
                    value_fn=lambda s: s.record.timestamp, reducer="mean"),
    )
    assert means[0] == pytest.approx(49.5)
    with pytest.raises(ValueError):
        store.aggregate(Query(collection="packets"),
                        Aggregation(key_fn=lambda s: 0, reducer="median"))


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False),
                  st.integers(min_value=0, max_value=4),
                  st.integers(min_value=0, max_value=2)),
        min_size=1, max_size=80,
    ),
    lo=st.floats(min_value=0, max_value=100, allow_nan=False),
    span=st.floats(min_value=0, max_value=50, allow_nan=False),
    src_pick=st.integers(min_value=0, max_value=4),
)
def test_property_indexed_query_equals_linear_scan(data, lo, span, src_pick):
    store = DataStore(segment_capacity=16)
    packets = [_packet(ts, src=f"9.9.9.{s}", dport=4000 + p)
               for ts, s, p in data]
    store.ingest_packets(packets)
    query = Query(
        collection="packets",
        time_range=(lo, lo + span),
        where={"src_ip": f"9.9.9.{src_pick}"},
    )
    got = {id(s) for s in store.query(query)}
    want = set()
    for segment in store.segments("packets"):
        for stored in segment.records:
            r = stored.record
            if lo <= r.timestamp <= lo + span and \
                    r.src_ip == f"9.9.9.{src_pick}":
                want.add(id(stored))
    assert got == want
