"""Retention policy enforcement."""

import pytest

from repro.datastore import DataStore, Query, RetentionPolicy
from repro.netsim.packets import PacketRecord


def _packet(ts):
    return PacketRecord(
        timestamp=ts, src_ip="9.9.9.9", dst_ip="10.0.0.1", src_port=53,
        dst_port=4444, protocol=17, size=100, payload_len=72, flags=0,
        ttl=60, payload=b"x" * 32, flow_id=1, app="dns", label="benign",
        direction="in",
    )


def _filled_store(n=100, capacity=10):
    store = DataStore(segment_capacity=capacity)
    store.ingest_packets([_packet(float(i)) for i in range(n)])
    return store


def test_age_based_eviction():
    store = _filled_store()
    report = RetentionPolicy(max_age_s=50.0).enforce(store, now=100.0)
    # cutoff t=50: segments [0..9] ... [40..49] are entirely older
    assert report.segments_evicted == 5
    assert store.count("packets") == 50
    remaining = store.query(Query(collection="packets"))
    assert min(r.record.timestamp for r in remaining) == 50.0


def test_open_segment_never_evicted():
    store = _filled_store(n=5, capacity=10)   # single, unsealed segment
    report = RetentionPolicy(max_age_s=0.001).enforce(store, now=1e9)
    assert report.segments_evicted == 0
    assert store.count("packets") == 5


def test_size_based_eviction_oldest_first():
    store = _filled_store()
    target = store.bytes_estimate() // 2
    report = RetentionPolicy(max_bytes=target).enforce(store, now=100.0)
    assert store.bytes_estimate() <= target
    assert report.records_evicted > 0
    remaining = store.query(Query(collection="packets"))
    # the oldest records are the ones gone
    assert min(r.record.timestamp for r in remaining) > 0.0


def test_no_policy_no_eviction():
    store = _filled_store()
    report = RetentionPolicy().enforce(store, now=1e9)
    assert report.segments_evicted == 0
    assert store.count("packets") == 100


def test_report_by_collection():
    store = _filled_store()
    report = RetentionPolicy(max_age_s=10.0).enforce(store, now=200.0)
    assert report.by_collection.get("packets", 0) == report.records_evicted
