"""Cross-source record linking."""

import pytest

from repro.capture.flows import FlowRecord
from repro.capture.sensors import LogRecord
from repro.datastore import DataStore, Query, RecordLinker
from repro.netsim.packets import PacketRecord


def _packet(ts, sport=53, dport=4444):
    return PacketRecord(
        timestamp=ts, src_ip="9.9.9.9", dst_ip="10.0.0.1", src_port=sport,
        dst_port=dport, protocol=17, size=100, payload_len=72, flags=0,
        ttl=60, payload=b"", flow_id=1, app="dns", label="benign",
        direction="in",
    )


@pytest.fixture
def store():
    s = DataStore()
    s.ingest_packets([_packet(1.0), _packet(2.0),
                      _packet(2.5, sport=9999, dport=1111)])
    s.ingest_flows([FlowRecord(
        src_ip="9.9.9.9", dst_ip="10.0.0.1", src_port=53, dst_port=4444,
        protocol=17, first_seen=1.0, last_seen=2.0,
    )])
    s.ingest_log(LogRecord(timestamp=3.0, source="srv0:sshd",
                           kind="auth-fail", message="fail",
                           attrs={"src_ip": "9.9.9.9",
                                  "dst_ip": "10.0.0.1"}))
    s.ingest_log(LogRecord(timestamp=500.0, source="srv0:sshd",
                           kind="auth-fail", message="late",
                           attrs={"src_ip": "9.9.9.9"}))
    return s


def test_link_flow_gathers_matching_packets_and_logs(store):
    flow = store.query(Query(collection="flows"))[0]
    view = RecordLinker(store, log_window_s=30.0).link_flow(flow)
    assert len(view.packets) == 2          # 5-tuple + time match
    assert len(view.logs) == 1             # late log excluded
    assert view.logs[0].record.message == "fail"


def test_link_all_flows_matches_per_flow_linking(store):
    linker = RecordLinker(store, log_window_s=30.0)
    views = linker.link_all_flows()
    assert len(views) == 1
    single = linker.link_flow(views[0].flow)
    assert {id(p) for p in views[0].packets} == \
        {id(p) for p in single.packets}
    assert {id(l) for l in views[0].logs} == {id(l) for l in single.logs}


def test_linking_respects_time_bounds(store):
    flow = store.query(Query(collection="flows"))[0]
    view = RecordLinker(store, log_window_s=1.0).link_flow(flow)
    # log at t=3.0 is 1.0s after last_seen=2.0: inside window boundary
    assert len(view.logs) == 1
    tight = RecordLinker(store, log_window_s=0.5).link_flow(flow)
    assert len(tight.logs) == 0
