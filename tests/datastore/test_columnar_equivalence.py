"""Property tests: the accelerated query path is bit-identical.

``execute_query`` (zone maps + vectorized columns + indexes) must
return *exactly* the records of ``execute_query_linear`` (plain
record-at-a-time scan), in the same order, for any mix of time ranges,
``where`` filters, tag filters, residual predicates and limits.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.capture.metadata import MetadataExtractor
from repro.datastore.query import Query, execute_query, execute_query_linear
from repro.datastore.store import DataStore
from repro.netsim.packets import PacketRecord

# Small pools make collisions (and hence non-trivial filters) likely.
IPS = ["10.0.0.1", "10.0.0.2", "9.9.0.7", "192.168.1.20"]
WEIRD_IPS = ["host.example", "10.0.0", "::1"]
PORTS = [53, 80, 443, 40_001, 40_002]
PAYLOADS = [b"", b"\x16\x03\x03\x01www.example.edu", b"SSH-2.0-x"]


def packet_strategy(weird_ips: bool):
    ips = IPS + WEIRD_IPS if weird_ips else IPS
    return st.builds(
        PacketRecord,
        timestamp=st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False),
        src_ip=st.sampled_from(ips),
        dst_ip=st.sampled_from(ips),
        src_port=st.sampled_from(PORTS),
        dst_port=st.sampled_from(PORTS),
        protocol=st.sampled_from([1, 6, 17]),
        size=st.integers(min_value=40, max_value=1500),
        payload_len=st.integers(min_value=0, max_value=1460),
        flags=st.sampled_from([0, 0x02, 0x10, 0x12]),
        ttl=st.integers(min_value=1, max_value=255),
        payload=st.sampled_from(PAYLOADS),
        flow_id=st.integers(min_value=0, max_value=9),
        app=st.sampled_from(["web", "dns", ""]),
        label=st.sampled_from(["", "benign", "scan"]),
        direction=st.sampled_from(["in", "out"]),
    )


def query_strategy():
    time_bound = st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=100.0,
                             allow_nan=False, allow_infinity=False))
    where_entries = st.dictionaries(
        st.sampled_from(["src_ip", "dst_ip", "dst_port", "protocol",
                         "direction", "app", "flow_id", "payload"]),
        st.sampled_from(IPS + WEIRD_IPS + PORTS
                        + [1, 6, 17, "in", "out", "web", b""]),
        max_size=2,
    )
    tag_entries = st.dictionaries(
        st.sampled_from(["proto", "service", "parity", "app_proto"]),
        st.sampled_from(["tcp", "udp", "https", "0", "1", "tls", None]),
        max_size=2,
    )
    predicates = st.sampled_from([
        None,
        lambda stored: stored.record.size > 700,
        lambda stored: stored.rid % 2 == 0,
    ])
    return st.builds(
        Query,
        collection=st.just("packets"),
        time_range=st.one_of(st.none(),
                             st.tuples(time_bound, time_bound)),
        where=where_entries,
        tags=tag_entries,
        predicate=predicates,
        limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
        order_by_time=st.booleans(),
    )


def build_store(packets, tagged: bool, sealed: bool) -> DataStore:
    store = DataStore(metadata_extractor=MetadataExtractor(),
                      segment_capacity=7)
    if tagged:
        store.add_ingest_transform(
            lambda collection, record, tags:
            (record, {**tags, "parity": str(record.flow_id % 2)}))
    store.ingest_packets(packets)
    if sealed:
        for segment in store.segments("packets")[:-1]:
            if not segment.sealed:
                segment.seal()
    return store


@settings(max_examples=120, deadline=None)
@given(
    packets=st.lists(packet_strategy(weird_ips=False), max_size=40),
    query=query_strategy(),
    tagged=st.booleans(),
    sealed=st.booleans(),
)
def test_columnar_path_matches_linear_scan(packets, query, tagged, sealed):
    store = build_store(packets, tagged, sealed)
    fast = execute_query(store, query)
    linear = execute_query_linear(store, query)
    assert [id(s) for s in fast] == [id(s) for s in linear]


@settings(max_examples=60, deadline=None)
@given(
    packets=st.lists(packet_strategy(weird_ips=True), max_size=30),
    query=query_strategy(),
)
def test_dict_encoded_addresses_match_linear_scan(packets, query):
    """Non-canonical IPs force the DictColumn fallback encoding."""
    store = build_store(packets, tagged=False, sealed=False)
    fast = execute_query(store, query)
    linear = execute_query_linear(store, query)
    assert [id(s) for s in fast] == [id(s) for s in linear]


@settings(max_examples=40, deadline=None)
@given(packets=st.lists(packet_strategy(weird_ips=False), max_size=40),
       window_s=st.sampled_from([1.0, 5.0]),
       time_range=st.one_of(
           st.none(),
           st.tuples(st.floats(min_value=0.0, max_value=100.0,
                               allow_nan=False, allow_infinity=False),
                     st.floats(min_value=0.0, max_value=100.0,
                               allow_nan=False, allow_infinity=False))))
def test_featurizer_columnar_matches_record_path(packets, window_s,
                                                 time_range):
    from repro.learning.features import FeatureConfig, SourceWindowFeaturizer

    store = build_store(packets, tagged=False, sealed=False)
    featurizer = SourceWindowFeaturizer(
        FeatureConfig(window_s=window_s, min_packets=1))
    columnar = featurizer.examples_columnar(store, time_range)
    records = featurizer.examples_from_records(store, time_range)
    assert columnar is not None
    assert [(e.window_start, e.endpoint) for e in columnar] == \
        [(e.window_start, e.endpoint) for e in records]
    for fast, slow in zip(columnar, records):
        assert fast.vector(window_s) == slow.vector(window_s)
        assert fast.dsts == slow.dsts
        assert fast.dports == slow.dports
        assert fast.label_votes == slow.label_votes


def test_equal_timestamps_deterministic_order():
    """Ties on the time axis resolve by ingest position, always."""
    packets = [
        PacketRecord(timestamp=5.0, src_ip="10.0.0.1", dst_ip="10.0.0.2",
                     src_port=1, dst_port=2, protocol=6, size=100 + i,
                     payload_len=0, flags=0, ttl=64, payload=b"",
                     flow_id=i, app="", label="", direction="in")
        for i in range(10)
    ]
    store = DataStore(segment_capacity=3)
    store.ingest_packets(packets)
    query = Query(collection="packets", time_range=(5.0, 5.0))
    fast = execute_query(store, query)
    linear = execute_query_linear(store, query)
    assert [s.record.size for s in fast] == [100 + i for i in range(10)]
    assert [id(s) for s in fast] == [id(s) for s in linear]
