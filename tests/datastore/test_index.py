"""Index structures, in particular TimeIndex's lazy merge."""

from repro.datastore.index import HashIndex, InvertedIndex, TimeIndex


class TestTimeIndex:
    def test_range_inclusive(self):
        index = TimeIndex()
        for i, t in enumerate([1.0, 2.0, 3.0, 4.0]):
            index.add(t, i)
        assert index.range(2.0, 3.0) == [1, 2]
        assert index.range(None, 2.0) == [0, 1]
        assert index.range(3.0, None) == [2, 3]
        assert index.range(None, None) == [0, 1, 2, 3]

    def test_seal_after_range_keeps_merged_entries(self):
        # Regression: seal() used to rebuild the sorted arrays from only
        # the unmerged tail, dropping everything a prior range() had
        # already folded in.
        index = TimeIndex()
        index.add(2.0, 0)
        index.add(1.0, 1)
        assert index.range(None, None) == [1, 0]   # forces a merge
        index.add(0.5, 2)
        index.seal()
        assert index.range(None, None) == [2, 1, 0]
        assert len(index) == 3
        assert index.min_time == 0.5
        assert index.max_time == 2.0

    def test_equal_timestamps_order_by_position(self):
        index = TimeIndex()
        for position in (5, 3, 9, 1):
            index.add(7.0, position)
        assert index.range(7.0, 7.0) == [1, 3, 5, 9]
        # merging in two rounds gives the same answer
        other = TimeIndex()
        other.add(7.0, 5)
        other.add(7.0, 3)
        other.range(None, None)
        other.add_batch([7.0, 7.0], [9, 1])
        assert other.range(7.0, 7.0) == [1, 3, 5, 9]

    def test_add_batch_matches_repeated_add(self):
        one = TimeIndex()
        two = TimeIndex()
        times = [3.0, 1.0, 2.0, 1.0]
        for position, t in enumerate(times):
            one.add(t, position)
        two.add_batch(times, range(len(times)))
        assert one.range(None, None) == two.range(None, None)


def test_hash_index_lookup():
    index = HashIndex()
    index.add("10.0.0.1", 0)
    index.add("10.0.0.2", 1)
    index.add("10.0.0.1", 2)
    assert index.lookup("10.0.0.1") == [0, 2]
    assert index.lookup("absent") == []
    assert len(index) == 3


def test_inverted_index_key_and_value_lookup():
    index = InvertedIndex()
    index.add({"proto": "tcp", "service": "https"}, 0)
    index.add({"proto": "udp"}, 1)
    assert index.lookup("proto", "tcp") == [0]
    assert index.lookup("proto") == [0, 1]
    assert index.lookup("service", "dns") == []
