"""Proof that cold-tier reads go through mmap, not the heap.

A store whose cold tier is larger than a hard ``RLIMIT_DATA`` memory
budget must still answer planned queries: file-backed mmap pages are
not charged against the data segment, so the query path succeeds iff
it streams only the pages its masks touch.  If anything on the read
path materialized the cold payload blob (or a whole column) into the
heap, the capped child process would die with MemoryError.

CI runs this file under ``pytest -p no:cacheprovider`` so the cache
plugin cannot shave or pad the child's memory profile.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.datastore.tiers import TieredDataStore, TierPolicy
from repro.netsim.packets import PacketRecord

SRC = str(Path(__file__).resolve().parents[2] / "src")

N_RECORDS = 24_576
PAYLOAD_BYTES = 8_192            # cold payload blob: ~192 MiB
HEADROOM_BYTES = 96 << 20        # what the child may allocate on top

POLICY = TierPolicy(memtable_records=8_192, warm_fanin=2,
                    warm_max_segments=1, cold_fanin=3)


def _build_big_cold_store(spill_dir: Path) -> None:
    store = TieredDataStore(policy=POLICY, spill_dir=spill_dir)
    for start in range(0, N_RECORDS, 8_192):
        batch = [
            PacketRecord(
                timestamp=i * 0.001, src_ip=f"10.0.{i % 4}.{i % 200}",
                dst_ip="10.1.0.1", src_port=1024 + i % 5000,
                dst_port=40_001 if i % 1_000 == 0 else 80,
                protocol=6, size=PAYLOAD_BYTES + 40,
                payload_len=PAYLOAD_BYTES, flags=2, ttl=64,
                payload=bytes([i & 0xFF]) * PAYLOAD_BYTES,
                flow_id=i % 16, app="bulk", label="", direction="in")
            for i in range(start, start + 8_192)
        ]
        store.ingest_packets(batch)
    store.flush_to_cold()
    store.compactor.run()
    _, warm, cold = store.tier_segments()
    assert not warm and cold
    total = sum(s.bytes_estimate for s in cold)
    assert total > N_RECORDS * PAYLOAD_BYTES     # bigger than the budget


CHILD = textwrap.dedent("""
    import json, resource, sys
    sys.path.insert(0, sys.argv[1])
    from repro.datastore.query import Query
    from repro.datastore.tiers import TieredDataStore, TierPolicy

    spill, headroom = sys.argv[2], int(sys.argv[3])
    policy = TierPolicy(memtable_records=8192, warm_fanin=2,
                        warm_max_segments=1, cold_fanin=3)
    # open first: checksum verification may buffer, and the imports
    # above dominate the baseline heap we measure next.
    store = TieredDataStore(policy=policy, spill_dir=spill)

    vmdata_kb = 0
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmData:"):
                vmdata_kb = int(line.split()[1])
    cap = vmdata_kb * 1024 + headroom
    resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))

    rare = store.query(Query(collection="packets",
                             where={"dst_port": 40001}))
    window = store.query(Query(collection="packets",
                               time_range=(0.9995, 1.0995)))
    sample = rare[0]                        # earliest hit: i == 0
    ok = bytes(sample.record.payload[:4]) == b"\\x00" * 4
    print(json.dumps({"rare": len(rare), "window": len(window),
                      "payload_ok": ok, "cap": cap,
                      "baseline": vmdata_kb * 1024}))
""")


@pytest.mark.skipif(sys.platform != "linux",
                    reason="RLIMIT_DATA mmap exemption is Linux semantics")
def test_bigger_than_budget_cold_store_answers_via_mmap(tmp_path):
    spill = tmp_path / "cold"
    _build_big_cold_store(spill)

    result = subprocess.run(
        [sys.executable, "-c", CHILD, SRC, str(spill),
         str(HEADROOM_BYTES)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, \
        f"capped reader died:\n{result.stderr[-2000:]}"
    answer = json.loads(result.stdout.strip().splitlines()[-1])
    assert answer["rare"] == N_RECORDS // 1_000 + 1
    assert answer["window"] == 100
    assert answer["payload_ok"] is True
    # the proof is real: loading the cold payload blob into the heap
    # would have pushed the data segment past the cap
    assert answer["cap"] - answer["baseline"] < N_RECORDS * PAYLOAD_BYTES
