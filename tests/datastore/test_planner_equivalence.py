"""Property tests: planned execution is exact, everywhere.

The planner reorders predicates, prunes segments from stats, picks
gather vs. mask evaluation, and prunes shards before scatter — all of
it must be invisible in the answers.  For any random packet batch and
query shape, exact-mode planned execution returns *the same record
objects in the same order* as ``execute_query_linear``, on serial and
sharded stores alike; approximate aggregates must land within their
declared error budget.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.capture.metadata import MetadataExtractor
from repro.datastore.planner import within
from repro.datastore.query import Query, execute_query, execute_query_linear
from repro.datastore.store import DataStore, ShardedDataStore
from repro.netsim.packets import PacketRecord

WINDOW_S = 5.0
IPS = ["10.0.0.1", "10.0.0.2", "9.9.0.7", "192.168.1.20"]
WEIRD_IPS = ["host.example", "10.0.0", "::1"]
PORTS = [53, 80, 443, 40_001]
# timestamps hugging shard-window boundaries: exact multiples, one ulp
# each side, and interior points
BOUNDARY_TIMES = sorted(
    {t for k in range(0, 5) for t in (
        k * WINDOW_S,
        float(np.nextafter(k * WINDOW_S, -np.inf)),
        float(np.nextafter(k * WINDOW_S, np.inf)),
        k * WINDOW_S + 1.7,
    ) if t >= 0.0}
)


def packet_strategy(weird_ips: bool = False,
                    boundary_times: bool = False):
    ips = IPS + WEIRD_IPS if weird_ips else IPS
    timestamps = st.sampled_from(BOUNDARY_TIMES) if boundary_times else \
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
    return st.builds(
        PacketRecord,
        timestamp=timestamps,
        src_ip=st.sampled_from(ips),
        dst_ip=st.sampled_from(ips),
        src_port=st.sampled_from(PORTS),
        dst_port=st.sampled_from(PORTS),
        protocol=st.sampled_from([6, 17]),
        size=st.integers(min_value=40, max_value=1500),
        payload_len=st.integers(min_value=0, max_value=1460),
        flags=st.sampled_from([0, 0x02]),
        ttl=st.just(60),
        payload=st.sampled_from([b"", b"SSH-2.0-x"]),
        flow_id=st.integers(min_value=0, max_value=9),
        app=st.sampled_from(["web", "dns", ""]),
        label=st.sampled_from(["", "scan"]),
        direction=st.sampled_from(["in", "out"]),
    )


def query_strategy(full_flow_key: bool = False):
    time_bound = st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=100.0,
                             allow_nan=False, allow_infinity=False))
    if full_flow_key:
        # the shape eligible for exact shard pruning: full 5-tuple +
        # a doubly-bounded window
        where_entries = st.fixed_dictionaries({
            "src_ip": st.sampled_from(IPS),
            "dst_ip": st.sampled_from(IPS),
            "src_port": st.sampled_from(PORTS),
            "dst_port": st.sampled_from(PORTS),
            "protocol": st.sampled_from([6, 17]),
        })
        time_range = st.tuples(
            st.sampled_from(BOUNDARY_TIMES),
            st.sampled_from(BOUNDARY_TIMES))
    else:
        where_entries = st.dictionaries(
            st.sampled_from(["src_ip", "dst_ip", "dst_port", "protocol",
                             "direction", "app", "flow_id"]),
            st.sampled_from(IPS + WEIRD_IPS + PORTS + [6, 17, "in",
                                                       "web", 3]),
            max_size=3,
        )
        time_range = st.one_of(st.none(),
                               st.tuples(time_bound, time_bound))
    return st.builds(
        Query,
        collection=st.just("packets"),
        time_range=time_range,
        where=where_entries,
        tags=st.just({}),
        predicate=st.sampled_from(
            [None, lambda stored: stored.rid % 2 == 0]),
        limit=st.one_of(st.none(),
                        st.integers(min_value=0, max_value=10)),
        order_by_time=st.booleans(),
    )


def _planned_store(packets, capacity=16) -> DataStore:
    """Sealed segments + stats: every planner feature can engage."""
    store = DataStore(metadata_extractor=MetadataExtractor(),
                      segment_capacity=capacity)
    store.ingest_packets(packets)
    for segment in store.segments("packets"):
        if not segment.sealed:
            segment.seal()
    store.build_stats()
    return store


def _ids(records):
    return [id(stored) for stored in records]


@settings(max_examples=120, deadline=None)
@given(packets=st.lists(packet_strategy(), max_size=50),
       query=query_strategy())
def test_planned_execution_matches_linear_scan(packets, query):
    store = _planned_store(packets)
    assert _ids(execute_query(store, query)) == \
        _ids(execute_query_linear(store, query))


@settings(max_examples=60, deadline=None)
@given(packets=st.lists(packet_strategy(weird_ips=True), max_size=40),
       query=query_strategy())
def test_dict_encoded_segments_match_linear_scan(packets, query):
    """Unparseable IPs force DictColumn stats: same answers."""
    store = _planned_store(packets)
    assert _ids(execute_query(store, query)) == \
        _ids(execute_query_linear(store, query))


@settings(max_examples=60, deadline=None)
@given(packets=st.lists(packet_strategy(boundary_times=True),
                        max_size=60),
       n_shards=st.sampled_from([1, 2, 4, 8]),
       query=query_strategy())
def test_sharded_planned_execution_matches_serial(packets, n_shards,
                                                  query):
    serial = _planned_store(packets, capacity=64)
    sharded = ShardedDataStore(n_shards=n_shards,
                               metadata_extractor=MetadataExtractor(),
                               segment_capacity=64, window_s=WINDOW_S)
    sharded.ingest_packets(list(packets))
    sharded.build_stats()
    assert [s.rid for s in sharded.query(query)] == \
        [s.rid for s in execute_query_linear(serial, query)]


@settings(max_examples=60, deadline=None)
@given(packets=st.lists(packet_strategy(boundary_times=True),
                        max_size=60),
       n_shards=st.sampled_from([2, 4, 8]),
       query=query_strategy(full_flow_key=True))
def test_shard_pruned_execution_matches_serial(packets, n_shards, query):
    """Full-5-tuple queries (pre-scatter shard pruning) stay exact."""
    serial = _planned_store(packets, capacity=64)
    sharded = ShardedDataStore(n_shards=n_shards,
                               metadata_extractor=MetadataExtractor(),
                               segment_capacity=64, window_s=WINDOW_S)
    sharded.ingest_packets(list(packets))
    sharded.build_stats()
    assert [s.rid for s in sharded.query(query)] == \
        [s.rid for s in execute_query_linear(serial, query)]


@settings(max_examples=80, deadline=None)
@given(packets=st.lists(packet_strategy(), max_size=50),
       fld=st.sampled_from(["src_ip", "dst_port", "protocol"]),
       value=st.sampled_from(IPS + PORTS + [6, 17]),
       rel=st.sampled_from([0.0, 0.01, 0.1]))
def test_approximate_count_within_budget(packets, fld, value, rel):
    """Sketch counts respect the declared budget and its composed
    bound (deterministically: small batches stay in the exact-map
    stats regime, where the bound is 0 and the value is exact)."""
    store = _planned_store(packets)
    query = Query(collection="packets", where={fld: value},
                  approx=within(rel))
    answer = store.count_matching(query)
    exact = len(execute_query_linear(store, Query(
        collection="packets", where={fld: value})))
    assert answer.bound <= rel * max(answer.value, 1) \
        or answer.source == "exact"
    assert abs(answer.value - exact) <= answer.bound


@settings(max_examples=60, deadline=None)
@given(packets=st.lists(packet_strategy(), max_size=50),
       fld=st.sampled_from(["src_ip", "dst_port", "flow_id"]),
       rel=st.sampled_from([0.0, 0.05]))
def test_approximate_distinct_within_budget(packets, fld, rel):
    store = _planned_store(packets)
    answer = store.distinct_count(
        Query(collection="packets", approx=within(rel)), fld)
    exact = store.distinct_count(Query(collection="packets"), fld)
    assert exact.source == "exact"
    assert abs(answer.value - exact.value) <= answer.bound
    if answer.source == "sketch":
        assert answer.bound <= rel * max(answer.value, 1)


@settings(max_examples=40, deadline=None)
@given(packets=st.lists(packet_strategy(), max_size=50),
       k=st.sampled_from([1, 3, 8]))
def test_approximate_heavy_hitters_match_exact_regime(packets, k):
    """In the exact-map stats regime the sketch ranking *is* the
    exact ranking (same counts, same deterministic tie-break)."""
    store = _planned_store(packets)
    sketched = store.heavy_hitters(
        Query(collection="packets", approx=within(0.0)), "dst_port", k=k)
    exact = store.heavy_hitters(
        Query(collection="packets"), "dst_port", k=k)
    if sketched.source == "sketch":
        assert sketched.value == exact.value
        assert sketched.bound == 0
    else:
        assert sketched.value == exact.value
