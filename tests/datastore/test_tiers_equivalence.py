"""Property tests: tiering and compaction are query-invisible.

For any random interleaving of ingest / seal / compactor-step / query
— including queries issued *between* the steps of an in-flight
compaction — a tiered store (any shard count 1–8, spilling to disk or
not) must answer bit-identically to a flat :class:`DataStore` fed the
same batches.  Timestamps are drawn with window-boundary values
over-represented so shard-routing edge cases get exercised.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.datastore.query import Query
from repro.datastore.store import DataStore
from repro.datastore.tiers import (
    TieredDataStore, TieredShardedDataStore, TierPolicy,
)
from repro.netsim.packets import PacketRecord

WINDOW_S = 5.0
#: exact shard-window boundaries (and near-misses) show up often.
BOUNDARY_TIMES = [0.0, 5.0, 10.0, 15.0, 4.999999, 5.000001, 9.999999]

IPS = ["10.0.0.1", "10.0.0.2", "9.9.0.7", "192.168.1.20", "not-an-ip"]
PORTS = [53, 80, 443, 40_001]
PAYLOADS = [b"", b"\x16\x03\x03www", b"SSH-2.0-x"]


def packet_strategy():
    timestamps = st.one_of(
        st.sampled_from(BOUNDARY_TIMES),
        st.floats(min_value=0.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False))
    return st.builds(
        PacketRecord,
        timestamp=timestamps,
        src_ip=st.sampled_from(IPS),
        dst_ip=st.sampled_from(IPS),
        src_port=st.sampled_from(PORTS),
        dst_port=st.sampled_from(PORTS),
        protocol=st.sampled_from([1, 6, 17]),
        size=st.integers(min_value=40, max_value=1500),
        payload_len=st.integers(min_value=0, max_value=1460),
        flags=st.sampled_from([0, 0x02, 0x12]),
        ttl=st.integers(min_value=1, max_value=255),
        payload=st.sampled_from(PAYLOADS),
        flow_id=st.integers(min_value=0, max_value=9),
        app=st.sampled_from(["web", "dns", ""]),
        label=st.sampled_from(["", "benign", "scan"]),
        direction=st.sampled_from(["in", "out"]),
    )


QUERIES = [
    Query(collection="packets"),
    Query(collection="packets", order_by_time=False),
    Query(collection="packets", time_range=(5.0, 10.0)),
    Query(collection="packets", time_range=(None, 4.999999)),
    Query(collection="packets", where={"protocol": 6}),
    Query(collection="packets", where={"src_ip": "10.0.0.1"},
          time_range=(0.0, 15.0)),
    Query(collection="packets", where={"dst_port": 443}, limit=7),
    Query(collection="packets", tags={}, where={"payload": b""}),
]


def _values(result):
    """StoredRecords by value (cold-tier rows are rebuilt objects)."""
    return [(s.rid, s.record.timestamp, s.record.src_ip, s.record.dst_ip,
             s.record.src_port, s.record.dst_port, s.record.protocol,
             s.record.size, s.record.payload_len, s.record.flags,
             s.record.ttl, bytes(s.record.payload), s.record.flow_id,
             s.record.app, s.record.label, s.record.direction,
             dict(s.tags), s.label) for s in result]


def _assert_identical(tiered, flat, query):
    assert _values(tiered.query(query)) == _values(flat.query(query))


@settings(max_examples=30, deadline=None)
@given(
    batches=st.lists(st.lists(packet_strategy(), max_size=12),
                     min_size=1, max_size=6),
    n_shards=st.integers(min_value=1, max_value=8),
    memtable=st.sampled_from([4, 8, 16]),
    spill=st.booleans(),
    data=st.data(),
)
def test_interleaved_lifecycle_matches_flat_store(batches, n_shards,
                                                  memtable, spill, data):
    policy = TierPolicy(memtable_records=memtable, warm_fanin=2,
                        warm_max_segments=2, cold_fanin=2)
    tmp = tempfile.mkdtemp(prefix="tiers-eq-") if spill else None
    try:
        if n_shards == 1:
            tiered = TieredDataStore(policy=policy, spill_dir=tmp)
        else:
            tiered = TieredShardedDataStore(
                n_shards=n_shards, policy=policy, spill_dir=tmp,
                window_s=WINDOW_S)
        flat = DataStore()
        for batch in batches:
            tiered.ingest_packets(batch)
            flat.ingest_packets(batch)
            op = data.draw(st.sampled_from(
                ["none", "seal", "step", "query"]))
            if op == "seal":
                tiered.seal_hot()
            elif op == "step":
                tiered.seal_hot()
                tiered.compactor.step()
            elif op == "query":
                _assert_identical(
                    tiered, flat, data.draw(st.sampled_from(QUERIES)))
        # drive the compactor to debt-free, querying between EVERY step:
        # a query racing an in-flight compaction must see nothing.
        tiered.seal_hot()
        for _ in range(64):
            _assert_identical(
                tiered, flat, data.draw(st.sampled_from(QUERIES)))
            if tiered.compactor.step() is None:
                break
        for query in QUERIES:
            _assert_identical(tiered, flat, query)
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=15, deadline=None)
@given(
    batches=st.lists(st.lists(packet_strategy(), max_size=10),
                     min_size=1, max_size=4),
    n_shards=st.integers(min_value=1, max_value=8),
)
def test_flush_reopen_matches_flat_store(batches, n_shards):
    """Everything to cold, reopen from disk: still bit-identical."""
    policy = TierPolicy(memtable_records=8, warm_fanin=2,
                        warm_max_segments=1, cold_fanin=2)
    tmp = tempfile.mkdtemp(prefix="tiers-re-")
    try:
        def build():
            if n_shards == 1:
                return TieredDataStore(policy=policy, spill_dir=tmp)
            return TieredShardedDataStore(
                n_shards=n_shards, policy=policy, spill_dir=tmp,
                window_s=WINDOW_S)

        tiered = build()
        flat = DataStore()
        for batch in batches:
            tiered.ingest_packets(batch)
            flat.ingest_packets(batch)
        tiered.flush_to_cold()
        tiered.compactor.run()
        for query in QUERIES:
            _assert_identical(tiered, flat, query)
        reopened = build()
        for query in QUERIES:
            _assert_identical(reopened, flat, query)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
