"""Thresholds, sampled NetFlow, and workflow cost baselines."""

import numpy as np
import pytest

from repro.baselines import (
    NetFlowSampler,
    ThresholdDetector,
    ThresholdRule,
    bottom_up_iteration_cost,
    sampled_dataset,
    top_down_iteration_cost,
)
from repro.learning.features import FEATURE_NAMES


class TestThreshold:
    def _vector(self, **overrides):
        values = {name: 0.0 for name in FEATURE_NAMES}
        values.update(overrides)
        return np.asarray([[values[name] for name in FEATURE_NAMES]])

    def test_fires_when_all_rules_met(self):
        detector = ThresholdDetector()
        hot = self._vector(dns_fraction=0.95, bytes_in_out_ratio=50.0,
                           pkt_rate=200.0)
        assert detector.predict(hot)[0] == 1

    def test_quiet_when_any_rule_unmet(self):
        detector = ThresholdDetector()
        cold = self._vector(dns_fraction=0.95, bytes_in_out_ratio=50.0,
                            pkt_rate=1.0)
        assert detector.predict(cold)[0] == 0

    def test_inverted_rule(self):
        detector = ThresholdDetector(rules=[
            ThresholdRule("mean_ttl", 30.0, invert=True)])
        assert detector.predict(self._vector(mean_ttl=20.0))[0] == 1
        assert detector.predict(self._vector(mean_ttl=60.0))[0] == 0

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            ThresholdDetector(rules=[ThresholdRule("nope", 1.0)])

    def test_proba_is_hard(self):
        detector = ThresholdDetector()
        proba = detector.predict_proba(self._vector())
        assert proba.tolist() == [[1.0, 0.0]]

    def test_fit_is_noop(self):
        detector = ThresholdDetector()
        assert detector.fit(None, None) is detector


class TestNetFlow:
    def _packets(self, n=1000):
        from repro.netsim.packets import PacketRecord

        return [PacketRecord(
            timestamp=i * 0.01, src_ip="9.9.9.9", dst_ip="10.0.0.1",
            src_port=53, dst_port=4444, protocol=17, size=1000,
            payload_len=972, flags=0, ttl=60, payload=b"data",
            flow_id=1, app="dns", label="benign", direction="in",
        ) for i in range(n)]

    def test_rate_one_keeps_all(self):
        sampler = NetFlowSampler(sampling_rate=1)
        kept = sampler.sample(self._packets(100))
        assert len(kept) == 100

    def test_sampling_rate_statistics(self):
        sampler = NetFlowSampler(sampling_rate=10, seed=1)
        kept = sampler.sample(self._packets(5000))
        assert len(kept) == pytest.approx(500, rel=0.25)

    def test_payload_removed(self):
        sampler = NetFlowSampler(sampling_rate=2, seed=1)
        kept = sampler.sample(self._packets(100))
        assert all(p.payload == b"" for p in kept)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            NetFlowSampler(sampling_rate=0)

    def test_sampled_dataset_scales_counts(self):
        packets = self._packets(1000)
        full = sampled_dataset(list(packets), None, sampling_rate=1)
        sampled = sampled_dataset(list(self._packets(1000)), None,
                                  sampling_rate=8, seed=3)
        pkt_index = FEATURE_NAMES.index("pkts")
        # count features are re-inflated to comparable magnitude
        assert sampled.X[:, pkt_index].sum() == pytest.approx(
            full.X[:, pkt_index].sum(), rel=0.4)


class TestWorkflowCosts:
    def test_bottom_up_recollects_every_iteration(self):
        cost = bottom_up_iteration_cost(iterations=5, day_length_s=86_400,
                                        compute_seconds=10.0)
        assert cost.collection_runs == 5
        assert cost.collection_days == pytest.approx(5.0)
        assert cost.dominated_by_collection

    def test_top_down_collects_once(self):
        cost = top_down_iteration_cost(iterations=5, day_length_s=86_400,
                                       compute_seconds=10.0)
        assert cost.collection_runs == 1
        assert cost.collection_days == pytest.approx(1.0)
        assert not cost.dominated_by_collection
