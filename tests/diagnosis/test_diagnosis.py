"""Telemetry collection, link-window features, root-cause localization."""

import pytest

from repro.diagnosis import (
    LinkWindowFeaturizer,
    RootCauseLocalizer,
    RuleBasedLocalizer,
    TelemetryCollector,
)
from repro.diagnosis.features import DIAGNOSIS_FEATURES
from repro.events import (
    LinkCongestionIncident,
    LinkDegradationIncident,
    LinkFlapIncident,
    Scenario,
    run_scenario,
)
from repro.netsim import make_campus


def incident_day(seed: int):
    net = make_campus("tiny", seed=seed)
    collector = TelemetryCollector(net, interval_s=1.0)
    collector.start()
    scenario = Scenario("perf-day", duration_s=240.0)
    scenario.add(LinkCongestionIncident, 30.0, 30.0, department=0)
    scenario.add(LinkFlapIncident, 100.0, 24.0, flap_period_s=8.0,
                 link=("dist1", "core1"))
    scenario.add(LinkDegradationIncident, 170.0, 40.0, factor=0.1)
    ground_truth = run_scenario(net, scenario, seed=seed)
    return net, collector, ground_truth


@pytest.fixture(scope="module")
def trained():
    days = [incident_day(seed) for seed in (5, 15)]
    localizer = RootCauseLocalizer(window_s=10.0).fit_many(
        [(c, g, n.topology) for n, c, g in days])
    return localizer


@pytest.fixture(scope="module")
def test_day():
    return incident_day(7)


class TestTelemetry:
    def test_polling_interval_and_coverage(self):
        net = make_campus("tiny", seed=1)
        collector = TelemetryCollector(net, interval_s=2.0)
        collector.start()
        net.run_for(10.0)
        series = collector.series(net.topology.border_link)
        assert len(series) == 6     # t=0,2,...,10
        assert collector.total_samples == 6 * len(net.links)

    def test_utilization_reflects_traffic(self):
        net = make_campus("tiny", seed=2)
        collector = TelemetryCollector(net, interval_s=1.0)
        collector.start()
        net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1e12))
        net.run_for(5.0)
        series = collector.series(("acc0_0", "h0_0_0"))
        assert series[-1].utilization > 0.9
        net.finish()

    def test_invalid_interval(self):
        net = make_campus("tiny", seed=3)
        with pytest.raises(ValueError):
            TelemetryCollector(net, interval_s=0)

    def test_stop(self):
        net = make_campus("tiny", seed=4)
        collector = TelemetryCollector(net, interval_s=1.0)
        collector.start()
        net.run_for(3.0)
        collector.stop()
        count = collector.total_samples
        net.run_for(5.0)
        assert collector.total_samples == count


class TestFeaturizer:
    def test_infrastructure_filter_excludes_host_links(self, test_day):
        net, collector, _ = test_day
        featurizer = LinkWindowFeaturizer(window_s=10.0)
        links = {w.link for w in featurizer.windows(collector,
                                                    net.topology)}
        host = net.topology.hosts[0]
        assert not any(host in link for link in links)
        unfiltered = LinkWindowFeaturizer(
            window_s=10.0, infrastructure_only=False)
        all_links = {w.link for w in unfiltered.windows(collector,
                                                        net.topology)}
        assert any(host in link for link in all_links)

    def test_dataset_shape_and_labels(self, test_day):
        net, collector, ground_truth = test_day
        featurizer = LinkWindowFeaturizer(window_s=10.0)
        dataset = featurizer.to_dataset(collector, ground_truth,
                                        net.topology)
        assert dataset.n_features == len(DIAGNOSIS_FEATURES)
        counts = dataset.class_counts()
        assert counts.get("congestion", 0) >= 2
        assert counts.get("link-flap", 0) >= 1
        assert counts.get("link-degraded", 0) >= 2
        assert counts["benign"] > 50

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LinkWindowFeaturizer(window_s=0)


class TestLocalizers:
    def test_learned_finds_all_incident_kinds(self, trained, test_day):
        net, collector, ground_truth = test_day
        diagnoses = trained.diagnose(collector, net.topology)
        score = RootCauseLocalizer.score(diagnoses, ground_truth)
        assert score["recall"] == 1.0
        assert score["precision"] >= 0.8

    def test_learned_beats_rules(self, trained, test_day):
        net, collector, ground_truth = test_day
        learned = RootCauseLocalizer.score(
            trained.diagnose(collector, net.topology), ground_truth)
        rules = RootCauseLocalizer.score(
            RuleBasedLocalizer(window_s=10.0).diagnose(collector,
                                                       net.topology),
            ground_truth)
        assert learned["precision"] >= rules["precision"]

    def test_diagnoses_point_at_the_right_links(self, trained, test_day):
        net, collector, ground_truth = test_day
        flap = [d for d in trained.diagnose(collector, net.topology)
                if d.kind == "link-flap"]
        assert flap
        assert all(set(d.link) == {"dist1", "core1"} for d in flap)

    def test_internal_external_attribution(self, trained, test_day):
        net, collector, _ = test_day
        diagnoses = trained.diagnose(collector, net.topology)
        # the flap and degradation live on internal trunks
        internal_kinds = [d for d in diagnoses
                          if d.kind in ("link-flap", "link-degraded")]
        assert internal_kinds
        assert all(not d.external for d in internal_kinds)
        # any diagnosis on the border uplink is the provider's problem
        for diagnosis in diagnoses:
            if set(diagnosis.link) == set(net.topology.border_link):
                assert diagnosis.external

    def test_unfitted_localizer_raises(self, test_day):
        net, collector, _ = test_day
        with pytest.raises(RuntimeError):
            RootCauseLocalizer().diagnose(collector, net.topology)

    def test_render(self, trained, test_day):
        net, collector, _ = test_day
        diagnosis = trained.diagnose(collector, net.topology)[0]
        text = diagnosis.render()
        assert "confidence" in text
        assert "internal" in text or "EXTERNAL" in text
