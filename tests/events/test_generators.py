"""Attack/incident generators: labels, ground truth, traffic shape."""

import collections

import pytest

from repro.events import (
    DataExfiltration,
    DnsAmplificationAttack,
    GroundTruth,
    PortScanAttack,
    SshBruteForceAttack,
    SynFloodAttack,
)
from repro.netsim import make_campus


def _run_attack(attack_cls, duration=10.0, seed=1, **kwargs):
    net = make_campus("tiny", seed=seed)
    gt = GroundTruth()
    flows = []
    net.add_flow_observer(flows.append)
    attack = attack_cls(net, gt, seed=seed, **kwargs)
    window = attack.schedule(net.now + 1.0, duration)
    net.run_until(net.now + duration + 5.0)
    net.finish()
    return net, gt, window, flows


def test_dns_amplification_shape():
    net, gt, window, flows = _run_attack(
        DnsAmplificationAttack, attack_gbps=0.05, resolvers=6)
    attack_flows = [f for f in flows if f.label == "ddos-dns-amp"]
    assert attack_flows
    # reflection: UDP from port 53, externally sourced, response-heavy
    for flow in attack_flows:
        assert flow.protocol == 17
        assert flow.key.src_port == 53
        assert not flow.src_internal
        assert flow.fwd_fraction > 0.9
    sources = {f.key.src_ip for f in attack_flows}
    assert sources <= set(window.actors)
    assert len(window.victims) == 1


def test_dns_amplification_volume_close_to_target():
    gbps = 0.05
    duration = 10.0
    net, gt, window, flows = _run_attack(
        DnsAmplificationAttack, duration=duration, attack_gbps=gbps)
    attack_bytes = sum(f.transferred_bytes for f in flows
                       if f.label == "ddos-dns-amp")
    target = gbps * 1e9 / 8 * duration
    assert attack_bytes == pytest.approx(target, rel=0.25)


def test_synflood_many_tiny_forward_flows():
    net, gt, window, flows = _run_attack(
        SynFloodAttack, syn_rate_per_s=500.0)
    volleys = [f for f in flows if f.label == "syn-flood"]
    assert len(volleys) >= 50
    assert all(f.fwd_fraction == 1.0 for f in volleys)
    victims = {f.key.dst_ip for f in volleys}
    assert victims == set(window.victims)
    # spoofed sources: many distinct source addresses
    assert len({f.key.src_ip for f in volleys}) > 10


def test_portscan_touches_many_destinations_and_ports():
    net, gt, window, flows = _run_attack(
        PortScanAttack, probes_per_s=40.0)
    probes = [f for f in flows if f.label == "port-scan"]
    assert len(probes) > 100
    assert len({f.key.dst_ip for f in probes}) >= 10
    assert len({f.key.src_ip for f in probes}) == 1
    assert all(f.size_bytes < 100 for f in probes)


def test_bruteforce_repeated_ssh_attempts():
    net, gt, window, flows = _run_attack(
        SshBruteForceAttack, attempts_per_s=5.0)
    attempts = [f for f in flows if f.label == "ssh-bruteforce"]
    assert len(attempts) >= 30
    assert all(f.key.dst_port == 22 for f in attempts)
    assert len({(f.key.src_ip, f.key.dst_ip) for f in attempts}) == 1


def test_exfiltration_outbound_chunks():
    net, gt, window, flows = _run_attack(
        DataExfiltration, duration=30.0, total_bytes=5e6,
        chunk_interval_s=5.0)
    chunks = [f for f in flows if f.label == "exfiltration"]
    assert len(chunks) >= 4
    assert all(f.src_internal for f in chunks)
    assert all(f.fwd_fraction > 0.9 for f in chunks)


def test_ground_truth_label_for():
    net, gt, window, flows = _run_attack(
        DnsAmplificationAttack, attack_gbps=0.02)
    mid = (window.start_time + window.end_time) / 2
    actor = window.actors[0]
    victim = window.victims[0]
    assert gt.label_for(mid, actor, victim) == "ddos-dns-amp"
    assert gt.label_for(mid, "198.51.100.7", "198.51.100.8") == "benign"
    assert gt.label_for(window.end_time + 100.0, actor, victim) == "benign"


def test_ground_truth_active_at_and_kinds():
    net, gt, window, _ = _run_attack(PortScanAttack)
    mid = (window.start_time + window.end_time) / 2
    assert gt.active_at(mid) == [window]
    assert gt.windows_of_kind("scan") == [window]
    assert gt.windows_of_kind("ddos") == []
