"""Performance incidents: congestion, flaps, degradation."""

import pytest

from repro.events import (
    GroundTruth,
    LinkCongestionIncident,
    LinkDegradationIncident,
    LinkFlapIncident,
)
from repro.netsim import make_campus


def test_congestion_saturates_department_uplink():
    net = make_campus("tiny", seed=9)
    gt = GroundTruth()
    incident = LinkCongestionIncident(net, gt, seed=1, department=0,
                                      elephants=3)
    incident.schedule(net.now + 1.0, 10.0)
    net.run_until(net.now + 3.0)
    # The department's hosts share one access switch in the tiny
    # profile; its 1 Gbps uplink is the link the elephants saturate.
    link = net.links.get("acc0_0", "dist0")
    assert link.utilization() > 0.9
    net.finish()


def test_congestion_squeezes_competing_flow():
    net = make_campus("tiny", seed=10)
    gt = GroundTruth()
    victim = net.inject_flow(net.make_flow("h0_0_0", "inet0",
                                           size_bytes=1e14))
    baseline = victim.current_rate_bps
    LinkCongestionIncident(net, gt, seed=1, department=0,
                           elephants=4).schedule(net.now + 1.0, 10.0)
    net.run_until(net.now + 3.0)
    assert victim.current_rate_bps < baseline
    net.finish()


def test_link_flap_fails_and_restores():
    net = make_campus("tiny", seed=11)
    gt = GroundTruth()
    incident = LinkFlapIncident(net, gt, seed=1, flap_period_s=4.0)
    incident.schedule(net.now + 1.0, 8.0)
    link = net.links.get(*incident.link)
    assert link.up
    net.run_until(net.now + 2.0)
    assert not link.up
    net.run_until(net.now + 30.0)
    assert link.up                 # never left down after the window
    net.finish()


def test_degradation_reduces_and_restores_capacity():
    net = make_campus("tiny", seed=12)
    gt = GroundTruth()
    incident = LinkDegradationIncident(net, gt, seed=1, factor=0.1)
    incident.schedule(net.now + 1.0, 5.0)
    link = net.links.get(*incident.link)
    nominal = link.nominal_capacity_bps
    net.run_until(net.now + 2.0)
    assert link.capacity_bps == pytest.approx(0.1 * nominal)
    net.run_until(net.now + 10.0)
    assert link.capacity_bps == pytest.approx(nominal)
    net.finish()


def test_ground_truth_windows_recorded():
    net = make_campus("tiny", seed=13)
    gt = GroundTruth()
    LinkDegradationIncident(net, gt, seed=1).schedule(net.now + 1.0, 5.0)
    LinkCongestionIncident(net, gt, seed=2).schedule(net.now + 10.0, 5.0)
    assert {w.kind for w in gt.windows} == {"degradation", "congestion"}
    net.finish()
