"""NTP amplification variant."""

import pytest

from repro.events import GroundTruth, NtpAmplificationAttack
from repro.netsim import make_campus


def _run(seed=1, **kwargs):
    net = make_campus("tiny", seed=seed)
    gt = GroundTruth()
    flows = []
    net.add_flow_observer(flows.append)
    attack = NtpAmplificationAttack(net, gt, seed=seed, **kwargs)
    window = attack.schedule(net.now + 1.0, 10.0)
    net.run_until(net.now + 16.0)
    net.finish()
    return net, gt, window, flows


def test_reflection_shape():
    net, gt, window, flows = _run(attack_gbps=0.01, reflectors=6)
    attack_flows = [f for f in flows if f.label == "ddos-ntp-amp"]
    assert attack_flows
    for flow in attack_flows:
        assert flow.protocol == 17
        assert flow.key.src_port == 123       # reflected NTP
        assert not flow.src_internal
        assert flow.fwd_fraction > 0.99       # 200x amplification
    assert {f.key.src_ip for f in attack_flows} <= set(window.actors)
    assert window.details["vector"] == "ntp-monlist"


def test_volume_near_target():
    gbps, duration = 0.01, 10.0
    net, gt, window, flows = _run(attack_gbps=gbps)
    attack_bytes = sum(f.transferred_bytes for f in flows
                       if f.label == "ddos-ntp-amp")
    assert attack_bytes == pytest.approx(gbps * 1e9 / 8 * duration,
                                         rel=0.25)


def test_distinct_signature_from_dns_amp():
    """The variant must not look like DNS on the featurizer's axes."""
    from repro.learning.features import FEATURE_NAMES, FeatureConfig, \
        SourceWindowFeaturizer

    net, gt, window, flows = _run(attack_gbps=0.01)
    packets = []
    net2, gt2, w2, f2 = _run(seed=2, attack_gbps=0.01)
    # featurize packets of the second run via the network observer path
    net3 = make_campus("tiny", seed=3)
    net3.add_packet_observer(lambda b: packets.extend(b))
    attack = NtpAmplificationAttack(net3, GroundTruth(), seed=3,
                                    attack_gbps=0.01)
    attack.schedule(net3.now + 1.0, 10.0)
    net3.run_until(net3.now + 16.0)
    net3.finish()
    featurizer = SourceWindowFeaturizer(FeatureConfig(window_s=5.0))
    examples = featurizer.aggregate((p, {}) for p in packets)
    dns_index = FEATURE_NAMES.index("dns_fraction")
    port53_index = FEATURE_NAMES.index("port53_src_fraction")
    attack_examples = [e for e in examples if e.pkts > 50]
    assert attack_examples
    for example in attack_examples:
        vector = example.vector(5.0)
        assert vector[dns_index] == 0.0
        assert vector[port53_index] == 0.0
