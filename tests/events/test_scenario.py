"""Scenario scripting and execution."""

import pytest

from repro.events import DnsAmplificationAttack, PortScanAttack, Scenario, \
    run_scenario
from repro.netsim import make_campus


def test_scenario_runs_steps_and_returns_ground_truth():
    net = make_campus("tiny", seed=20)
    scenario = Scenario("two-attacks", duration_s=60.0)
    scenario.add(DnsAmplificationAttack, 5.0, 5.0, attack_gbps=0.02)
    scenario.add(PortScanAttack, 20.0, 10.0)
    gt = run_scenario(net, scenario, seed=1)
    assert {w.kind for w in gt.windows} == {"ddos", "scan"}
    start = gt.windows[0].start_time
    assert start == pytest.approx(8 * 3600.0 + 5.0)


def test_scenario_rejects_steps_past_duration():
    net = make_campus("tiny", seed=21)
    scenario = Scenario("bad", duration_s=10.0)
    scenario.add(PortScanAttack, 8.0, 5.0)
    with pytest.raises(ValueError):
        run_scenario(net, scenario, seed=1)


def test_scenario_without_background():
    net = make_campus("tiny", seed=22)
    flows = []
    net.add_flow_observer(flows.append)
    scenario = Scenario("quiet", duration_s=30.0, background=False)
    scenario.add(PortScanAttack, 1.0, 5.0, probes_per_s=10.0)
    run_scenario(net, scenario, seed=1)
    assert flows
    assert all(f.label == "port-scan" for f in flows)


def test_scenario_is_seed_reproducible():
    def run(seed):
        net = make_campus("tiny", seed=seed)
        flows = []
        net.add_flow_observer(flows.append)
        scenario = Scenario("day", duration_s=45.0)
        scenario.add(DnsAmplificationAttack, 5.0, 5.0, attack_gbps=0.02)
        run_scenario(net, scenario, seed=seed)
        return [(f.key.src_ip, round(f.transferred_bytes)) for f in flows]

    assert run(5) == run(5)


def test_network_drained_after_scenario():
    net = make_campus("tiny", seed=23)
    scenario = Scenario("s", duration_s=20.0)
    run_scenario(net, scenario, seed=1)
    assert net.flows.active == {}
