"""The canned scenario library."""

import pytest

from repro.events import SCENARIO_LIBRARY, make_scenario, run_scenario
from repro.netsim import make_campus


def test_all_entries_instantiate_and_fit_duration():
    for name in SCENARIO_LIBRARY:
        scenario = make_scenario(name, duration_s=200.0)
        assert scenario.duration_s == 200.0
        for step in scenario.steps:
            assert step.start_offset_s + step.duration_s <= 200.0


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        make_scenario("zombie-apocalypse")


def test_offsets_scale_with_duration():
    short = make_scenario("security", duration_s=100.0)
    long = make_scenario("security", duration_s=400.0)
    for a, b in zip(short.steps, long.steps):
        assert b.start_offset_s == pytest.approx(4 * a.start_offset_s)


@pytest.mark.parametrize("name", ["ddos", "security", "variant",
                                  "synflood"])
def test_security_scenarios_produce_labeled_events(name):
    net = make_campus("tiny", seed=60)
    scenario = make_scenario(name, duration_s=120.0)
    ground_truth = run_scenario(net, scenario, seed=60)
    assert ground_truth.windows
    assert all(w.label != "benign" for w in ground_truth.windows)


def test_incident_scenario_produces_performance_events():
    net = make_campus("tiny", seed=61)
    ground_truth = run_scenario(net, make_scenario("incidents", 200.0),
                                seed=61)
    kinds = {w.kind for w in ground_truth.windows}
    assert kinds == {"congestion", "linkflap", "degradation"}


def test_quiet_day_has_no_events():
    net = make_campus("tiny", seed=62)
    ground_truth = run_scenario(net, make_scenario("quiet", 60.0),
                                seed=62)
    assert ground_truth.windows == []
