"""Complementary sensors: server logs, firewall, config snapshots."""

import pytest

from repro.capture.sensors import ConfigSnapshotSource, FirewallSensor, \
    ServerLogSensor
from repro.events import GroundTruth, PortScanAttack, SshBruteForceAttack
from repro.netsim import make_campus


def test_bruteforce_produces_auth_fail_lines():
    net = make_campus("tiny", seed=30)
    sensor = ServerLogSensor(net, seed=1)
    gt = GroundTruth()
    attack = SshBruteForceAttack(net, gt, seed=2, attempts_per_s=5.0)
    attack.schedule(net.now + 1.0, 10.0)
    net.run_until(net.now + 15.0)
    net.finish()
    fails = [r for r in sensor.records if r.kind == "auth-fail"]
    assert len(fails) >= 30
    attacker_ip = net.topology.ip(attack.attacker)
    assert all(r.attrs["src_ip"] == attacker_ip for r in fails)
    assert all("Failed password" in r.message for r in fails)


def test_firewall_logs_blocked_ports():
    net = make_campus("tiny", seed=31)
    sensor = FirewallSensor(net)
    gt = GroundTruth()
    PortScanAttack(net, gt, seed=2, probes_per_s=30.0,
                   ports=[23, 445, 80]).schedule(net.now + 1.0, 10.0)
    net.run_until(net.now + 15.0)
    net.finish()
    blocked = [r for r in sensor.records if r.kind == "conn-blocked"]
    assert blocked
    assert all(int(r.attrs["dst_port"]) in FirewallSensor.BLOCKED_PORTS
               for r in blocked)
    # port 80 probes must not appear
    assert all(r.attrs["dst_port"] != "80" for r in blocked)


def test_firewall_ignores_internal_traffic():
    net = make_campus("tiny", seed=32)
    sensor = FirewallSensor(net)
    net.inject_flow(net.make_flow("h0_0_0", "srv0", size_bytes=1e4,
                                  dst_port=445))
    net.run_for(10.0)
    net.finish()
    assert sensor.records == []


def test_config_snapshots_periodic():
    net = make_campus("tiny", seed=33)
    sensor = ConfigSnapshotSource(net, interval_s=10.0)
    sensor.start()
    n_links = len(net.links)
    net.run_for(25.0)
    snapshots = [r for r in sensor.records if r.kind == "snapshot"]
    assert len(snapshots) == 3 * n_links     # t=0, 10, 20


def test_sensor_subscription():
    net = make_campus("tiny", seed=34)
    sensor = ServerLogSensor(net, seed=1)
    received = []
    sensor.subscribe(received.append)
    gt = GroundTruth()
    SshBruteForceAttack(net, gt, seed=2).schedule(net.now + 1.0, 5.0)
    net.run_until(net.now + 10.0)
    net.finish()
    assert received == sensor.records
