"""Flow assembly from packets."""

import pytest

from repro.capture.flows import FlowAssembler, FlowRecord
from repro.netsim.packets import PacketRecord, TcpFlags


def _pkt(ts, src, dst, sport, dport, size=1000, flags=0, proto=6,
         label="benign", flow_id=1):
    return PacketRecord(
        timestamp=ts, src_ip=src, dst_ip=dst, src_port=sport,
        dst_port=dport, protocol=proto, size=size, payload_len=size - 40,
        flags=flags, ttl=64, payload=b"", flow_id=flow_id, app="web",
        label=label, direction="out",
    )


def test_bidirectional_assembly():
    asm = FlowAssembler()
    asm.add_packet(_pkt(0.0, "10.0.0.1", "8.8.8.8", 1234, 443,
                        flags=int(TcpFlags.SYN)))
    asm.add_packet(_pkt(0.1, "8.8.8.8", "10.0.0.1", 443, 1234, size=4000))
    asm.add_packet(_pkt(0.2, "10.0.0.1", "8.8.8.8", 1234, 443, size=200))
    records = asm.flush()
    assert len(records) == 1
    r = records[0]
    assert r.src_ip == "10.0.0.1"           # initiator
    assert r.packets_fwd == 2 and r.packets_rev == 1
    assert r.bytes_fwd == 1200 and r.bytes_rev == 4000
    assert r.syn_count == 1
    assert r.duration == pytest.approx(0.2)


def test_distinct_five_tuples_distinct_flows():
    asm = FlowAssembler()
    asm.add_packet(_pkt(0.0, "10.0.0.1", "8.8.8.8", 1234, 443))
    asm.add_packet(_pkt(0.0, "10.0.0.1", "8.8.8.8", 1235, 443))
    assert len(asm.flush()) == 2


def test_idle_timeout_splits_flow():
    asm = FlowAssembler(idle_timeout_s=10.0)
    asm.add_packet(_pkt(0.0, "10.0.0.1", "8.8.8.8", 1234, 443))
    asm.add_packet(_pkt(100.0, "10.0.0.1", "8.8.8.8", 1234, 443))
    assert len(asm.flush()) == 2


def test_label_propagates_from_any_packet():
    asm = FlowAssembler()
    asm.add_packet(_pkt(0.0, "9.9.9.9", "10.0.0.1", 53, 4444))
    asm.add_packet(_pkt(0.1, "9.9.9.9", "10.0.0.1", 53, 4444,
                        label="ddos-dns-amp"))
    assert asm.flush()[0].label == "ddos-dns-amp"


def test_service_and_byte_ratio():
    r = FlowRecord(src_ip="a", dst_ip="b", src_port=50000, dst_port=53,
                   protocol=17, first_seen=0, last_seen=1,
                   bytes_fwd=100, bytes_rev=4000)
    assert r.service == "dns"
    assert r.byte_ratio == pytest.approx(40.0)
    zero = FlowRecord(src_ip="a", dst_ip="b", src_port=1, dst_port=2,
                      protocol=6, first_seen=0, last_seen=0,
                      bytes_fwd=0, bytes_rev=500)
    assert zero.service == "other"
    assert zero.byte_ratio == 500.0


def test_records_nondestructive_vs_flush():
    asm = FlowAssembler()
    asm.add_packet(_pkt(0.0, "10.0.0.1", "8.8.8.8", 1234, 443))
    assert len(asm.records()) == 1
    assert len(asm.records()) == 1        # still there
    assert len(asm.flush()) == 1
    assert asm.records() == asm.finished


def test_min_ttl_tracked():
    asm = FlowAssembler()
    p1 = _pkt(0.0, "10.0.0.1", "8.8.8.8", 1234, 443)
    p2 = _pkt(0.1, "10.0.0.1", "8.8.8.8", 1234, 443)
    p2.ttl = 40
    asm.add_packets([p1, p2])
    assert asm.flush()[0].min_ttl == 40
