"""Capture file format round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.capture.pcapng import PcapFormatError, iter_packets, \
    read_packets, write_packets
from repro.netsim.packets import PacketRecord


def _packet(ts=1.5, payload=b"\x16\x03\x03hello", app="web",
            label="benign", direction="out"):
    return PacketRecord(
        timestamp=ts, src_ip="10.1.0.10", dst_ip="93.184.216.34",
        src_port=40001, dst_port=443, protocol=6, size=1500,
        payload_len=1460, flags=0x18, ttl=64, payload=payload,
        flow_id=77, app=app, label=label, direction=direction,
    )


def test_round_trip_single(tmp_path):
    path = tmp_path / "one.rpcp"
    original = _packet()
    write_packets(path, [original])
    restored = read_packets(path)
    assert len(restored) == 1
    got = restored[0]
    for attr in ("timestamp", "src_ip", "dst_ip", "src_port", "dst_port",
                 "protocol", "size", "payload_len", "flags", "ttl",
                 "payload", "flow_id", "app", "label", "direction"):
        assert getattr(got, attr) == getattr(original, attr)


def test_round_trip_many_and_streaming(tmp_path):
    path = tmp_path / "many.rpcp"
    originals = [_packet(ts=float(i)) for i in range(500)]
    size = write_packets(path, originals)
    assert size > 500 * 40
    streamed = list(iter_packets(path))
    assert [p.timestamp for p in streamed] == [float(i) for i in range(500)]


def test_empty_file_round_trip(tmp_path):
    path = tmp_path / "empty.rpcp"
    write_packets(path, [])
    assert read_packets(path) == []


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.rpcp"
    path.write_bytes(b"NOPE\x01\x00\x00\x00")
    with pytest.raises(PcapFormatError):
        read_packets(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "trunc.rpcp"
    write_packets(path, [_packet()])
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(PcapFormatError):
        read_packets(path)


@settings(max_examples=25, deadline=None)
@given(
    ts=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    payload=st.binary(max_size=64),
    label=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=20,
    ),
)
def test_property_round_trip(tmp_path_factory, ts, payload, label):
    path = tmp_path_factory.mktemp("pcap") / "prop.rpcp"
    original = _packet(ts=ts, payload=payload, label=label)
    write_packets(path, [original])
    got = read_packets(path)[0]
    assert got.timestamp == ts
    assert got.payload == payload
    assert got.label == label
