"""Border tap wiring."""

from repro.capture.engine import CaptureEngine
from repro.capture.tap import BorderTap
from repro.netsim import make_campus


def test_tap_defaults_to_border_link():
    net = make_campus("tiny", seed=40)
    tap = BorderTap(net)
    assert tap.link == net.topology.border_link


def test_tap_feeds_engine_and_subscribers():
    net = make_campus("tiny", seed=41)
    tap = BorderTap(net, CaptureEngine())
    received = []
    tap.subscribe(lambda batch: received.extend(batch))
    net.inject_flow(net.make_flow("h0_0_0", "inet0", size_bytes=1e5))
    net.run_for(30.0)
    net.finish()
    assert received
    assert tap.engine.stats.packets_captured == len(received)


def test_tap_on_internal_link_sees_internal_flows():
    net = make_campus("tiny", seed=42)
    tap = BorderTap(net, link=("acc0_0", "dist0"))
    received = []
    tap.subscribe(lambda batch: received.extend(batch))
    net.inject_flow(net.make_flow("h0_0_0", "srv0", size_bytes=1e5))
    net.run_for(30.0)
    net.finish()
    assert received
