"""Capture engine: losslessness, capacity losses, stats."""

import pytest

from repro.capture.engine import CaptureEngine
from repro.netsim.packets import PacketRecord


def _packet(ts, size=1500):
    return PacketRecord(
        timestamp=ts, src_ip="9.9.9.9", dst_ip="10.0.0.1",
        src_port=53, dst_port=4444, protocol=17, size=size,
        payload_len=size - 28, flags=0, ttl=60, payload=b"",
        flow_id=1, app="dns", label="benign", direction="in",
    )


def test_default_engine_is_lossless():
    engine = CaptureEngine()
    packets = [_packet(i * 0.001) for i in range(1000)]
    captured = engine.ingest(packets)
    assert len(captured) == 1000
    assert engine.stats.loss_rate == 0.0
    assert engine.lossless


def test_capacity_enforced_per_bin():
    # 1 Mbps capacity, no buffer: 125 kB per 1s bin.
    engine = CaptureEngine(capacity_gbps=0.001, buffer_bytes=0)
    packets = [_packet(0.5, size=25_000) for _ in range(10)]   # 250 kB
    captured = engine.ingest(packets)
    assert len(captured) == 5
    assert engine.stats.packets_dropped == 5
    assert engine.stats.loss_rate == pytest.approx(0.5)


def test_buffer_absorbs_burst():
    engine = CaptureEngine(capacity_gbps=0.001, buffer_bytes=125_000)
    packets = [_packet(0.5, size=25_000) for _ in range(10)]
    captured = engine.ingest(packets)
    assert len(captured) == 10


def test_bins_are_independent():
    engine = CaptureEngine(capacity_gbps=0.001, buffer_bytes=0)
    first_bin = [_packet(0.2, size=125_000)]
    second_bin = [_packet(1.2, size=125_000)]
    assert len(engine.ingest(first_bin)) == 1
    assert len(engine.ingest(second_bin)) == 1


def test_subscribers_receive_captured_only():
    engine = CaptureEngine(capacity_gbps=0.001, buffer_bytes=0)
    received = []
    engine.subscribe(lambda batch: received.extend(batch))
    engine.ingest([_packet(0.5, size=125_000), _packet(0.5, size=125_000)])
    assert len(received) == 1


def test_empty_batch_noop():
    engine = CaptureEngine()
    assert engine.ingest([]) == []
    assert engine.stats.packets_offered == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        CaptureEngine(capacity_gbps=0.0)


def test_byte_stats_accumulate():
    engine = CaptureEngine()
    engine.ingest([_packet(0.0, size=1000), _packet(0.1, size=500)])
    assert engine.stats.bytes_offered == 1500
    assert engine.stats.bytes_captured == 1500
    assert engine.stats.byte_loss_rate == 0.0
