"""On-the-fly metadata extraction."""

import pytest

from repro.capture.metadata import MetadataExtractor
from repro.netsim import make_campus
from repro.netsim.flows import Flow
from repro.netsim.packets import FiveTuple, PacketRecord
from repro.netsim.traffic.payloads import (
    dns_amplification_payload,
    dns_query_payload,
    http_payload,
    ssh_payload,
    tls_payload,
)


def _packet(payload, sport=40000, dport=443, proto=6, direction="out",
            src="10.1.0.10", dst="93.184.216.34"):
    return PacketRecord(
        timestamp=0.0, src_ip=src, dst_ip=dst, src_port=sport,
        dst_port=dport, protocol=proto, size=1500, payload_len=1460,
        flags=0, ttl=64, payload=payload, flow_id=5, app="x",
        label="benign", direction=direction,
    )


def _flow(fid=5):
    return Flow(flow_id=fid, key=FiveTuple("a", "b", 1, 2, 17),
                src_node="a", dst_node="b", size_bytes=100)


@pytest.fixture(scope="module")
def extractor():
    return MetadataExtractor()


def test_dns_query_tags(extractor):
    payload = dns_query_payload(_flow(), 0, "fwd")
    tags = extractor.extract(_packet(payload, sport=40000, dport=53,
                                     proto=17))
    assert tags["app_proto"] == "dns"
    assert tags["dns_qr"] == "query"
    assert "dns_qname" in tags
    assert tags["service"] == "dns"


def test_dns_any_response_tags(extractor):
    payload = dns_amplification_payload(_flow(), 0, "rev")
    # reversed direction: wire packet from resolver port 53
    tags = extractor.extract(_packet(payload, sport=53, dport=40000,
                                     proto=17, direction="in"))
    assert tags["dns_qr"] == "response"


def test_dns_any_query_qtype(extractor):
    payload = dns_amplification_payload(_flow(), 0, "fwd")
    tags = extractor.extract(_packet(payload, sport=40000, dport=53,
                                     proto=17))
    assert tags["dns_qtype"] == "ANY"


def test_tls_sni(extractor):
    payload = tls_payload(_flow(), 0, "fwd")
    tags = extractor.extract(_packet(payload))
    assert tags["app_proto"] == "tls"
    assert tags["tls_record"] == "client_hello"
    assert "." in tags.get("tls_sni", "")


def test_http_tags(extractor):
    payload = http_payload(_flow(), 0, "fwd")
    tags = extractor.extract(_packet(payload, dport=80))
    assert tags["app_proto"] == "http"
    assert tags["http_method"] == "GET"
    assert "http_host" in tags


def test_ssh_banner(extractor):
    tags = extractor.extract(_packet(ssh_payload(_flow(), 0, "fwd"),
                                     dport=22))
    assert tags["app_proto"] == "ssh"
    assert tags["ssh_banner"].startswith("SSH-2.0")


def test_empty_payload_basic_tags(extractor):
    tags = extractor.extract(_packet(b""))
    assert tags["proto"] == "tcp"
    assert tags["direction"] == "out"
    assert "app_proto" not in tags


def test_department_attribution():
    net = make_campus("tiny", seed=1)
    extractor = MetadataExtractor(net.topology)
    host = net.topology.hosts[0]
    ip = net.topology.ip(host)
    tags = extractor.extract(_packet(b"", src=ip, direction="out"))
    assert tags.get("department") == net.topology.department(host)


class TestExtractBatch:
    """Batch extraction must be observably identical to extract()."""

    def _mixed_packets(self):
        flow = _flow()
        return [
            _packet(dns_query_payload(flow, 0, "fwd"), sport=40000,
                    dport=53, proto=17, direction="in"),
            _packet(dns_amplification_payload(flow, 0, "fwd"), sport=53,
                    dport=40000, proto=17, direction="in"),
            _packet(tls_payload(flow, 0, "fwd")),
            _packet(http_payload(flow, 0, "fwd"), dport=80),
            _packet(ssh_payload(flow, 0, "fwd"), dport=22),
            _packet(b""),
            _packet(b"", proto=1),
            _packet(b"220 mail", dport=25, direction="in"),
        ] * 3

    def test_matches_sequential_extract(self, extractor):
        packets = self._mixed_packets()
        assert extractor.extract_batch(packets) == \
            [extractor.extract(p) for p in packets]

    def test_with_topology_matches_sequential(self):
        net = make_campus("tiny", seed=1)
        batch_extractor = MetadataExtractor(net.topology)
        ip = net.topology.ip(net.topology.hosts[0])
        packets = [_packet(b"", src=ip, direction="out"),
                   _packet(b"", dst=ip, direction="in"),
                   _packet(b"")] * 2
        assert batch_extractor.extract_batch(packets) == \
            [batch_extractor.extract(p) for p in packets]

    def test_returned_dicts_are_independent(self, extractor):
        packets = [_packet(b""), _packet(b"")]
        first, second = extractor.extract_batch(packets)
        first["mutated"] = "yes"
        assert "mutated" not in second
        assert "mutated" not in extractor.extract_batch(packets)[0]
