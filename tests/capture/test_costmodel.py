"""Capture cost model vs the paper's §5 anchors."""

import pytest

from repro.capture.costmodel import CaptureCostModel


@pytest.fixture(scope="module")
def model():
    return CaptureCostModel()


def test_paper_anchor_a_few_hundred_k(model):
    """'a typical campus network (10 Gbps upstream, ~a week of data)
    can deploy this technology today for a few $100K'."""
    estimate = model.estimate(link_gbps=10.0, utilization=0.35,
                              retention_days=7.0)
    assert 50_000 <= estimate.total_usd <= 300_000


def test_cost_proportional_to_link_speed(model):
    one = model.estimate(link_gbps=10.0)
    two = model.estimate(link_gbps=20.0)
    assert two.total_usd == pytest.approx(2 * one.total_usd, rel=0.01)


def test_storage_proportional_to_retention(model):
    week = model.estimate(retention_days=7.0)
    month = model.estimate(retention_days=28.0)
    assert month.storage_tb == pytest.approx(4 * week.storage_tb, rel=0.01)
    # appliance cost does not change with retention
    assert month.appliance_usd == week.appliance_usd


def test_bytes_per_day_arithmetic(model):
    # 10 Gbps at 100%: 1.25 GB/s * 86400 s = 108 TB/day
    assert model.bytes_per_day(10.0, 1.0) == pytest.approx(108e12)


def test_metadata_overhead_accounted(model):
    estimate = model.estimate()
    assert estimate.metadata_overhead_tb > 0
    assert estimate.metadata_overhead_tb < estimate.storage_tb


def test_utilization_bounds(model):
    with pytest.raises(ValueError):
        model.bytes_per_day(10.0, 1.5)
    with pytest.raises(ValueError):
        model.bytes_per_day(10.0, -0.1)
