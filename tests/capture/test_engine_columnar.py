"""Columnar capture path: ``ingest_columns`` == ``ingest``, exactly.

The fluid engine hands the tap :class:`PacketColumns` batches; the
capture engine must shed load, account stats, and extract metadata
*identically* to the record path — same drops, same tags, same
subscriber deliveries — or capacity experiments stop being comparable
across engines.
"""

import numpy as np
import pytest

from repro.capture.engine import CaptureEngine
from repro.capture.metadata import MetadataExtractor
from repro.netsim.campus import make_fluid_campus
from repro.netsim.packets import PacketColumns, PacketRecord


def _fluid_batch(n_users=400, seed=2, duration=120.0) -> PacketColumns:
    engine = make_fluid_campus("tiny", n_users=n_users, seed=seed,
                               tick_seconds=duration)
    batches = []
    engine.add_packet_observer(batches.append)
    engine.run(duration)
    assert len(batches) == 1 and len(batches[0]) > 200
    return batches[0]


def _records(cols: PacketColumns):
    return list(cols.iter_records())


def _assert_same_records(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra == rb


class TestIngestColumns:
    def test_lossless_path_matches_record_path(self):
        cols = _fluid_batch()
        col_engine, rec_engine = CaptureEngine(), CaptureEngine()
        captured = col_engine.ingest_columns(cols)
        expected = rec_engine.ingest(_records(cols))
        assert isinstance(captured, PacketColumns)
        _assert_same_records(_records(captured), expected)
        assert col_engine.stats.packets_captured \
            == rec_engine.stats.packets_captured
        assert col_engine.stats.bytes_offered \
            == rec_engine.stats.bytes_offered

    def test_finite_capacity_drops_identically(self):
        cols = _fluid_batch()
        kwargs = dict(capacity_gbps=0.0005, buffer_bytes=10_000)
        col_engine = CaptureEngine(**kwargs)
        rec_engine = CaptureEngine(**kwargs)
        captured = col_engine.ingest_columns(cols)
        expected = rec_engine.ingest(_records(cols))
        assert rec_engine.stats.packets_dropped > 0   # else trivial
        _assert_same_records(_records(captured), expected)
        for fld in ("packets_offered", "packets_captured",
                    "packets_dropped", "bytes_offered",
                    "bytes_captured", "bytes_dropped"):
            assert getattr(col_engine.stats, fld) \
                == getattr(rec_engine.stats, fld), fld

    def test_subscribers_receive_columns(self):
        cols = _fluid_batch()
        engine = CaptureEngine()
        seen = []
        engine.subscribe(seen.append)
        engine.ingest_columns(cols)
        assert len(seen) == 1
        assert isinstance(seen[0], PacketColumns)
        assert len(seen[0]) == len(cols)

    def test_empty_batch_noop(self):
        engine = CaptureEngine()
        empty = _fluid_batch().slice(0, 0)
        captured = engine.ingest_columns(empty)
        assert len(captured) == 0
        assert engine.stats.packets_offered == 0

    def test_fault_injector_falls_back_to_record_path(self):
        from repro.chaos.faults import (FaultInjector, FaultKind,
                                        FaultPlan, FaultSpec)

        cols = _fluid_batch(n_users=100, duration=60.0)
        plan = FaultPlan("tap", seed=1, specs=(
            FaultSpec(FaultKind.TAP_DROP, rate=0.1),))
        engine = CaptureEngine(fault_injector=FaultInjector(plan))
        captured = engine.ingest_columns(cols)
        # Whatever the faults did, the columnar wrapper must return
        # columns and keep the stats coherent (offered counts the
        # post-perturbation batch, as on the record path).
        assert isinstance(captured, PacketColumns)
        assert engine.stats.packets_fault_dropped > 0
        assert engine.stats.packets_offered \
            == len(cols) - engine.stats.packets_fault_dropped
        assert len(captured) == engine.stats.packets_captured

    def test_backpressure_accounting_accepts_columns(self):
        engine = CaptureEngine()
        cols = _fluid_batch(n_users=100, duration=60.0)
        engine.account_backpressure(cols)
        assert engine.stats.packets_backpressure_dropped == len(cols)
        assert engine.stats.bytes_backpressure_dropped \
            == pytest.approx(float(cols.size.sum()))


class TestExtractColumns:
    def test_matches_extract_batch_row_for_row(self):
        cols = _fluid_batch()
        extractor = MetadataExtractor()
        tags_cols = extractor.extract_columns(cols)
        tags_rows = MetadataExtractor().extract_batch(_records(cols))
        assert tags_cols == tags_rows

    def test_copies_are_independent(self):
        cols = _fluid_batch(n_users=100, duration=60.0)
        tags = MetadataExtractor().extract_columns(cols)
        tags[0]["marker"] = "mine"
        assert "marker" not in tags[1]

    def test_record_batch_roundtrip(self):
        # from_records(iter_records(x)) == x for the fluid schema.
        cols = _fluid_batch(n_users=100, duration=60.0)
        back = PacketColumns.from_records(_records(cols))
        assert len(back) == len(cols)
        assert np.allclose(np.asarray(back.timestamp),
                           np.asarray(cols.timestamp))
        _assert_same_records(_records(back)[:50], _records(cols)[:50])
