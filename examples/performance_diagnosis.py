#!/usr/bin/env python3
"""Pinpointing performance problems (§3) — and knowing who to call.

Runs incident days (congestion, link flap, silent degradation) on the
campus, trains a root-cause localizer on SNMP-style telemetry, and
diagnoses a fresh day — each finding tagged internal (campus IT's
problem) or external (notify the upstream provider).

Run:  python examples/performance_diagnosis.py
"""

from repro.analysis import Table
from repro.diagnosis import RootCauseLocalizer, RuleBasedLocalizer, \
    TelemetryCollector
from repro.events import (
    LinkCongestionIncident,
    LinkDegradationIncident,
    LinkFlapIncident,
    Scenario,
    run_scenario,
)
from repro.netsim import make_campus
from repro.xai import tree_to_rules
from repro.diagnosis.features import DIAGNOSIS_FEATURES


def incident_day(seed: int):
    net = make_campus("tiny", seed=seed)
    collector = TelemetryCollector(net, interval_s=1.0)
    collector.start()
    day = Scenario("incident-day", duration_s=240.0)
    day.add(LinkCongestionIncident, 30.0, 30.0, department=0)
    day.add(LinkFlapIncident, 100.0, 24.0, flap_period_s=8.0,
            link=("dist1", "core1"))
    day.add(LinkDegradationIncident, 170.0, 40.0, factor=0.1)
    ground_truth = run_scenario(net, day, seed=seed)
    return net, collector, ground_truth


def main() -> None:
    print("collecting two labeled incident days for training...")
    train_days = [incident_day(seed) for seed in (5, 15)]
    localizer = RootCauseLocalizer(window_s=10.0).fit_many(
        [(coll, gt, net.topology) for net, coll, gt in train_days])

    print("\nthe localizer, as the NOC reads it:")
    print(tree_to_rules(localizer.model, DIAGNOSIS_FEATURES,
                        localizer.class_names).render())

    print("\ndiagnosing a fresh day...")
    net, collector, ground_truth = incident_day(7)
    diagnoses = localizer.diagnose(collector, net.topology)
    for diagnosis in diagnoses:
        print(" ", diagnosis.render())

    table = Table("localization quality (fresh day)",
                  ["method", "recall", "precision", "diagnoses"])
    learned = RootCauseLocalizer.score(diagnoses, ground_truth)
    rules = RootCauseLocalizer.score(
        RuleBasedLocalizer(window_s=10.0).diagnose(collector,
                                                   net.topology),
        ground_truth)
    table.row("learned (tree)", learned["recall"], learned["precision"],
              learned["diagnoses"])
    table.row("threshold playbook", rules["recall"], rules["precision"],
              rules["diagnoses"])
    table.print()

    external = [d for d in diagnoses if d.external]
    print(f"\n{len(external)} finding(s) would trigger a call to the "
          f"upstream provider; the rest are campus-internal.")


if __name__ == "__main__":
    main()
