#!/usr/bin/env python3
"""The IT organisation's privacy toolkit (§3/§5).

Shows the data store operating under each privacy preset, a
k-anonymity audit before an internal data release, a differentially
private aggregate release with budget accounting, and the role-based
access arbiter turning requests away.

Run:  python examples/privacy_audit.py
"""

from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.datastore import Query
from repro.datastore.query import Aggregation
from repro.events import DnsAmplificationAttack, Scenario, \
    SshBruteForceAttack
from repro.privacy import (
    AccessArbiter,
    AccessDenied,
    DpAccountant,
    KAnonymityAuditor,
    PrivacyLevel,
    Role,
)


def collect_under(level: PrivacyLevel) -> CampusPlatform:
    platform = CampusPlatform(PlatformConfig(
        campus_profile="tiny", seed=11, privacy_level=level))
    day = Scenario("day", duration_s=120.0)
    day.add(DnsAmplificationAttack, 20.0, 20.0, attack_gbps=0.05)
    day.add(SshBruteForceAttack, 60.0, 30.0)
    platform.collect(day)
    return platform


def main() -> None:
    # 1. What each preset stores.
    table = Table("what enters the store at each privacy level",
                  ["level", "packets", "payload_bytes", "example_src_ip"])
    for level in PrivacyLevel:
        platform = collect_under(level)
        sample = platform.store.query(Query(collection="packets", limit=1))
        table.row(
            level.value,
            platform.store.count("packets"),
            sum(len(s.record.payload) for s in platform.store.query(
                Query(collection="packets", limit=200))),
            sample[0].record.src_ip if sample else "-",
        )
    table.print()

    platform = collect_under(PrivacyLevel.PREFIX_PRESERVING)

    # 2. k-anonymity audit of a proposed flow-record release.
    flows = platform.store.query(Query(collection="flows",
                                       order_by_time=False))
    auditor = KAnonymityAuditor(k=5)
    getter = lambda stored, field: getattr(stored.record, field)
    report = auditor.audit(flows, ["dst_port", "protocol"], getter=getter)
    print(f"\nk-anonymity audit of (dst_port, protocol): "
          f"{report.distinct_combinations} combos, "
          f"{report.violating_combinations} below k=5 "
          f"({report.violating_records} records would be suppressed)")

    # 3. DP aggregate release with an epsilon ledger.
    accountant = DpAccountant(total_epsilon=1.0, seed=3)
    per_service = platform.store.aggregate(
        Query(collection="flows", order_by_time=False),
        Aggregation(key_fn=lambda s: s.record.service, reducer="count"))
    noisy = accountant.release_histogram(per_service, epsilon=0.4,
                                         description="per-service counts")
    release = Table("DP release: flows per service (eps=0.4)",
                    ["service", "true", "released"])
    for service in sorted(per_service):
        release.row(service, per_service[service], noisy[service])
    release.print()
    print(f"epsilon spent {accountant.spent:.2f}, "
          f"remaining {accountant.remaining:.2f}")

    # 4. The access arbiter in action.
    arbiter = AccessArbiter(platform.store,
                            now_fn=lambda: platform.network.now)
    print("\naccess arbitration:")
    for role, collection in ((Role.IT_OPERATOR, "packets"),
                             (Role.RESEARCHER, "logs"),
                             (Role.STUDENT, "flows"),
                             (Role.EXTERNAL, "flows")):
        try:
            rows = arbiter.query(role, f"user-{role.value}",
                                 Query(collection=collection, limit=3))
            print(f"  {role.value:18s} -> {collection:8s}: "
                  f"{len(rows)} rows")
        except AccessDenied as exc:
            print(f"  {role.value:18s} -> {collection:8s}: DENIED ({exc})")
    print(f"audit log entries: {len(arbiter.audit_log)}")


if __name__ == "__main__":
    main()
