#!/usr/bin/env python3
"""Network automation as RL, then back to the switch (Park-style).

Trains a tabular Q-learning agent on the DDoS-mitigation environment,
extracts a 3-deep decision-tree policy with VIPER, compares policies,
and compiles the tree into a P4-style program — the full Fig. 2 loop
for a *control* task rather than a classification task.

Run:  python examples/rl_mitigation.py
"""

import numpy as np

from repro.analysis import Table
from repro.deploy import SwitchResourceModel, compile_tree, emit_p4
from repro.deploy.compiler import FeatureQuantizer
from repro.learning.rl import (
    ClassifierPolicy,
    DdosMitigationEnv,
    GreedyQPolicy,
    QLearningAgent,
    RandomPolicy,
    StaticThresholdPolicy,
    evaluate_policy,
)
from repro.xai import tree_to_rules, viper_extract

OBS = ["dns_rate", "response_ratio", "any_fraction", "victim_conc"]
ACTIONS = ["allow", "rate_limit", "drop_any"]


def main() -> None:
    env = DdosMitigationEnv(episode_len=120, seed=0)

    print("training Q-learning agent (400 episodes)...")
    agent = QLearningAgent(n_actions=env.action_space.n, seed=1,
                           epsilon_decay=0.99)
    history = agent.train(env, episodes=400)
    print(f"  states visited: {agent.states_visited}, "
          f"last-20-episode reward: {history.mean_tail():.2f}")

    print("extracting tree policy with VIPER...")
    extraction = viper_extract(agent, env, iterations=5,
                               episodes_per_iter=10, max_depth=3, seed=2)
    print(f"  {extraction.dataset_size} DAgger states, action fidelity "
          f"{extraction.action_fidelity:.3f}")

    table = Table("mitigation policies (25 eval episodes)",
                  ["policy", "mean_reward", "attack_admitted",
                   "benign_dropped"])
    for name, policy in (
        ("q-learning", GreedyQPolicy(agent)),
        ("viper tree", ClassifierPolicy(extraction.student)),
        ("static threshold", StaticThresholdPolicy()),
        ("do nothing", StaticThresholdPolicy(volume_threshold=9e9,
                                             any_threshold=9e9)),
        ("random", RandomPolicy(env.action_space.n, seed=3)),
    ):
        ev = evaluate_policy(env, policy, episodes=25)
        table.row(name, ev.mean_reward, ev.attack_admitted_fraction,
                  ev.benign_dropped_fraction)
    table.print()

    print("\nthe extracted policy, as rules:")
    rules = tree_to_rules(extraction.student, feature_names=OBS,
                          class_names=ACTIONS)
    print(rules.render())

    # Compile for the switch.
    probe = np.random.default_rng(0).uniform(size=(200, len(OBS)))
    compiled = compile_tree(extraction.student, OBS,
                            FeatureQuantizer.for_features(probe),
                            class_names=ACTIONS,
                            program_name="rl-mitigator")
    fit = SwitchResourceModel().fit([compiled])
    print(f"\ncompiled: {compiled.n_entries} entries, "
          f"{compiled.tcam_entries} TCAM entries, fits switch: {fit.fits}")
    print("\ngenerated P4 (first 30 lines):")
    print("\n".join(emit_p4(compiled.program).splitlines()[:30]))


if __name__ == "__main__":
    main()
