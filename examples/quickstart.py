#!/usr/bin/env python3
"""Quickstart: your campus network as a data source.

Builds an instrumented campus, runs one day of traffic with a labeled
DNS-amplification attack, and walks the top-down research workflow:
query the data store, extract features, train a detector — no external
dataset required.

Run:  python examples/quickstart.py
"""

from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.datastore import Query
from repro.events import DnsAmplificationAttack, Scenario
from repro.learning import train_and_evaluate, train_test_split


def main() -> None:
    # 1. Stand up an instrumented campus: border tap, lossless capture,
    #    prefix-preserving anonymization, metadata extraction, sensors.
    platform = CampusPlatform(PlatformConfig(campus_profile="small",
                                             seed=42))

    # 2. One day in the life: background traffic plus a labeled attack.
    day = Scenario("first-day", duration_s=180.0)
    day.add(DnsAmplificationAttack, start_offset_s=40.0, duration_s=30.0,
            attack_gbps=0.1)
    collection = platform.collect(day)
    print(f"captured {collection.packets_captured} packets "
          f"({collection.capture_loss_rate:.1%} loss), "
          f"{collection.flows_stored} flow records, "
          f"{collection.logs_stored} sensor log lines")

    # 3. The store is queryable and indexed: e.g. every DNS ANY packet.
    any_packets = platform.store.query(Query(
        collection="packets", tags={"dns_qtype": "ANY"}, limit=5))
    print(f"\nfirst DNS ANY-query packets in the store "
          f"({len(any_packets)} shown):")
    for stored in any_packets:
        record = stored.record
        print(f"  t={record.timestamp:9.2f}  {record.src_ip:>15} -> "
              f"{record.dst_ip:<15}  {stored.tags.get('dns_qname', '')}")

    # 4. Top-down feature engineering: one call, no re-measurement.
    dataset = platform.build_dataset()
    print(f"\nfeature matrix: {len(dataset)} windows x "
          f"{dataset.n_features} features, classes {dataset.class_counts()}")

    # 5. Train and evaluate a detector.
    binary = dataset.binarize("ddos-dns-amp")
    train, test = train_test_split(binary, test_fraction=0.3, seed=0)
    table = Table("detector comparison", ["model", "accuracy", "f1"])
    for model_name in ("tree", "forest", "boosting", "logistic"):
        result = train_and_evaluate(model_name, train, test)
        table.row(model_name, result.metrics["accuracy"],
                  result.metrics.get("f1", 0.0))
    table.print()


if __name__ == "__main__":
    main()
