#!/usr/bin/env python3
"""The paper's Figure 2, end to end: road to deployment.

(i)   train a heavyweight black-box model offline on the data store;
(ii)  extract a small, interpretable decision tree (XAI);
(iii) compile it into a P4-style switch program and check resources;
(iv)  road-test it shadow -> canary -> full on fresh campus days, then
      deploy and watch the fast control loop mitigate a live attack.

Run:  python examples/ddos_roadtest.py
"""

from repro.analysis import Table
from repro.core import CampusPlatform, ControlLoopHarness, DevelopmentLoop, \
    PlatformConfig
from repro.core.devloop import make_roadtest_factory
from repro.deploy.switch import SwitchConfig
from repro.events import DnsAmplificationAttack, Scenario
from repro.testbed import standard_guardrails


def attack_day(seed: int) -> Scenario:
    day = Scenario("attack-day", duration_s=180.0)
    day.add(DnsAmplificationAttack, 40.0, 40.0, attack_gbps=0.1)
    return day


def main() -> None:
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=7))
    platform.collect(attack_day(7))
    dataset = platform.build_dataset().binarize("ddos-dns-amp")
    print(f"training data: {len(dataset)} windows, "
          f"{dataset.class_counts()}")

    # The development loop: teacher -> student -> compile -> road-test.
    switch_config = SwitchConfig(window_s=5.0, grace_s=2.0,
                                 confidence_threshold=0.9)
    loop = DevelopmentLoop(teacher_name="boosting", student_max_depth=4)
    roadtest = make_roadtest_factory(
        platform, attack_day, switch_config,
        guardrails=standard_guardrails(max_false_positive_rate=0.4,
                                       min_recall=0.2,
                                       max_collateral_fraction=0.8),
    )
    tool, report = loop.develop(dataset, tool_name="amp-detector",
                                roadtest_factory=roadtest, seed=7)

    print(f"\nteacher ({loop.teacher_name}): "
          f"{report.teacher_result.metrics}")
    print(f"student: depth {report.distillation.depth}, "
          f"{report.distillation.n_leaves} leaves, "
          f"fidelity {report.holdout_fidelity.label_fidelity:.3f}")
    print(f"compiled: {tool.compiled.n_entries} entries -> "
          f"{tool.compiled.tcam_entries} TCAM entries; "
          f"fits switch: {report.resource_fit.fits}")

    print("\nthe deployable model, as the operator reads it:")
    print(tool.rules.render())

    phases = Table("road-test phases", ["phase", "precision", "recall",
                                        "collateral", "verdict"])
    for phase in report.roadtest.phases:
        phases.row(phase.phase.value, phase.metrics["precision"],
                   phase.metrics["recall"],
                   phase.metrics["collateral_fraction"],
                   "pass" if phase.passed else "ROLLBACK")
    phases.print()
    print(f"\ndeployed to production: {report.roadtest.deployed}")

    if report.roadtest.deployed:
        harness = ControlLoopHarness(
            tool, attack_day, lambda seed: platform.fresh_network(seed))
        live = harness.run(seed=99, placement="data_plane")
        print(f"\nlive control loop: recall "
              f"{live.quality.recall:.2f}, attack admitted "
              f"{live.attack_admitted_fraction:.1%}, collateral "
              f"{live.collateral.collateral_fraction:.1%}, mean reaction "
              f"{live.reaction_latency_s:.1f}s after window start")

    print("\nfirst 40 lines of the generated P4 program:")
    print("\n".join(tool.p4_source.splitlines()[:40]))


if __name__ == "__main__":
    main()
