#!/usr/bin/env python3
"""Continual learning from an always-on data source (§6 / Puffer).

A detector trained on DNS-amplification days meets a new attack
variant — a low-rate NTP monlist reflection — and silently misses it.
Because the campus keeps capturing and the IT organisation labels the
incident in the store, one retraining pass recovers the variant
without losing the original task.

Run:  python examples/continual_learning.py
"""

from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.events import DnsAmplificationAttack, NtpAmplificationAttack, \
    Scenario
from repro.learning.dataset import Dataset
from repro.learning.metrics import precision, recall
from repro.learning.models import RandomForestClassifier

CLASSES = ["benign", "amplification"]
ALL_LABELS = ["benign", "ddos-dns-amp", "ddos-ntp-amp"]


def collect_day(seed: int, attack: str) -> Dataset:
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=seed))
    day = Scenario(f"{attack}-day", duration_s=180.0)
    if attack == "dns":
        day.add(DnsAmplificationAttack, 30.0, 30.0, attack_gbps=0.08)
    else:
        day.add(NtpAmplificationAttack, 30.0, 30.0, attack_gbps=0.004)
    platform.collect(day, seed=seed)
    dataset = platform.build_dataset(class_names=ALL_LABELS)
    return Dataset(dataset.X, (dataset.y != 0).astype(int),
                   dataset.feature_names, CLASSES, keys=dataset.keys)


def main() -> None:
    print("week 1: DNS amplification days — train the detector")
    dns_train = collect_day(1314, "dns")
    model = RandomForestClassifier(n_estimators=30, max_depth=10,
                                   random_state=0)
    model.fit(dns_train.X, dns_train.y)

    print("week 2: attackers switch to low-rate NTP monlist reflection")
    ntp_day = collect_day(1316, "ntp")
    stale_recall = recall(ntp_day.y, model.predict(ntp_day.X))
    print(f"  stale detector recall on the variant: {stale_recall:.2f}")

    print("the incident is labeled in the store; retraining...")
    pooled = Dataset.concatenate([dns_train, ntp_day])
    retrained = RandomForestClassifier(n_estimators=30, max_depth=10,
                                       random_state=0)
    retrained.fit(pooled.X, pooled.y)

    table = Table("continual learning under attack drift",
                  ["model", "day", "recall", "precision"])
    for name, m in (("stale (dns-only)", model),
                    ("retrained (store)", retrained)):
        for day_name, day in (("fresh dns day", collect_day(1315, "dns")),
                              ("fresh ntp day", collect_day(1317, "ntp"))):
            pred = m.predict(day.X)
            table.row(name, day_name, recall(day.y, pred),
                      precision(day.y, pred))
    table.print()

    print("\nthe loop in Figure 1 is circular on purpose: the store "
          "keeps filling, and models retire into it.")


if __name__ == "__main__":
    main()
