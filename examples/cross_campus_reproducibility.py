#!/usr/bin/env python3
"""§5's reproducibility story: open-source the algorithm, not the data.

Each campus keeps its data store private; what travels between
universities is the *learning algorithm*.  This example trains the
same open-sourced detector on three differently-shaped campuses and
cross-evaluates, producing the confidence-building accuracy matrix the
paper envisions.

Run:  python examples/cross_campus_reproducibility.py
"""

import numpy as np

from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.events import DnsAmplificationAttack, Scenario
from repro.learning import train_and_evaluate, train_test_split

CAMPUSES = ["tiny", "teaching", "residential"]


def local_dataset(profile: str, seed: int):
    """What one university's researchers build from their own store."""
    platform = CampusPlatform(PlatformConfig(campus_profile=profile,
                                             seed=seed))
    day = Scenario(f"{profile}-day", duration_s=150.0)
    day.add(DnsAmplificationAttack, 30.0, 25.0, attack_gbps=0.08)
    platform.collect(day)
    return platform.build_dataset(
        class_names=["benign", "ddos-dns-amp"]).binarize("ddos-dns-amp")


def main() -> None:
    models, holdouts = {}, {}
    for i, profile in enumerate(CAMPUSES):
        dataset = local_dataset(profile, seed=100 + 10 * i)
        train, test = train_test_split(dataset, test_fraction=0.3, seed=0)
        result = train_and_evaluate("forest", train, test)
        models[profile] = result.model
        holdouts[profile] = test
        print(f"{profile:12s}: {len(dataset)} windows, local accuracy "
              f"{result.metrics['accuracy']:.3f}")

    table = Table("cross-campus accuracy (train row, test column)",
                  ["train\\test", *CAMPUSES])
    for train_campus in CAMPUSES:
        row = []
        for test_campus in CAMPUSES:
            test = holdouts[test_campus]
            accuracy = float(np.mean(
                models[train_campus].predict(test.X) == test.y))
            row.append(accuracy)
        table.row(train_campus, *row)
    table.print()

    print("\nreading the matrix: a strong diagonal says each campus can "
          "reproduce the result locally; strong off-diagonals say the "
          "algorithm, not one campus's quirks, carries it.")


if __name__ == "__main__":
    main()
