"""Observability overhead benchmarks.

The contract repro.obs sells is *pay-for-what-you-use*: with no
Observability attached, every instrumented hot path is one ``is not
None`` check.  ``test_perf_obs_disabled`` is the committed proof — it
runs the same ingest+query workload the substrate suite gates, through
the instrumented code, with obs off; CI holds it to the same 3x
median gate, so an accidental always-on cost shows up as a regression
here before anyone turns the feature on.  The enabled twin and the
primitive benchmarks bound what switching obs on actually costs.
"""

import numpy as np
import pytest

from repro.datastore import DataStore, Query
from repro.netsim.packets import PacketRecord
from repro.obs import Observability
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.tracing import Tracer


def _packets(n):
    return [PacketRecord(
        timestamp=i * 0.001, src_ip=f"9.9.{i % 250}.{i % 200}",
        dst_ip="10.0.0.1", src_port=443, dst_port=40_000 + (i % 1000),
        protocol=6, size=1400, payload_len=1372, flags=0, ttl=60,
        payload=b"\x16\x03\x03\x01www.example.edu", flow_id=i, app="web",
        label="benign", direction="in",
    ) for i in range(n)]


def _ingest_and_query(obs):
    store = DataStore(obs=obs)
    store.ingest_packets(_PACKETS)
    return store.query(Query(collection="packets", time_range=(5.0, 6.0),
                             where={"dst_ip": "10.0.0.1"}))


_PACKETS = _packets(20_000)


def test_perf_obs_disabled(benchmark):
    """Instrumented ingest+query with obs off: the None-check path."""
    result = benchmark(lambda: _ingest_and_query(None))
    assert 900 <= len(result) <= 1100


def test_perf_obs_enabled(benchmark):
    """Same workload with metrics + spans recording."""
    def run():
        return _ingest_and_query(Observability())

    result = benchmark(run)
    assert 900 <= len(result) <= 1100


def test_perf_obs_histogram_observe_many(benchmark):
    registry = MetricsRegistry()
    hist = registry.histogram("repro_bench_seconds",
                              buckets=LATENCY_BUCKETS_S)
    samples = np.abs(np.random.default_rng(7).normal(1e-3, 5e-4, 50_000))
    benchmark(lambda: hist.observe_many(samples))
    assert hist.count >= 50_000


def test_perf_obs_span_stack(benchmark):
    """1k nested-ish spans per round on a fresh tracer."""
    def run():
        tracer = Tracer(max_spans=10_000)
        for _ in range(500):
            with tracer.span("bench.outer"):
                with tracer.span("bench.inner"):
                    pass
        return tracer

    tracer = benchmark(run)
    assert len(tracer.finished()) == 1000
