"""E3 (§2's running example): DNS-amplification detection + mitigation.

"the network event in question could be a DDoS attack in the form of a
DNS amplification attack ... and the corresponding action could be
'drop attack traffic on ingress if confidence in detection is at least
90%'".

Table A: offline detection quality — black-box teacher vs distilled
deployable tree vs the operator's static thresholds, on held-out
windows.  Table B: closed-loop mitigation with the 90% confidence gate
— attack traffic admitted, collateral damage, reaction time.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.baselines import ThresholdDetector
from repro.core import ControlLoopHarness
from repro.deploy.switch import SwitchConfig
from repro.learning import train_and_evaluate, train_test_split
from repro.learning.metrics import f1_score, precision, recall
from repro.netsim import make_campus


def test_e3a_detection_quality(ddos_dataset, benchmark):
    train, test = train_test_split(ddos_dataset, test_fraction=0.3,
                                   seed=BENCH_SEED)

    def run_models():
        results = {}
        for name in ("boosting", "forest", "tree", "logistic"):
            results[name] = train_and_evaluate(name, train, test)
        threshold = ThresholdDetector()
        pred = threshold.predict(test.X)
        results["static-threshold"] = {
            "precision": precision(test.y, pred),
            "recall": recall(test.y, pred),
            "f1": f1_score(test.y, pred),
        }
        return results

    results = benchmark.pedantic(run_models, rounds=1, iterations=1)

    table = Table("E3a DNS-amplification detection (held-out windows)",
                  ["model", "precision", "recall", "f1"])
    for name, result in results.items():
        metrics = result if isinstance(result, dict) else result.metrics
        table.row(name, metrics.get("precision", 0.0),
                  metrics.get("recall", 0.0), metrics.get("f1", 0.0))
    table.print()

    learned_f1 = results["forest"].metrics["f1"]
    static_f1 = results["static-threshold"]["f1"]
    assert learned_f1 >= 0.8
    assert learned_f1 >= static_f1   # learning wins or ties


def test_e3b_closed_loop_mitigation(bench_tool, benchmark):
    tool, _ = bench_tool

    def scenario_builder(seed):
        return attack_day(duration_s=180.0, attack_gbps=0.08,
                          include_scan=False)

    harness = ControlLoopHarness(
        tool, scenario_builder, lambda seed: make_campus("tiny", seed=seed))

    def run_both():
        enforcing = harness.run(
            seed=BENCH_SEED + 7,
            config=SwitchConfig(confidence_threshold=0.9, window_s=5.0,
                                grace_s=2.0, mitigation_duration_s=120.0))
        shadow = harness.run(
            seed=BENCH_SEED + 7,
            config=SwitchConfig(confidence_threshold=0.9, window_s=5.0,
                                grace_s=2.0, shadow=True))
        return enforcing, shadow

    enforcing, shadow = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = Table("E3b closed-loop mitigation (conf >= 0.90 to act)",
                  ["mode", "recall", "precision", "attack_admitted",
                   "collateral", "reaction_s"])
    for name, report in (("enforcing", enforcing), ("shadow", shadow)):
        table.row(name, report.quality.recall, report.quality.precision,
                  report.attack_admitted_fraction,
                  report.collateral.collateral_fraction,
                  report.reaction_latency_s)
    table.print()

    assert shadow.attack_admitted_fraction == pytest.approx(1.0)
    assert enforcing.attack_admitted_fraction < 0.75
    assert enforcing.quality.recall > 0.5
    assert enforcing.collateral.collateral_fraction < 0.5
