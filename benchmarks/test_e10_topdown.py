"""E10 (§2 data problem): top-down vs bottom-up researcher workflow.

"these researchers often spend more time on designing and running
experiments to collect the data needed for extracting the features
required for the development of their learning models" — vs the
top-down workflow where "no new measurement experiments and/or data
collection efforts are required".

The bench plays a researcher iterating on feature windows (1s, 2s, 5s,
10s, 20s).  Bottom-up re-runs the campus day for every iteration;
top-down collects once and re-queries the store.  The reproduced
shape: identical final model quality, with bottom-up paying one full
collection per iteration.
"""

import time

import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.baselines import bottom_up_iteration_cost, top_down_iteration_cost
from repro.core import CampusPlatform, PlatformConfig
from repro.learning import train_and_evaluate, train_test_split

WINDOW_SWEEP = [1.0, 2.0, 5.0, 10.0, 20.0]
DAY_SECONDS = 150.0


def _fresh_platform(seed):
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=seed))
    platform.collect(attack_day(duration_s=DAY_SECONDS,
                                include_scan=False), seed=seed)
    return platform


def _evaluate(platform, window_s):
    dataset = platform.build_dataset(
        window_s=window_s).binarize("ddos-dns-amp")
    train, test = train_test_split(dataset, test_fraction=0.3,
                                   seed=BENCH_SEED)
    return train_and_evaluate("tree", train, test).metrics.get("f1", 0.0)


def test_e10_workflow_comparison(benchmark):
    def run_both():
        # Top-down: one collection, every iteration is a query.
        start = time.perf_counter()
        platform = _fresh_platform(BENCH_SEED + 31)
        collect_wall = time.perf_counter() - start
        start = time.perf_counter()
        top_down_f1 = [
            (w, _evaluate(platform, w)) for w in WINDOW_SWEEP
        ]
        top_down_compute = time.perf_counter() - start

        # Bottom-up: re-collect for every iteration.
        bottom_up_f1 = []
        bottom_up_wall = 0.0
        for w in WINDOW_SWEEP:
            start = time.perf_counter()
            fresh = _fresh_platform(BENCH_SEED + 31)
            bottom_up_wall += time.perf_counter() - start
            bottom_up_f1.append((w, _evaluate(fresh, w)))
        return (top_down_f1, top_down_compute, collect_wall,
                bottom_up_f1, bottom_up_wall)

    (top_down_f1, top_down_compute, collect_wall, bottom_up_f1,
     bottom_up_wall) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    iterations = len(WINDOW_SWEEP)
    top_cost = top_down_iteration_cost(iterations, DAY_SECONDS,
                                       top_down_compute)
    bottom_cost = bottom_up_iteration_cost(iterations, DAY_SECONDS,
                                           bottom_up_wall)

    table = Table("E10 top-down (data store) vs bottom-up (re-collect) "
                  f"feature iteration, {iterations} iterations",
                  ["workflow", "collection_runs", "campus_days_collected",
                   "collection_wall_s", "best_f1"])
    table.row("top-down", top_cost.collection_runs,
              top_cost.collection_days, collect_wall,
              max(f for _, f in top_down_f1))
    table.row("bottom-up", bottom_cost.collection_runs,
              bottom_cost.collection_days, bottom_up_wall,
              max(f for _, f in bottom_up_f1))
    table.print()

    sweep = Table("E10 window-size sweep (identical data, both workflows)",
                  ["window_s", "f1_top_down", "f1_bottom_up"])
    for (w, f_top), (_, f_bottom) in zip(top_down_f1, bottom_up_f1):
        sweep.row(w, f_top, f_bottom)
    sweep.print()

    # same science, 5x the collection cost
    assert bottom_cost.collection_runs == iterations
    assert top_cost.collection_runs == 1
    assert bottom_up_wall > 2 * collect_wall
    for (_, f_top), (_, f_bottom) in zip(top_down_f1, bottom_up_f1):
        assert f_top == pytest.approx(f_bottom, abs=1e-9)
