"""E2 (Figure 2): slow development loop vs fast control loop.

Two tables:

* per-placement sense/infer/react latency decomposition and the attack
  bytes a 10 Gbps DNS amplification lands before the loop closes —
  the §2 argument for data-plane inference;
* the measured wall time of each development-loop stage vs the
  control-loop reaction time, showing the timescale separation the
  figure draws (offline/slow vs online/fast).
"""

import pytest

from repro.analysis import Table
from repro.deploy.placement import PLACEMENTS, attack_bytes_before_reaction, \
    loop_latency


def test_e2_placement_latency(benchmark):
    window_s = 1.0
    rows = benchmark.pedantic(
        lambda: [
            (name,
             placement.sense_latency_s,
             placement.infer_latency_s,
             placement.react_latency_s,
             loop_latency(name, window_s),
             attack_bytes_before_reaction(name, attack_gbps=10.0,
                                          sensing_window_s=window_s))
            for name, placement in PLACEMENTS.items()
        ],
        rounds=1, iterations=1)

    table = Table("E2a (Fig.2) sense/infer/react latency by placement "
                  "(1s sensing window, 10 Gbps attack)",
                  ["placement", "sense_s", "infer_s", "react_s",
                   "loop_s", "attack_bytes_before_react"])
    for row in rows:
        table.row(*row)
    table.print()

    latency = {r[0]: r[4] for r in rows}
    assert latency["data_plane"] < latency["control_plane"] < \
        latency["cloud"]
    # with the sensing window excluded the gap is orders of magnitude
    assert loop_latency("data_plane", 0.0) < 1e-5
    assert loop_latency("control_plane", 0.0) > 1e-2


def test_e2_timescale_separation(bench_tool, benchmark):
    tool, report = bench_tool
    dev_seconds = sum(report.stage_seconds.values())
    # the loop machinery itself (one verdict applied in-pipeline),
    # excluding the sensing window the operator chooses
    control_loop_s = benchmark.pedantic(
        lambda: loop_latency("data_plane", sensing_window_s=0.0),
        rounds=1, iterations=1)

    table = Table("E2b (Fig.2) development loop vs control loop",
                  ["loop", "stage", "seconds"])
    for stage, seconds in report.stage_seconds.items():
        table.row("development (slow)", stage, seconds)
    table.row("development (slow)", "total", dev_seconds)
    table.row("control (fast)", "sense+infer+react (per verdict)",
              control_loop_s)
    table.print()

    # the paper's premise: the two loops live on different timescales
    # (offline training in seconds-to-hours vs sub-ms in-network loop)
    assert dev_seconds > 1000 * control_loop_s
