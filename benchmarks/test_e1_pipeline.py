"""E1 (Figure 1): the full platform pipeline, end to end.

Campus -> lossless capture -> privacy transform -> data store ->
top-down featurization -> black-box teacher -> XAI student -> compiled
switch program.  The table reports the artifact produced at every
stage; the claim reproduced is that *one* instrumented campus supports
the entire research workflow with no external data.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.core import CampusPlatform, DevelopmentLoop, PlatformConfig


def _run_pipeline():
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=BENCH_SEED + 1))
    collection = platform.collect(attack_day(duration_s=180.0),
                                  seed=BENCH_SEED + 1)
    dataset = platform.build_dataset()
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    tool, report = loop.develop(dataset.binarize("ddos-dns-amp"),
                                seed=BENCH_SEED)
    return platform, collection, dataset, tool, report


def test_e1_full_pipeline(benchmark):
    platform, collection, dataset, tool, report = benchmark.pedantic(
        _run_pipeline, rounds=1, iterations=1)

    table = Table("E1 (Fig.1) campus platform pipeline",
                  ["stage", "artifact", "value"])
    table.row("capture", "packets captured", collection.packets_captured)
    table.row("capture", "loss rate", collection.capture_loss_rate)
    table.row("store", "flow records", collection.flows_stored)
    table.row("store", "sensor log records", collection.logs_stored)
    table.row("store", "bytes (est)", platform.store.bytes_estimate())
    table.row("featurize", "windows (rows)", len(dataset))
    table.row("featurize", "attack rows",
              sum(v for k, v in dataset.class_counts().items()
                  if k != "benign"))
    table.row("teacher", "holdout accuracy",
              report.teacher_result.metrics["accuracy"])
    table.row("student", "fidelity to teacher",
              report.holdout_fidelity.label_fidelity)
    table.row("student", "leaves", report.distillation.n_leaves)
    table.row("compile", "table entries", tool.compiled.n_entries)
    table.row("compile", "TCAM entries (expanded)",
              tool.compiled.tcam_entries)
    table.row("compile", "fits Tofino-class switch",
              report.resource_fit.fits)
    table.print()

    assert collection.capture_loss_rate == 0.0
    assert collection.packets_captured > 1000
    assert report.teacher_result.metrics["accuracy"] > 0.8
    assert report.holdout_fidelity.label_fidelity > 0.8
    assert report.resource_fit.fits
