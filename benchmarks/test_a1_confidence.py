"""A1 (ablation of §2's ">= 90% confidence" knob).

The paper's example action is "drop attack traffic on ingress if
confidence in detection is at least 90%" — is that gate a real knob?
Two findings:

* for a *well-separated* model (the bench tool), every firing leaf is
  at confidence 1.0, so thresholds 0.5..0.99 behave identically —
  distilled students are confidence-saturated and the gate only
  distinguishes "act" from "never act";
* for a *capacity-starved* model (depth-1 tree with large leaves, the
  kind a resource-constrained switch might force), leaf confidence is
  0.82 — a 0.9 gate silently disables mitigation while 0.8 keeps it:
  the operator's threshold choice interacts with model capacity.

The sweep table is the operator's tuning curve for the second model.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.core import ControlLoopHarness
from repro.core.devloop import DeployableTool
from repro.deploy.compiler import FeatureQuantizer, compile_tree
from repro.deploy.p4gen import emit_p4
from repro.deploy.switch import SwitchConfig
from repro.learning.models import DecisionTreeClassifier
from repro.netsim import make_campus
from repro.xai.rules import tree_to_rules

THRESHOLDS = [0.5, 0.8, 0.9, 0.99, 1.01]


def _coarse_tool(dataset) -> DeployableTool:
    """A deliberately capacity-starved deployable model."""
    student = DecisionTreeClassifier(max_depth=1, min_samples_leaf=40)
    student.fit(dataset.X, dataset.y)
    quantizer = FeatureQuantizer.for_features(dataset.X)
    compiled = compile_tree(student, dataset.feature_names, quantizer,
                            class_names=dataset.class_names,
                            program_name="coarse-detector")
    return DeployableTool(
        name="coarse-detector",
        teacher=student,
        student=student,
        compiled=compiled,
        p4_source=emit_p4(compiled.program),
        rules=tree_to_rules(student, dataset.feature_names,
                            dataset.class_names),
        switch_config=SwitchConfig(),
        class_names=list(dataset.class_names),
        feature_names=list(dataset.feature_names),
    )


def test_a1_confidence_threshold_sweep(ddos_dataset, benchmark):
    tool = _coarse_tool(ddos_dataset)
    firing = [entry.params["confidence"]
              for entry in tool.compiled.classify_table.entries
              if entry.params["class_id"] == 1]
    model_confidence = max(firing) if firing else 0.0

    def scenario_builder(seed):
        return attack_day(duration_s=150.0, attack_gbps=0.08,
                          include_scan=False)

    harness = ControlLoopHarness(
        tool, scenario_builder,
        lambda seed: make_campus("tiny", seed=seed))

    def sweep():
        rows = []
        for threshold in THRESHOLDS:
            report = harness.run(
                seed=BENCH_SEED + 17,
                config=SwitchConfig(window_s=5.0, grace_s=2.0,
                                    confidence_threshold=threshold,
                                    mitigation_duration_s=60.0))
            rows.append((threshold, report.quality.recall,
                         report.attack_admitted_fraction,
                         report.collateral.collateral_fraction,
                         report.detections))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(f"A1 action-confidence gate sweep "
                  f"(model leaf confidence = {model_confidence:.3f})",
                  ["threshold", "recall", "attack_admitted",
                   "collateral", "detections"])
    for row in rows:
        table.row(*row)
    table.print()

    admitted = {r[0]: r[2] for r in rows}
    # below the model's confidence ceiling, the gate acts...
    assert model_confidence < 0.9
    assert admitted[0.5] < 0.75
    assert admitted[0.8] < 0.75
    # ...above it, mitigation is silently disabled
    assert admitted[0.9] == pytest.approx(1.0)
    assert admitted[1.01] == pytest.approx(1.0)
