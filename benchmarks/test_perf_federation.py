"""Federated query fan-out benchmarks.

The coordinator scatters one gateway call per site over a thread pool,
so with a real round-trip on every boundary crossing the federation
should pay ~one RTT per query regardless of how many sites answer.
That is the scaling story these benchmarks pin: the 4-site federated
count must land within 2x the single-site latency (sequential scatter
would cost ~4x), asserted from the same measurements the regression
gate records into ``BENCH_substrate.json``.

The boundary clock here is real (``time.sleep``) so the RTT actually
elapses; ``epsilon_total`` is set absurdly high because benchmark
rounds repeat the query and must never trip a site's budget refusal.
Each site's day is deliberately tiny: the RTT overlaps across the
fan-out threads but per-site query compute serializes under the GIL,
so the parallelism claim is only measurable while the (parallel) RTT
dominates the (serial) compute.
"""

import time

from repro.datastore import Query
from repro.federation import (CampusSite, FederationConfig,
                              FederationCoordinator)

import pytest

RTT_S = 0.05            # real per-call boundary round-trip
MAX_FANOUT_RATIO = 2.0  # 4-site query <= 2x single-site latency

ALL_PACKETS = Query(collection="packets")

#: median-free last-round latencies, recorded by the benchmark tests so
#: the fan-out assertion reuses their measurements.
_TIMINGS = {}


class _WallClock:
    sleep = staticmethod(time.sleep)


def _federation(n_sites):
    config = FederationConfig(
        n_sites=n_sites, seed=7, campus_profile="tiny",
        duration_s=10.0, epsilon_total=1e9, rtt_s=RTT_S,
        timeout_s=30.0)
    sites = [CampusSite(spec, config, clock=_WallClock())
             for spec in config.site_specs()]
    for site in sites:
        site.run_day()
    return FederationCoordinator(sites, config), sites


@pytest.fixture(scope="module")
def single_site():
    coordinator, sites = _federation(1)
    yield coordinator
    for site in sites:
        site.close()


@pytest.fixture(scope="module")
def four_sites():
    coordinator, sites = _federation(4)
    yield coordinator
    for site in sites:
        site.close()


def test_perf_federation_query_1site(benchmark, single_site):
    def query():
        wall = time.perf_counter()
        answer = single_site.query_count(ALL_PACKETS, epsilon=0.1)
        _TIMINGS["query_1site"] = time.perf_counter() - wall
        return answer

    answer = benchmark(query)
    assert answer.n_answered == 1 and not answer.degraded


def test_perf_federation_query_4site(benchmark, four_sites):
    def query():
        wall = time.perf_counter()
        answer = four_sites.query_count(ALL_PACKETS, epsilon=0.1)
        _TIMINGS["query_4site"] = time.perf_counter() - wall
        return answer

    answer = benchmark(query)
    assert answer.n_answered == 4 and not answer.degraded


def test_perf_federation_histogram_4site(benchmark, four_sites):
    answer = benchmark(four_sites.query_histogram, ALL_PACKETS, "app",
                       epsilon=0.1)
    assert answer.bins and answer.n_answered == 4


def test_perf_federation_assemble_4site(benchmark, four_sites):
    dataset, report = benchmark(four_sites.assemble)
    assert report.n_answered == 4 and len(dataset) == report.rows


def test_perf_federation_fanout_parallelism():
    """Scatter must parallelize: 4 sites within 2x of one site."""
    one = _TIMINGS.get("query_1site")
    four = _TIMINGS.get("query_4site")
    assert one and four, "query benchmarks must run first"
    assert one >= RTT_S and four >= RTT_S  # the RTT really elapsed
    assert four <= MAX_FANOUT_RATIO * one, (
        f"4-site federated query took {four:.3f}s vs single-site "
        f"{one:.3f}s — fan-out is not parallel")
