"""E14 (§6, extension): continual learning from an always-on data source.

The paper's related work leans on Puffer ("continual learning improves
Internet video streaming") and its own Fig. 1 loop is circular: models
are retrained from the same campus data store that keeps filling.  The
bench plays out the drift scenario that motivates this: a detector
trained on DNS-amplification days faces a *new attack variant* (a
low-rate NTP monlist reflection — different port, no DNS payload
signature, two orders of magnitude less volume).  The reproduced
shape: the stale model's recall on the variant collapses; one
retraining pass over the (newly labeled) store recovers it, without
touching the DNS performance.
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.events import DnsAmplificationAttack, NtpAmplificationAttack, \
    Scenario
from repro.learning.dataset import Dataset
from repro.learning.metrics import precision, recall
from repro.learning.models import RandomForestClassifier

CLASSES = ["benign", "amplification"]
ALL_LABELS = ["benign", "ddos-dns-amp", "ddos-ntp-amp"]


def _day(seed: int, attack: str):
    """One collected day; returns the binary (benign/amp) dataset."""
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=seed))
    scenario = Scenario(f"{attack}-day", duration_s=180.0)
    if attack == "dns":
        scenario.add(DnsAmplificationAttack, 30.0, 30.0,
                     attack_gbps=0.08, resolvers=8)
    else:
        scenario.add(NtpAmplificationAttack, 30.0, 30.0,
                     attack_gbps=0.004, reflectors=8)
    platform.collect(scenario, seed=seed)
    dataset = platform.build_dataset(class_names=ALL_LABELS)
    y = (dataset.y != 0).astype(int)
    return Dataset(dataset.X, y, dataset.feature_names, CLASSES,
                   keys=dataset.keys)


def test_e14_drift_and_retraining(benchmark):
    def run_all():
        dns_train = _day(BENCH_SEED + 80, "dns")
        dns_test = _day(BENCH_SEED + 81, "dns")
        ntp_first = _day(BENCH_SEED + 82, "ntp")   # the variant appears
        ntp_test = _day(BENCH_SEED + 83, "ntp")    # and keeps coming

        stale = RandomForestClassifier(n_estimators=30, max_depth=10,
                                       random_state=BENCH_SEED)
        stale.fit(dns_train.X, dns_train.y)

        # IT labels the new incident in the store; retrain on both days.
        pooled = Dataset.concatenate([dns_train, ntp_first])
        retrained = RandomForestClassifier(n_estimators=30, max_depth=10,
                                           random_state=BENCH_SEED)
        retrained.fit(pooled.X, pooled.y)

        rows = []
        for model_name, model in (("stale (dns-only)", stale),
                                  ("retrained (store)", retrained)):
            for day_name, day in (("dns day", dns_test),
                                  ("ntp-variant day", ntp_test)):
                pred = model.predict(day.X)
                rows.append((model_name, day_name,
                             recall(day.y, pred), precision(day.y, pred)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("E14 continual learning under attack-variant drift",
                  ["model", "evaluation_day", "recall", "precision"])
    for row in rows:
        table.row(*row)
    table.print()

    results = {(r[0], r[1]): r[2] for r in rows}
    # the stale model still handles what it was trained for...
    assert results[("stale (dns-only)", "dns day")] > 0.9
    # ...but collapses on the variant
    assert results[("stale (dns-only)", "ntp-variant day")] < 0.3
    # retraining from the store recovers the variant...
    assert results[("retrained (store)", "ntp-variant day")] > 0.8
    # ...without giving up the original task
    assert results[("retrained (store)", "dns day")] > 0.9
