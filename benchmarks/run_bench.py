"""Run the substrate benchmarks and maintain ``BENCH_substrate.json``.

The committed file at the repo root records two things:

- ``baseline``: per-test stats frozen when the file was first seeded
  (the pre-columnar seed numbers).  Never overwritten by later runs.
- ``results``: per-test stats from the most recent ``run_bench.py``
  invocation.

Modes
-----
``python benchmarks/run_bench.py``
    Full run; rewrites ``results`` (seeding ``baseline`` on first run).
``python benchmarks/run_bench.py --quick``
    Few rounds, short max-time; what CI runs.
``python benchmarks/run_bench.py --check [--threshold 3.0]``
    Runs the benchmarks, then exits non-zero if any test's fresh median
    exceeds ``threshold`` x the committed ``results`` median (the
    regression gate; it does not rewrite the committed file).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_substrate.json"
SUITE = Path(__file__).resolve().parent / "test_perf_substrate.py"
STAT_KEYS = ("min", "median", "mean", "stddev", "rounds")


def run_suite(quick: bool) -> dict:
    """Run pytest-benchmark on the suite; return {test: stats}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        out_path = Path(fh.name)
    cmd = [
        sys.executable, "-m", "pytest", str(SUITE), "-q",
        f"--benchmark-json={out_path}",
    ]
    if quick:
        cmd += ["--benchmark-min-rounds=3", "--benchmark-max-time=0.5",
                "--benchmark-warmup=off"]
    env_src = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark suite failed (exit {proc.returncode})")
    raw = json.loads(out_path.read_text())
    out_path.unlink(missing_ok=True)
    results = {}
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        results[bench["name"]] = {k: stats[k] for k in STAT_KEYS}
    return results


def load_committed() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {}


def check(results: dict, committed: dict, threshold: float) -> int:
    reference = committed.get("results") or committed.get("baseline") or {}
    if not reference:
        print("no committed results to check against; skipping gate")
        return 0
    failed = 0
    for name, stats in sorted(results.items()):
        ref = reference.get(name)
        if ref is None:
            print(f"  {name}: no committed reference (new test), skipped")
            continue
        ratio = stats["median"] / ref["median"] if ref["median"] else 0.0
        verdict = "OK" if ratio <= threshold else "REGRESSION"
        print(f"  {name}: median {stats['median'] * 1e6:.1f}us vs committed "
              f"{ref['median'] * 1e6:.1f}us ({ratio:.2f}x) {verdict}")
        if ratio > threshold:
            failed += 1
    if failed:
        print(f"{failed} benchmark(s) regressed more than {threshold:.1f}x")
        return 1
    print(f"all benchmarks within {threshold:.1f}x of committed medians")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="few rounds, short max-time (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="regression gate against the committed file "
                             "(does not rewrite it)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="allowed median slowdown factor for --check")
    args = parser.parse_args(argv)

    results = run_suite(quick=args.quick)
    committed = load_committed()
    if args.check:
        return check(results, committed, args.threshold)

    payload = {
        "suite": "benchmarks/test_perf_substrate.py",
        "units": "seconds",
        "baseline": committed.get("baseline") or results,
        "results": results,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
