"""Run the substrate benchmarks and maintain ``BENCH_substrate.json``.

The committed file at the repo root records two things:

- ``baseline``: per-test stats frozen the first time each test was
  benchmarked.  Existing entries are never overwritten by later runs;
  a test that is missing from ``baseline`` (added after the file was
  seeded) gets its entry backfilled from the current run.
- ``results``: per-test stats from the most recent ``run_bench.py``
  invocation, *merged* over the committed results — a partial run
  (``--suite``) updates only the tests it ran and never clobbers the
  rest.  Suites in the committed file that a run did not execute are
  reported as SKIPPED (and listed under ``skipped_suites``) so a
  partial run can never silently masquerade as a full one.

Write-mode runs also emit ``BENCH_substrate.jsonl`` next to the JSON
file: one ``bench`` record per test in the :mod:`repro.obs.export`
JSON-lines schema, so ``repro obs``-style tooling can consume
benchmark history with the same reader as pipeline observability.

Modes
-----
``python benchmarks/run_bench.py``
    Full run; merge-writes ``results`` and backfills ``baseline``.
``python benchmarks/run_bench.py --quick``
    Few rounds, short max-time; what CI runs.
``python benchmarks/run_bench.py --check [--threshold 3.0]``
    Runs the benchmarks, then exits non-zero if any test's fresh median
    exceeds ``threshold`` x the committed ``results`` median, **or if a
    test has no committed reference at all** — a missing baseline is a
    gate failure, not a silent skip (seed it with a plain run first).
``python benchmarks/run_bench.py --suite parallel``
    Restrict to one suite (substring match on the file name).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_substrate.json"
BENCH_JSONL = REPO_ROOT / "BENCH_substrate.jsonl"
SUITES = (
    Path(__file__).resolve().parent / "test_perf_substrate.py",
    Path(__file__).resolve().parent / "test_perf_parallel.py",
    Path(__file__).resolve().parent / "test_perf_obs.py",
    Path(__file__).resolve().parent / "test_perf_planner.py",
    Path(__file__).resolve().parent / "test_perf_tiers.py",
    Path(__file__).resolve().parent / "test_perf_netsim.py",
    Path(__file__).resolve().parent / "test_perf_federation.py",
)
STAT_KEYS = ("min", "median", "mean", "stddev", "rounds")


def run_suite(suite: Path, quick: bool) -> dict:
    """Run pytest-benchmark on one suite; return {test: stats}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        out_path = Path(fh.name)
    cmd = [
        sys.executable, "-m", "pytest", str(suite), "-q",
        f"--benchmark-json={out_path}",
    ]
    if quick:
        cmd += ["--benchmark-min-rounds=3", "--benchmark-max-time=0.5",
                "--benchmark-warmup=off"]
    env_src = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"benchmark suite {suite.name} failed "
                         f"(exit {proc.returncode})")
    raw = json.loads(out_path.read_text())
    out_path.unlink(missing_ok=True)
    results = {}
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        results[bench["name"]] = {k: stats[k] for k in STAT_KEYS}
    return results


def run_suites(quick: bool, only: str = "") -> "tuple[dict, list]":
    """Run the selected suites; returns ``(by_suite, obs_records)``.

    ``by_suite`` maps suite file name -> {test: stats} for exactly the
    suites that ran, so the merge step can tell fresh results from
    committed ones carried forward.  ``obs_records`` carries one
    ``bench`` JSON-lines record per test (the :mod:`repro.obs.export`
    schema), so benchmark history and pipeline observability share one
    file format.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.export import bench_record

    by_suite: dict = {}
    records: list = []
    mode = "quick" if quick else "full"
    selected = [s for s in SUITES if only in s.name]
    if not selected:
        known = ", ".join(s.name for s in SUITES)
        raise SystemExit(f"--suite {only!r} matches none of: {known}")
    for suite in selected:
        suite_results = run_suite(suite, quick=quick)
        by_suite[suite.name] = suite_results
        records.extend(
            bench_record(name, stats, suite=suite.stem, mode=mode)
            for name, stats in sorted(suite_results.items()))
    return by_suite, records


def load_committed() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {}


def merge_payload(committed: dict, suite_results: dict,
                  known_suites: "tuple[str, ...]") -> "tuple[dict, list]":
    """Merge this run's per-suite results over the committed file.

    Returns ``(payload, skipped)`` where ``skipped`` names every suite
    the committed file knows about that this run did not execute.
    Those suites' committed results are carried forward into
    ``results`` (so a partial ``--suite`` run never clobbers them) but
    they are *reported*, not silently absorbed — the payload records
    them under ``skipped_suites`` and ``by_suite`` maps each suite to
    the tests it owns so the next reader can tell which numbers are
    fresh.

    Pure: no filesystem access, no clock; exists so the merge policy
    is unit-testable without running a single benchmark.
    """
    fresh: dict = {}
    for tests in suite_results.values():
        fresh.update(tests)
    merged_results = {**committed.get("results", {}), **fresh}
    # Frozen entries stay; only tests the baseline has never seen are
    # backfilled (from the merged view, so partial runs cannot demote a
    # previously-seeded baseline to "missing").
    baseline = {**merged_results, **committed.get("baseline", {})}

    committed_by_suite = committed.get("by_suite", {})
    by_suite = {
        suite: sorted(tests)
        for suite, tests in committed_by_suite.items()
        if suite not in suite_results
    }
    for suite, tests in suite_results.items():
        merged = set(committed_by_suite.get(suite, ())) | set(tests)
        by_suite[suite] = sorted(merged)

    all_suites = sorted(set(committed.get("suites", []))
                        | set(known_suites))
    skipped = sorted(s for s in committed.get("suites", [])
                     if s not in suite_results)
    payload = {
        "suites": all_suites,
        "by_suite": {s: by_suite[s] for s in sorted(by_suite)},
        "skipped_suites": skipped,
        "units": "seconds",
        "baseline": baseline,
        "results": merged_results,
    }
    return payload, skipped


def check(results: dict, committed: dict, threshold: float) -> int:
    reference = committed.get("results") or committed.get("baseline") or {}
    if not reference:
        print("no committed results at all; run run_bench.py once to seed "
              "the file before gating")
        return 1
    failed = 0
    for name, stats in sorted(results.items()):
        ref = reference.get(name)
        if ref is None:
            # A gate that silently skips unknown tests never gates new
            # code; a missing baseline is a failure to seed, not noise.
            print(f"  {name}: MISSING BASELINE - run "
                  f"`python benchmarks/run_bench.py` and commit the "
                  f"updated {BENCH_FILE.name}")
            failed += 1
            continue
        ratio = stats["median"] / ref["median"] if ref["median"] else 0.0
        verdict = "OK" if ratio <= threshold else "REGRESSION"
        print(f"  {name}: median {stats['median'] * 1e6:.1f}us vs committed "
              f"{ref['median'] * 1e6:.1f}us ({ratio:.2f}x) {verdict}")
        if ratio > threshold:
            failed += 1
    if failed:
        print(f"{failed} benchmark(s) regressed more than {threshold:.1f}x "
              f"or lack a committed reference")
        return 1
    print(f"all benchmarks within {threshold:.1f}x of committed medians")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="few rounds, short max-time (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="regression gate against the committed file "
                             "(does not rewrite it)")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="allowed median slowdown factor for --check")
    parser.add_argument("--suite", default="",
                        help="only run suites whose file name contains "
                             "this substring")
    args = parser.parse_args(argv)

    by_suite, records = run_suites(quick=args.quick, only=args.suite)
    committed = load_committed()
    if args.check:
        results: dict = {}
        for tests in by_suite.values():
            results.update(tests)
        return check(results, committed, args.threshold)
    from repro.obs.export import write_jsonl
    write_jsonl(records, BENCH_JSONL)
    print(f"wrote {BENCH_JSONL}")

    payload, skipped = merge_payload(
        committed, by_suite, tuple(s.name for s in SUITES))
    for suite in skipped:
        print(f"  {suite}: SKIPPED this run - committed results "
              f"carried forward unchanged")
    BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    print(f"wrote {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
