"""E12 (Fig.2 / Park-style): RL mitigation + VIPER policy extraction.

Network automation as reinforcement learning (the Park/Pantheon line
the paper's ecosystem sits in): a Q-learning agent learns the DNS-
mitigation control loop, VIPER extracts it into a depth-bounded
decision tree, and the tree compiles onto the switch.  The reproduced
shape: the learned policy is competitive with a well-tuned operator
rule (within a few percent — on this small observation space a good
static rule is near-optimal, which we report honestly) and far better
than doing nothing or acting randomly; VIPER preserves the learned
behaviour at high action fidelity in a switch-compilable tree.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import Table
from repro.deploy import SwitchResourceModel, compile_tree
from repro.deploy.compiler import FeatureQuantizer
from repro.learning.rl import (
    ClassifierPolicy,
    DdosMitigationEnv,
    GreedyQPolicy,
    QLearningAgent,
    RandomPolicy,
    StaticThresholdPolicy,
    evaluate_policy,
)
from repro.xai import viper_extract

OBS_FIELDS = ["dns_rate", "response_ratio", "any_fraction",
              "victim_concentration"]


def test_e12_rl_mitigation_and_extraction(benchmark):
    # Action costs make "always drop" suboptimal, so the policy has to
    # actually condition on the observations.
    env = DdosMitigationEnv(episode_len=120, seed=BENCH_SEED,
                            action_cost=(0.0, 0.02, 0.05),
                            drop_any_fp=0.05)

    def run_all():
        agent = QLearningAgent(n_actions=env.action_space.n,
                               seed=BENCH_SEED, bins=6, alpha=0.3,
                               epsilon_decay=0.995)
        history = agent.train(env, episodes=800)
        extraction = viper_extract(agent, env, iterations=5,
                                   episodes_per_iter=10, max_depth=3,
                                   seed=BENCH_SEED)
        policies = {
            "q-learning (teacher)": GreedyQPolicy(agent),
            "viper tree (student)": ClassifierPolicy(extraction.student),
            "static threshold": StaticThresholdPolicy(),
            "do nothing": StaticThresholdPolicy(volume_threshold=9e9,
                                                any_threshold=9e9),
            "random": RandomPolicy(env.action_space.n, seed=1),
        }
        evaluations = {
            name: evaluate_policy(env, policy, episodes=25)
            for name, policy in policies.items()
        }
        return history, extraction, evaluations

    history, extraction, evaluations = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    table = Table("E12a mitigation policy comparison (25 episodes)",
                  ["policy", "mean_reward", "attack_admitted",
                   "benign_dropped"])
    for name, evaluation in evaluations.items():
        table.row(name, evaluation.mean_reward,
                  evaluation.attack_admitted_fraction,
                  evaluation.benign_dropped_fraction)
    table.print()

    # compile the extracted policy for the switch
    X = np.random.default_rng(BENCH_SEED).uniform(
        size=(200, len(OBS_FIELDS)))
    quantizer = FeatureQuantizer.for_features(X)
    compiled = compile_tree(extraction.student, OBS_FIELDS, quantizer,
                            class_names=["allow", "rate_limit",
                                         "drop_any"])
    fit = SwitchResourceModel().fit([compiled])

    detail = Table("E12b extracted policy deployability",
                   ["quantity", "value"])
    detail.row("viper iterations", extraction.iterations)
    detail.row("dagger dataset size", extraction.dataset_size)
    detail.row("action fidelity to teacher", extraction.action_fidelity)
    detail.row("tree depth", extraction.student.depth)
    detail.row("table entries", compiled.n_entries)
    detail.row("tcam entries", compiled.tcam_entries)
    detail.row("fits switch", fit.fits)
    detail.print()

    teacher = evaluations["q-learning (teacher)"]
    student = evaluations["viper tree (student)"]
    static = evaluations["static threshold"]
    nothing = evaluations["do nothing"]
    random = evaluations["random"]

    # competitive with the hand-tuned rule (within 10%), far beyond
    # do-nothing and random
    assert teacher.mean_reward >= static.mean_reward * 1.10
    assert teacher.mean_reward > 3 * nothing.mean_reward
    assert teacher.mean_reward > random.mean_reward
    # extracted tree keeps the learned behaviour
    assert student.attack_admitted_fraction < \
        0.5 * nothing.attack_admitted_fraction + 1e-9
    assert abs(student.mean_reward - teacher.mean_reward) <= \
        0.15 * abs(teacher.mean_reward)
    assert extraction.action_fidelity > 0.8
    assert fit.fits
