"""A2 (ablation of the model-extraction recipe).

The Bastani-style extraction in :mod:`repro.xai.distill` queries the
teacher on synthetic points around the data manifold.  This ablation
asks whether that augmentation earns its cost: students distilled with
0x / 1x / 2x / 4x synthetic queries are compared on holdout fidelity,
and on *off-manifold* fidelity (scaled inputs the training data never
covered — where a deployed model will inevitably be asked to decide).
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import Table
from repro.learning import train_test_split
from repro.learning.models import GradientBoostingClassifier
from repro.xai import distill_tree, fidelity

FACTORS = [0.0, 1.0, 2.0, 4.0]


def test_a2_synthetic_query_ablation(bench_dataset, benchmark):
    train, test = train_test_split(bench_dataset, test_fraction=0.3,
                                   seed=BENCH_SEED)
    teacher = GradientBoostingClassifier(n_estimators=60).fit(
        train.X, train.y)
    rng = np.random.default_rng(BENCH_SEED)
    # off-manifold probes: on-manifold points pushed around
    off_manifold = np.maximum(
        test.X * rng.uniform(0.3, 3.0, size=test.X.shape), 0.0)
    teacher_on = teacher.predict(test.X)
    teacher_off = teacher.predict(off_manifold)

    def sweep():
        rows = []
        for factor in FACTORS:
            result = distill_tree(teacher, train.X, max_depth=4,
                                  synthetic_factor=factor,
                                  seed=BENCH_SEED,
                                  n_classes=bench_dataset.n_classes)
            student_on = result.student.predict(test.X)
            student_off = result.student.predict(off_manifold)
            rows.append((factor, result.n_pool,
                         fidelity(teacher_on, student_on),
                         fidelity(teacher_off, student_off)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table("A2 distillation synthetic-query ablation "
                  "(student depth 4)",
                  ["synthetic_factor", "teacher_queries",
                   "fidelity_on_manifold", "fidelity_off_manifold"])
    for row in rows:
        table.row(*row)
    table.print()

    off = {r[0]: r[3] for r in rows}
    on = {r[0]: r[2] for r in rows}
    # augmentation must not hurt on-manifold fidelity...
    assert on[2.0] >= on[0.0] - 0.05
    # ...and should help (or at least match) off-manifold
    assert off[2.0] >= off[0.0] - 0.02
