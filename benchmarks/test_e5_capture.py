"""E5 (§5): lossless capture and its storage/cost envelope.

"monitoring solutions that can perform enterprise-wide, continuous,
lossless, full packet capture at scale ... a typical campus network
(e.g., a 10 Gbps upstream connection, data storage requirements of the
order of a week) can deploy this technology today for a few $100K" and
the cost "increases proportionally with the size and number of the
upstream links and the duration of data retention".

Table A: capture loss rate vs appliance capacity under a fixed offered
load (losslessness holds once capacity reaches the paper's 10-20 Gbps
operating point).  Table B: the storage/cost sweep.
"""

import pytest

from repro.analysis import Table
from repro.capture.costmodel import CaptureCostModel
from repro.capture.engine import CaptureEngine
from repro.netsim.packets import PacketRecord


def _traffic_bins(gbps: float, seconds: int):
    """Synthetic offered load: `gbps` average with 2x bursts."""
    packets = []
    for second in range(seconds):
        burst = 2.0 if second % 5 == 0 else 0.75
        bytes_this_second = gbps * burst * 1e9 / 8.0
        n = int(bytes_this_second // 1500)
        for i in range(n):
            packets.append(PacketRecord(
                timestamp=second + i / max(n, 1), src_ip="9.9.9.9",
                dst_ip="10.0.0.1", src_port=53, dst_port=4444,
                protocol=17, size=1500, payload_len=1472, flags=0,
                ttl=60, payload=b"", flow_id=i, app="dns",
                label="benign", direction="in",
            ))
    return packets


def test_e5a_capture_loss_vs_capacity(benchmark):
    offered_gbps = 0.02   # scaled-down load; ratios are what matter
    packets = _traffic_bins(offered_gbps, seconds=10)

    def sweep():
        rows = []
        for ratio in (0.25, 0.5, 1.0, 2.0, None):
            capacity = None if ratio is None else offered_gbps * ratio
            engine = CaptureEngine(capacity_gbps=capacity,
                                   buffer_bytes=1e5)
            engine.ingest(list(packets))
            rows.append((
                "lossless" if ratio is None else f"{ratio:.2f}x offered",
                engine.stats.packets_offered,
                engine.stats.loss_rate,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table("E5a capture loss vs appliance capacity "
                  "(bursty load, 2x peaks)",
                  ["capacity", "packets_offered", "loss_rate"])
    for row in rows:
        table.row(*row)
    table.print()

    loss = {r[0]: r[2] for r in rows}
    assert loss["lossless"] == 0.0
    assert loss["2.00x offered"] == 0.0          # headroom => lossless
    assert loss["0.25x offered"] > loss["1.00x offered"]
    assert loss["0.25x offered"] > 0.5


def test_e5b_storage_cost_sweep(benchmark):
    model = CaptureCostModel()

    def sweep():
        rows = []
        for link_gbps in (1.0, 10.0, 20.0, 100.0):
            for retention_days in (1.0, 7.0, 30.0):
                estimate = model.estimate(link_gbps=link_gbps,
                                          utilization=0.35,
                                          retention_days=retention_days)
                rows.append((link_gbps, retention_days,
                             estimate.storage_tb, estimate.appliance_usd,
                             estimate.storage_usd, estimate.total_usd))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table("E5b full-capture storage and cost (35% avg util)",
                  ["link_gbps", "retention_days", "storage_TB",
                   "appliance_$", "storage_$", "total_$"])
    for row in rows:
        table.row(*row)
    table.print()

    anchor = next(r for r in rows if r[0] == 10.0 and r[1] == 7.0)
    # the paper's "$ a few 100K" anchor for 10G / ~1 week
    assert 50_000 <= anchor[5] <= 300_000
    ten_g = [r for r in rows if r[0] == 10.0]
    # storage strictly proportional to retention
    assert ten_g[2][2] == pytest.approx(30 * ten_g[0][2], rel=0.01)
