"""Substrate performance microbenchmarks.

Unlike E1-E15 (experiment regeneration), these are conventional
multi-round benchmarks of the platform's hot paths: store ingest,
indexed queries, sketch updates, tree compilation, and switch table
lookups.  They bound how much simulated campus a unit of wall clock
buys and catch accidental complexity regressions.
"""

import numpy as np
import pytest

from repro.capture.metadata import MetadataExtractor
from repro.datastore import DataStore, Query
from repro.deploy.compiler import FeatureQuantizer, compile_tree
from repro.deploy.sketches import CountMinSketch
from repro.learning.features import SourceWindowFeaturizer
from repro.learning.models import DecisionTreeClassifier
from repro.netsim.packets import PacketRecord


def _packets(n, payload=b"\x16\x03\x03\x01www.example.edu"):
    return [PacketRecord(
        timestamp=i * 0.001, src_ip=f"9.9.{i % 250}.{i % 200}",
        dst_ip="10.0.0.1", src_port=443, dst_port=40_000 + (i % 1000),
        protocol=6, size=1400, payload_len=1372, flags=0, ttl=60,
        payload=payload, flow_id=i, app="web", label="benign",
        direction="in",
    ) for i in range(n)]


def test_perf_store_ingest_with_metadata(benchmark):
    packets = _packets(5000)

    def ingest():
        store = DataStore(metadata_extractor=MetadataExtractor())
        store.ingest_packets(packets)
        return store

    store = benchmark(ingest)
    assert store.count("packets") == 5000


def test_perf_indexed_time_query(benchmark):
    store = DataStore()
    store.ingest_packets(_packets(20_000))
    query = Query(collection="packets", time_range=(5.0, 6.0),
                  where={"dst_ip": "10.0.0.1"})
    result = benchmark(lambda: store.query(query))
    assert 900 <= len(result) <= 1100


def test_perf_countmin_updates(benchmark):
    sketch = CountMinSketch(width=2048, depth=3)
    keys = [f"10.1.{i % 200}.{i % 250}" for i in range(2000)]

    def update_all():
        for key in keys:
            sketch.add(key, 1400)
        return sketch.estimate(keys[0])

    estimate = benchmark(update_all)
    assert estimate >= 1400


def test_perf_countmin_add_batch(benchmark):
    sketch = CountMinSketch(width=2048, depth=3)
    keys = [f"10.1.{i % 200}.{i % 250}" for i in range(2000)]

    def update_all():
        sketch.add_batch(keys, 1400)
        return sketch.estimate(keys[0])

    estimate = benchmark(update_all)
    assert estimate >= 1400


def test_perf_featurize(benchmark):
    store = DataStore(metadata_extractor=MetadataExtractor())
    store.ingest_packets(_packets(20_000))
    featurizer = SourceWindowFeaturizer()

    dataset = benchmark(lambda: featurizer.from_store(store))
    assert len(dataset.X) > 0


def test_perf_tree_compile(benchmark):
    rng = np.random.default_rng(0)
    X = np.abs(rng.normal(size=(2000, 12))) * 100
    y = ((X[:, 3] > 80) ^ (X[:, 7] > 120)).astype(int)
    tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
    quantizer = FeatureQuantizer.for_features(X)
    names = [f"f{i}" for i in range(12)]

    result = benchmark(lambda: compile_tree(tree, names, quantizer))
    assert result.n_entries >= 2


def test_perf_table_lookup(benchmark):
    rng = np.random.default_rng(1)
    X = np.abs(rng.normal(size=(2000, 12))) * 100
    y = ((X[:, 3] > 80) ^ (X[:, 7] > 120)).astype(int)
    tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
    quantizer = FeatureQuantizer.for_features(X)
    names = [f"f{i}" for i in range(12)]
    compiled = compile_tree(tree, names, quantizer)
    table = compiled.classify_table
    fields = dict(zip(compiled.program.feature_fields,
                      quantizer.quantize(X[0])))

    action, params = benchmark(lambda: table.lookup(fields))
    assert action == "set_class"
