"""E6 (§3/§5): privacy level vs model utility.

The paper argues the data store can be privacy-managed ("data is
guaranteed to be only used for improving the network's security and
performance") without giving up its research value.  The bench
collects the same attack day under each privacy preset and trains the
same detector; the reproduced shape: prefix-preserving anonymization
is nearly free, payload stripping costs some accuracy (payload-derived
DNS features vanish), aggregates-only breaks row-level learning
entirely.  A k-anonymity audit and a DP aggregate release round out
the §5 privacy toolkit.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.datastore.query import Aggregation, Query
from repro.learning import train_and_evaluate, train_test_split
from repro.privacy import DpAccountant, KAnonymityAuditor, PrivacyLevel


def _collect_under(level):
    platform = CampusPlatform(PlatformConfig(
        campus_profile="tiny", seed=BENCH_SEED + 2, privacy_level=level))
    platform.collect(attack_day(duration_s=180.0, include_scan=False),
                     seed=BENCH_SEED + 2)
    return platform


def test_e6_privacy_utility_tradeoff(benchmark):
    def sweep():
        rows = []
        for level in (PrivacyLevel.NONE, PrivacyLevel.PREFIX_PRESERVING,
                      PrivacyLevel.PAYLOAD_STRIPPED,
                      PrivacyLevel.AGGREGATES_ONLY):
            platform = _collect_under(level)
            packet_rows = platform.store.count("packets")
            if packet_rows == 0:
                rows.append((level.value, 0, 0, None, None))
                continue
            dataset = platform.build_dataset().binarize("ddos-dns-amp")
            train, test = train_test_split(dataset, test_fraction=0.3,
                                           seed=BENCH_SEED)
            result = train_and_evaluate("forest", train, test)
            rows.append((level.value, packet_rows, len(dataset),
                         result.metrics.get("f1"),
                         result.metrics["accuracy"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table("E6 privacy level vs detector utility",
                  ["privacy_level", "packets_stored", "windows",
                   "f1", "accuracy"])
    for row in rows:
        table.row(*row)
    table.print()

    by_level = {r[0]: r for r in rows}
    # prefix-preserving anonymization is (near) free
    assert by_level["prefix"][3] is not None
    assert by_level["prefix"][3] >= by_level["none"][3] - 0.1
    # aggregates-only stores no row-level packets at all
    assert by_level["aggregates"][1] == 0


def test_e6b_kanon_and_dp_release(bench_platform, benchmark):
    platform = bench_platform

    def run():
        flows = platform.store.query(Query(collection="flows",
                                           order_by_time=False))
        auditor = KAnonymityAuditor(k=5)
        getter = lambda stored, q: getattr(stored.record, q)
        report = auditor.audit(flows, ["dst_port", "protocol"],
                               getter=getter)
        accountant = DpAccountant(total_epsilon=1.0, seed=BENCH_SEED)
        histogram = platform.store.aggregate(
            Query(collection="flows", order_by_time=False),
            Aggregation(key_fn=lambda s: s.record.service,
                        reducer="count"))
        noisy = accountant.release_histogram(histogram, epsilon=0.5,
                                             description="per-service")
        return report, histogram, noisy, accountant

    report, histogram, noisy, accountant = benchmark.pedantic(
        run, rounds=1, iterations=1)

    table = Table("E6b release toolkit on the collected day",
                  ["check", "value"])
    table.row("flow records audited", report.total_records)
    table.row("quasi-id combos (dst_port, proto)",
              report.distinct_combinations)
    table.row("k=5 violating combos", report.violating_combinations)
    table.row("k=5 satisfied", report.satisfied)
    table.row("dp epsilon spent", accountant.spent)
    table.row("dp epsilon remaining", accountant.remaining)
    for service in sorted(histogram):
        table.row(f"true vs noisy count: {service}",
                  f"{histogram[service]:.0f} vs {noisy[service]:.1f}")
    table.print()

    assert accountant.remaining == pytest.approx(0.5)
    for service, true_count in histogram.items():
        if true_count >= 50:
            assert abs(noisy[service] - true_count) < 0.5 * true_count
