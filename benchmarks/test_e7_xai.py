"""E7 (Fig.2 step ii + iv): deployable models closely approximate the
black box, and can explain themselves.

"replace the learning model in (i) with a deployable learning model
(i.e., a learning model that is explainable or interpretable,
lightweight and closely approximates the original model)".

Table A: student fidelity/accuracy vs tree size (the capacity sweep).
Table B: evidence-list quality feeding the operator trust model —
the "white box" side of step (iv).
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import Table
from repro.learning import train_test_split
from repro.learning.models import GradientBoostingClassifier
from repro.testbed import OperatorTrustModel, ReviewOutcome
from repro.xai import distill_tree, explain_decision, fidelity_report, \
    tree_to_rules


def test_e7a_fidelity_vs_size(bench_dataset, benchmark):
    # The multiclass task (benign / ddos / scan / bruteforce) is hard
    # enough that student capacity actually matters.
    train, test = train_test_split(bench_dataset, test_fraction=0.3,
                                   seed=BENCH_SEED)
    teacher = GradientBoostingClassifier(n_estimators=60).fit(
        train.X, train.y)
    teacher_acc = float(np.mean(teacher.predict(test.X) == test.y))

    def sweep():
        rows = []
        for depth in (1, 2, 3, 4, 6):
            result = distill_tree(teacher, train.X, max_depth=depth,
                                  seed=BENCH_SEED,
                                  n_classes=bench_dataset.n_classes)
            report = fidelity_report(teacher, result.student, test.X,
                                     test.y)
            rows.append((depth, result.n_leaves,
                         report.label_fidelity,
                         report.probability_fidelity,
                         report.student_accuracy))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(f"E7a student fidelity vs size, "
                  f"{bench_dataset.n_classes}-class task "
                  f"(teacher=boosting, acc={teacher_acc:.3f})",
                  ["max_depth", "leaves", "label_fidelity",
                   "proba_fidelity", "student_accuracy"])
    for row in rows:
        table.row(*row)
    table.print()

    fidelity_by_depth = {r[0]: r[2] for r in rows}
    assert fidelity_by_depth[4] > 0.85           # "closely approximates"
    assert fidelity_by_depth[4] > fidelity_by_depth[1]   # capacity matters
    accuracy_by_depth = {r[0]: r[4] for r in rows}
    assert accuracy_by_depth[4] >= teacher_acc - 0.15


def test_e7b_evidence_and_trust(bench_tool, ddos_dataset, benchmark):
    tool, _ = bench_tool
    _, test = train_test_split(ddos_dataset, test_fraction=0.3,
                               seed=BENCH_SEED)

    def review_session():
        trust = OperatorTrustModel(initial_trust=0.2)
        reviewed = 0
        for x, y in zip(test.X, test.y):
            evidence = explain_decision(tool.student, x,
                                        feature_names=tool.feature_names,
                                        class_names=tool.class_names)
            correct = evidence.predicted_class == y
            surprising = evidence.predicted_class == 1 and \
                evidence.confidence > 0.95
            trust.review_evidence(evidence, correct=correct,
                                  surprising=surprising)
            reviewed += 1
        return trust, reviewed

    trust, reviewed = benchmark.pedantic(review_session, rounds=1,
                                         iterations=1)
    rules = tree_to_rules(tool.student, tool.feature_names,
                          tool.class_names)

    table = Table("E7b operator review of evidence lists",
                  ["quantity", "value"])
    table.row("decisions reviewed", reviewed)
    table.row("rules in deployable model", len(rules))
    table.row("final operator trust", trust.trust)
    table.row("would deploy (trust >= 0.7)", trust.would_deploy)
    table.row("incorrect reviews",
              sum(1 for e in trust.history
                  if e.outcome == ReviewOutcome.INCORRECT))
    table.print()
    print()
    print("deployable model as a rule list:")
    print(rules.render())

    assert trust.trust > 0.2           # net trust gain from review
    assert len(rules) <= 16            # interpretable size
