"""E13 (§3, extension): performance root-cause diagnosis.

"University networks are also prone to network faults and outages and
experience performance issues ... there is a need to be able to
pinpoint performance problems and notify the service or cloud
provider(s) in case the root cause is not internal to the campus
network."

Labeled incident days (congestion / link flap / silent degradation)
train a root-cause localizer on SNMP-style telemetry; it is evaluated
on unseen days against the operator's threshold playbook.  The
reproduced shape: learned localization dominates the playbook on
precision at equal-or-better recall, and every diagnosis carries the
internal-vs-external attribution the paper asks for.
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import Table
from repro.diagnosis import RootCauseLocalizer, RuleBasedLocalizer, \
    TelemetryCollector
from repro.events import (
    LinkCongestionIncident,
    LinkDegradationIncident,
    LinkFlapIncident,
    Scenario,
    run_scenario,
)
from repro.netsim import make_campus


def incident_day(seed: int):
    net = make_campus("tiny", seed=seed)
    collector = TelemetryCollector(net, interval_s=1.0)
    collector.start()
    scenario = Scenario("perf-day", duration_s=240.0)
    scenario.add(LinkCongestionIncident, 30.0, 30.0, department=0)
    scenario.add(LinkFlapIncident, 100.0, 24.0, flap_period_s=8.0,
                 link=("dist1", "core1"))
    scenario.add(LinkDegradationIncident, 170.0, 40.0, factor=0.1)
    ground_truth = run_scenario(net, scenario, seed=seed)
    return net, collector, ground_truth


def test_e13_root_cause_localization(benchmark):
    def run_all():
        train_days = [incident_day(BENCH_SEED + 50 + i) for i in range(2)]
        localizer = RootCauseLocalizer(window_s=10.0).fit_many(
            [(c, g, n.topology) for n, c, g in train_days])
        rules = RuleBasedLocalizer(window_s=10.0)
        results = []
        for i in range(3):
            net, collector, ground_truth = incident_day(
                BENCH_SEED + 60 + i)
            learned_score = RootCauseLocalizer.score(
                localizer.diagnose(collector, net.topology), ground_truth)
            rules_score = RootCauseLocalizer.score(
                rules.diagnose(collector, net.topology), ground_truth)
            results.append((i, learned_score, rules_score))
        sample_net, sample_coll, _ = incident_day(BENCH_SEED + 70)
        sample = localizer.diagnose(sample_coll, sample_net.topology)
        return results, sample

    results, sample = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("E13 root-cause localization on unseen incident days",
                  ["test_day", "method", "recall", "precision",
                   "diagnoses"])
    for day, learned, rules in results:
        table.row(day, "learned (tree)", learned["recall"],
                  learned["precision"], learned["diagnoses"])
        table.row(day, "threshold playbook", rules["recall"],
                  rules["precision"], rules["diagnoses"])
    table.print()

    print("\nsample diagnoses (with internal/external attribution):")
    for diagnosis in sample[:6]:
        print(" ", diagnosis.render())

    learned_precisions = [l["precision"] for _, l, _ in results]
    rules_precisions = [r["precision"] for _, _, r in results]
    learned_recalls = [l["recall"] for _, l, _ in results]
    rules_recalls = [r["recall"] for _, _, r in results]
    assert min(learned_recalls) >= 2 / 3
    assert sum(learned_precisions) > sum(rules_precisions)
    assert sum(learned_recalls) >= sum(rules_recalls)
