"""E9 (§4): road-testing vs direct deployment.

Operators "are opposed to deploying untrustworthy tools".  The bench
road-tests two candidate tools on the campus testbed: the developed
detector and a deliberately trigger-happy one (threshold so low it
mitigates benign endpoints).  The reproduced shape: the staged
pipeline promotes the good tool and stops the bad one at shadow —
before any production traffic is harmed — whereas direct deployment
of the bad tool damages benign traffic.
"""

import copy

import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.deploy.compiler import CompileResult
from repro.deploy.switch import EmulatedSwitch, SwitchConfig
from repro.netsim import make_campus
from repro.testbed import DeploymentPhase, RoadTestPipeline, \
    standard_guardrails
from repro.testbed.slo import measure_collateral


def _run_factory(seed):
    # Dense background traffic so a trigger-happy tool has plenty of
    # benign endpoints to wrongly flag.
    net = make_campus("tiny", seed=seed, mean_flows_per_hour=900.0)
    return net, attack_day(duration_s=150.0, attack_gbps=0.08,
                           include_scan=False)


def _aggressive_result(tool) -> CompileResult:
    """Corrupt the tool into a trigger-happy detector: every verdict —
    including the former benign leaves and the default — fires as the
    attack class with full confidence (a maximally miscalibrated tool
    that would drop every endpoint it ever profiles)."""
    compiled = copy.deepcopy(tool.compiled)
    table = compiled.classify_table
    table.default_params = {"class_id": 1, "confidence": 1.0}
    for entry in table.entries:
        entry.params["class_id"] = 1
        entry.params["confidence"] = 1.0
    return compiled


def test_e9_roadtest_vs_direct_deploy(bench_tool, benchmark):
    tool, _ = bench_tool
    # Collateral ceiling is generous at tiny-campus scale: the attack
    # abuses most of the (small) external host pool as reflectors, so
    # even a perfect mitigation rate-limits endpoints benign users
    # also talk to.
    guardrails = standard_guardrails(max_false_positive_rate=0.25,
                                     min_recall=0.2,
                                     max_collateral_fraction=0.75)

    def run_all():
        good_pipeline = RoadTestPipeline(
            run_factory=_run_factory,
            deploy_fn=lambda net, cfg: tool.deploy(net, cfg),
            base_config=SwitchConfig(window_s=5.0, grace_s=2.0,
                                     confidence_threshold=0.9),
            guardrails=guardrails,
        )
        good = good_pipeline.run(seed=BENCH_SEED)

        aggressive = _aggressive_result(tool)

        def deploy_bad(net, cfg):
            bad_cfg = copy.deepcopy(cfg)
            bad_cfg.benign_class = tool.class_names[0]
            return EmulatedSwitch(net, aggressive, bad_cfg)

        bad_pipeline = RoadTestPipeline(
            run_factory=_run_factory,
            deploy_fn=deploy_bad,
            base_config=SwitchConfig(window_s=5.0, grace_s=2.0,
                                     confidence_threshold=0.9),
            guardrails=guardrails,
        )
        bad = bad_pipeline.run(seed=BENCH_SEED)

        # direct deployment of the bad tool (what §4 warns against)
        net, scenario = _run_factory(BENCH_SEED + 999)
        flows = []
        net.add_flow_observer(flows.append)
        direct_cfg = SwitchConfig(window_s=5.0, grace_s=2.0,
                                  confidence_threshold=0.9)
        direct_cfg.benign_class = tool.class_names[0]
        switch = EmulatedSwitch(net, aggressive, direct_cfg)
        from repro.events.scenario import run_scenario

        run_scenario(net, scenario, seed=BENCH_SEED + 999)
        direct_collateral = measure_collateral(
            flows + list(net.flows.blocked_flows), switch.mitigation_log)
        return good, bad, direct_collateral

    good, bad, direct = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("E9 staged road-test vs direct deployment",
                  ["tool", "path", "outcome", "prod_collateral"])
    table.row("developed detector", "shadow->canary->full",
              "deployed" if good.deployed else
              f"rolled back at {good.rolled_back_at.value}",
              good.phases[-1].metrics["collateral_fraction"]
              if good.deployed else 0.0)
    table.row("miscalibrated detector", "shadow->canary->full",
              "deployed" if bad.deployed else
              f"rolled back at {bad.rolled_back_at.value}", 0.0)
    table.row("miscalibrated detector", "direct deploy (no testbed)",
              "deployed blind", direct.collateral_fraction)
    table.print()

    phases = Table("E9 phase detail (developed detector)",
                   ["phase", "precision", "recall",
                    "collateral", "violations"])
    for phase in good.phases:
        phases.row(phase.phase.value, phase.metrics["precision"],
                   phase.metrics["recall"],
                   phase.metrics["collateral_fraction"],
                   len(phase.violations))
    phases.print()

    assert good.deployed
    assert not bad.deployed
    assert bad.rolled_back_at == DeploymentPhase.SHADOW
    # shadow stopped the bad tool before harming anything; direct didn't
    assert direct.collateral_fraction > 0.2
