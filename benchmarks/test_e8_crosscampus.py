"""E8 (§5 reproducibility): open-source the algorithm, train per campus.

"using such open-sourced learning algorithms and training them with
data from some other campus networks (each with its own data store)
suggests a viable path for tackling the much-debated reproducibility
problem ... comparing their performance across these various
production networks may increase the overall confidence in newly
designed learning algorithms."

The bench instantiates three campuses with different profiles
(teaching / research / residential traffic mixes via seeds+profiles at
bench scale), runs the same labeled attack day on each, trains the
*same* algorithm per campus, and reports the full train-campus x
test-campus accuracy matrix.  The reproduced shape: diagonal strong,
off-diagonal lower but clearly above chance — the algorithm, not the
dataset, carries the result.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.core import CampusPlatform, PlatformConfig
from repro.learning import train_and_evaluate, train_test_split
from repro.learning.training import MODEL_REGISTRY

CAMPUSES = ["tiny", "teaching", "residential"]


def _campus_dataset(profile: str, seed: int):
    platform = CampusPlatform(PlatformConfig(campus_profile=profile,
                                             seed=seed))
    platform.collect(attack_day(duration_s=150.0, include_scan=False),
                     seed=seed)
    return platform.build_dataset(
        class_names=["benign", "ddos-dns-amp"]).binarize("ddos-dns-amp")


def test_e8_cross_campus_matrix(benchmark):
    def run_matrix():
        datasets = {
            profile: _campus_dataset(profile, BENCH_SEED + 10 * i)
            for i, profile in enumerate(CAMPUSES)
        }
        models = {}
        splits = {}
        for profile, dataset in datasets.items():
            train, test = train_test_split(dataset, test_fraction=0.3,
                                           seed=BENCH_SEED)
            result = train_and_evaluate("forest", train, test)
            models[profile] = result.model
            splits[profile] = test
        matrix = {}
        for train_campus, model in models.items():
            for test_campus, test in splits.items():
                accuracy = float(np.mean(
                    model.predict(test.X) == test.y))
                matrix[(train_campus, test_campus)] = accuracy
        return datasets, matrix

    datasets, matrix = benchmark.pedantic(run_matrix, rounds=1,
                                          iterations=1)

    table = Table("E8 cross-campus accuracy matrix "
                  "(same open-sourced algorithm, per-campus training)",
                  ["train\\test", *CAMPUSES])
    for train_campus in CAMPUSES:
        table.row(train_campus, *[
            matrix[(train_campus, test_campus)]
            for test_campus in CAMPUSES
        ])
    table.print()

    sizes = Table("E8 per-campus dataset sizes",
                  ["campus", "windows", "attack_windows"])
    for profile, dataset in datasets.items():
        counts = dataset.class_counts()
        sizes.row(profile, len(dataset), counts.get("ddos-dns-amp", 0))
    sizes.print()

    diagonal = [matrix[(c, c)] for c in CAMPUSES]
    off_diagonal = [matrix[(a, b)] for a in CAMPUSES for b in CAMPUSES
                    if a != b]
    assert min(diagonal) > 0.8
    assert np.mean(off_diagonal) > 0.6          # transfers above chance
    assert np.mean(diagonal) >= np.mean(off_diagonal) - 0.05
