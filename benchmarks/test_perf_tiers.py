"""Tiered-storage performance benchmarks.

Three numbers the tiering work must not regress: sustained ingest
throughput into a :class:`TieredDataStore` (memtable rollovers and
sealing on the hot path), query latency while a compaction is being
stepped concurrently (the bit-identity guarantee must not cost reads),
and a cold-tier scan served from the compressed mmap format (the
larger-than-RAM story only holds if mmap reads stay cheap).
"""

import shutil
import tempfile

import pytest

from repro.datastore import Query, TieredDataStore, TierPolicy
from repro.netsim.packets import PacketRecord

N_PACKETS = 40_000
BATCH = 2_000
RARE_EVERY = 2_000


def _packets(n=N_PACKETS):
    return [PacketRecord(
        timestamp=i * 0.001,
        src_ip=f"10.0.{(i // 64) % 8}.{i % 64}",
        dst_ip="10.9.0.1",
        src_port=40_000 + (i % 1000),
        dst_port=53 if i % RARE_EVERY == 0 else 80,
        protocol=17 if i % RARE_EVERY == 0 else 6,
        size=120, payload_len=92, flags=0, ttl=60,
        payload=bytes([i % 251]) * 16,
        flow_id=i % 512, app="web", label="", direction="in",
    ) for i in range(n)]


INGEST_PACKETS = _packets(N_PACKETS)
INGEST_POLICY = TierPolicy(memtable_records=4_096, warm_fanin=4,
                           warm_max_segments=8, cold_fanin=4)

RARE_QUERY = Query(collection="packets", where={"dst_port": 53})
RARE_MATCHES = N_PACKETS // RARE_EVERY
SCAN_QUERY = Query(collection="packets", time_range=(10.0, 20.0))
SCAN_MATCHES = 10_001     # [10.0, 20.0] inclusive at 1ms spacing


def _ingest_all():
    """One full ingest run: fresh store, every batch, rollovers live."""
    store = TieredDataStore(policy=INGEST_POLICY)
    for start in range(0, N_PACKETS, BATCH):
        store.ingest_packets(INGEST_PACKETS[start:start + BATCH])
    return store


def test_perf_tiers_ingest(benchmark):
    store = benchmark(_ingest_all)
    hot, warm, _ = store.tier_segments()
    assert sum(len(s) for s in hot) + sum(len(s) for s in warm) \
        == N_PACKETS


@pytest.fixture(scope="module")
def compacting_store():
    """A store with standing compaction debt: many small sealed runs."""
    policy = TierPolicy(memtable_records=1_024, warm_fanin=4,
                        warm_max_segments=64, cold_fanin=4)
    store = TieredDataStore(policy=policy)
    for start in range(0, N_PACKETS, BATCH):
        store.ingest_packets(INGEST_PACKETS[start:start + BATCH])
    store.seal_hot()
    return store


def test_perf_tiers_query_under_compaction(benchmark, compacting_store):
    """Query latency while the compactor is stepped between reads.

    Once the debt is drained the rounds keep measuring the same query
    against the quiesced store — the gate covers both phases, which is
    the point: compaction must not make reads a different code path.
    """
    store = compacting_store

    def read_between_steps():
        if store.compactor.debt():
            store.compactor.step()
        return store.query(RARE_QUERY)

    result = benchmark(read_between_steps)
    assert len(result) == RARE_MATCHES


@pytest.fixture(scope="module")
def cold_store():
    """Everything spilled and merged down to the mmap-backed cold tier."""
    tmp = tempfile.mkdtemp(prefix="bench-tiers-cold-")
    policy = TierPolicy(memtable_records=8_192, warm_fanin=4,
                        warm_max_segments=1, cold_fanin=4)
    store = TieredDataStore(policy=policy, spill_dir=tmp)
    for start in range(0, N_PACKETS, BATCH):
        store.ingest_packets(INGEST_PACKETS[start:start + BATCH])
    store.flush_to_cold()
    store.compactor.run()
    _, warm, cold = store.tier_segments()
    assert not warm and cold
    yield store
    shutil.rmtree(tmp, ignore_errors=True)


def test_perf_tiers_cold_scan(benchmark, cold_store):
    result = benchmark(lambda: cold_store.query(SCAN_QUERY))
    assert len(result) == SCAN_MATCHES
