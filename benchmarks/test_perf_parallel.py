"""Parallel-substrate benchmarks: workers=1 vs workers=4.

Each operation (sharded ingest with metadata extraction, sharded
query, windowed featurization) is benchmarked at both worker counts so
``BENCH_substrate.json`` records the scaling honestly for the machine
that ran it.  The worker pool is created (and warmed) in a
module-scoped fixture — the benchmark measures the operation, not
process forking.

On a single-core runner the w4 numbers will not beat w1 (four workers
time-slicing one core adds shipping overhead and removes nothing);
the suite still gates both configurations against 3x regressions and,
more importantly, keeps the parallel paths exercised.
"""

import numpy as np
import pytest

from repro.capture.metadata import MetadataExtractor
from repro.datastore.query import Query
from repro.datastore.store import ShardedDataStore
from repro.learning.features import SourceWindowFeaturizer
from repro.netsim.packets import PacketColumns, PacketRecord
from repro.parallel import ParallelExecutor

N_SHARDS = 4
N_PACKETS = 20_000


def _noop(i):
    return i


def _packets(n):
    payload = b"\x16\x03\x03\x01www.example.edu"
    return [PacketRecord(
        timestamp=i * 0.002,
        src_ip=f"10.{(i // 977) % 4}.{i % 250}.{i % 199}",
        dst_ip=f"9.9.{i % 50}.7",
        src_port=40_000 + (i % 1000),
        dst_port=443 if i % 3 else 53,
        protocol=6 if i % 3 else 17,
        size=800 + (i % 600), payload_len=760, flags=0, ttl=60,
        payload=payload, flow_id=i, app="web", label="benign",
        direction="in" if i % 2 else "out",
    ) for i in range(n)]


@pytest.fixture(scope="module", params=[1, 4], ids=["w1", "w4"])
def executor(request):
    ex = ParallelExecutor(workers=request.param)
    # fork + import cost lands here, not in the benchmark rounds
    ex.map_tasks(_noop, [(i,) for i in range(request.param)])
    yield ex
    ex.shutdown()


@pytest.fixture(scope="module")
def columns():
    return PacketColumns.from_records(_packets(N_PACKETS))


@pytest.fixture(scope="module")
def store(executor, columns):
    st = ShardedDataStore(n_shards=N_SHARDS, executor=executor)
    st.ingest_packets(columns)
    return st


def test_perf_parallel_ingest(benchmark, executor, columns):
    def ingest():
        st = ShardedDataStore(n_shards=N_SHARDS,
                              metadata_extractor=MetadataExtractor(),
                              executor=executor)
        return st.ingest_packets(columns)

    count = benchmark(ingest)
    assert count == N_PACKETS


def test_perf_parallel_query(benchmark, store):
    query = Query(collection="packets", where={"dst_port": 53},
                  order_by_time=True)

    result = benchmark(lambda: store.query(query))
    assert len(result) == sum(1 for i in range(N_PACKETS) if i % 3 == 0)


def test_perf_parallel_featurize(benchmark, store, executor):
    featurizer = SourceWindowFeaturizer()

    dataset = benchmark(
        lambda: featurizer.from_store(store, executor=executor))
    assert len(dataset.X) > 0
