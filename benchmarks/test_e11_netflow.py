"""E11 (§5 vs §6 status quo): full capture vs sampled NetFlow.

What does "every packet ... with full payload, with no sampling"
actually buy over the 1:N sampled NetFlow campuses run today?  The
bench re-derives training data from the same day at sampling rates
1:1 .. 1:512 (payload discarded, counts re-inflated) and trains the
same detector per event class.  The reproduced shape: the volumetric
DNS amplification survives aggressive sampling (its signature is pure
volume), but the stealthier port-scan and SSH brute-force — a handful
of packets per flow — degrade and then vanish as sampling coarsens.
That asymmetry is precisely the case for lossless capture.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, attack_day
from repro.analysis import Table
from repro.baselines import sampled_dataset
from repro.learning import f1_score, train_test_split
from repro.learning.training import train_and_evaluate
from repro.netsim import make_campus

SAMPLING_RATES = [1, 8, 64, 512]
CLASS_NAMES = ["benign", "ddos-dns-amp", "port-scan", "ssh-bruteforce"]


def _captured_day(seed):
    net = make_campus("tiny", seed=seed, mean_flows_per_hour=400.0)
    packets = []
    net.add_packet_observer(lambda batch: packets.extend(batch))
    from repro.events.scenario import run_scenario

    ground_truth = run_scenario(
        net, attack_day(duration_s=240.0, attack_gbps=0.08,
                        include_scan=True), seed=seed)
    return packets, ground_truth


def _per_class_f1(dataset, seed):
    """Train one multiclass detector; report per-class F1 on holdout."""
    counts = dataset.class_counts()
    if len(dataset) < 20:
        return {name: 0.0 for name in CLASS_NAMES[1:]}
    train, test = train_test_split(dataset, test_fraction=0.35, seed=seed)
    result = train_and_evaluate("forest", train, test)
    model = result.model
    pred = model.predict(test.X)
    out = {}
    for name in CLASS_NAMES[1:]:
        index = dataset.class_names.index(name)
        if counts.get(name, 0) < 2:
            out[name] = 0.0
            continue
        out[name] = f1_score(test.y, pred, positive=index)
    return out


def test_e11_netflow_sampling_sweep(bench_platform, benchmark):
    packets, ground_truth = _captured_day(BENCH_SEED + 41)

    def sweep():
        rows = []
        for rate in SAMPLING_RATES:
            dataset = sampled_dataset(
                [p for p in packets], ground_truth, sampling_rate=rate,
                class_names=CLASS_NAMES, seed=BENCH_SEED)
            scores = _per_class_f1(dataset, BENCH_SEED)
            rows.append((f"netflow 1:{rate}", len(dataset),
                         scores["ddos-dns-amp"], scores["port-scan"],
                         scores["ssh-bruteforce"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table("E11 per-attack detection (F1) vs NetFlow sampling",
                  ["collection", "windows", "f1_ddos", "f1_scan",
                   "f1_bruteforce"])
    for row in rows:
        table.row(*row)
    table.print()

    by_rate = {r[0]: r for r in rows}
    # volumetric DDoS survives aggressive sampling
    assert by_rate["netflow 1:512"][2] >= 0.8
    # stealthy attacks are destroyed by coarse sampling
    assert by_rate["netflow 1:1"][3] > 0.6       # scan visible unsampled
    assert by_rate["netflow 1:512"][3] <= \
        by_rate["netflow 1:1"][3] - 0.3
    assert by_rate["netflow 1:512"][4] <= by_rate["netflow 1:1"][4]
