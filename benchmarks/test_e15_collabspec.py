"""E15 (§5, extension): minimal collection specs for collaboration.

"a campus network-based study may identify precisely-defined
problem-specific small subsets of data that are amenable for
continuous collection even in a large production network where a more
full-fledged data collection would be infeasible."

For each detection task learned on the full-fidelity campus store,
greedy backward elimination derives the smallest feature set (and its
collection tier: SNMP counters < per-flow state < payload/DPI) that
preserves holdout F1.  The reproduced shape: every task's 15-feature
full-capture model shrinks to a 1-2 feature spec with no quality loss
— and at these attack intensities all three specs land in the
*counter tier* an ISP already collects, which is exactly the
"precisely-defined small subset" hand-off the paper envisions.  (The
elimination prefers cheaper tiers on ties, so payload-tier features
only survive when nothing cheaper carries the signal — exercised in
``tests/learning/test_subset.py``.)
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import Table
from repro.learning.models import DecisionTreeClassifier
from repro.learning.subset import minimal_feature_subset

TASKS = ["ddos-dns-amp", "port-scan", "ssh-bruteforce"]


def test_e15_minimal_collection_specs(bench_dataset, benchmark):
    def run_all():
        specs = {}
        for task in TASKS:
            binary = bench_dataset.binarize(task)
            spec = minimal_feature_subset(
                lambda: DecisionTreeClassifier(max_depth=4,
                                               min_samples_leaf=3),
                binary, tolerance=0.02, seed=BENCH_SEED)
            specs[task] = spec
        return specs

    specs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("E15 minimal collection spec per task "
                  "(tolerance: F1 within 0.02 of full capture)",
                  ["task", "features_kept", "f1_full", "f1_subset",
                   "heaviest_tier", "full_capture_needed"])
    for task, spec in specs.items():
        table.row(task, len(spec.features), spec.metric_full,
                  spec.metric_subset, spec.tiers_required[-1],
                  spec.needs_full_capture)
    table.print()
    print()
    for task, spec in specs.items():
        print(f"--- {task} ---")
        print(spec.render())

    ddos = specs["ddos-dns-amp"]
    # the volumetric task collapses to a tiny counter-tier spec
    assert len(ddos.features) <= 3
    assert ddos.metric_subset >= ddos.metric_full - 0.02
    # every spec is much smaller than the full 15-feature capture
    assert all(len(s.features) <= 6 for s in specs.values())
    # quality preserved within tolerance everywhere
    assert all(s.metric_subset >= s.metric_full - 0.02
               for s in specs.values())
