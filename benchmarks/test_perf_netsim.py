"""Paired discrete-vs-fluid traffic engine benchmarks.

The fluid engine's reason to exist is wall-clock: population-level
aggregation plus tap-side columnar synthesis must beat the per-flow
discrete event engine by orders of magnitude at scale, or the
million-user story collapses back into the quadratic max-min recompute
it was built to escape.  Each scale gets a *paired* suite — the same
simulated duration through both engines with a border packet observer
attached — so ``BENCH_substrate.json`` records the comparison, and
``test_perf_netsim_fluid_speedup_10k`` turns the required ratio into a
hard assertion.

The discrete engine at 10k users costs ~10s of wall time per simulated
second (the cost being replaced), so its 10k entry is a single
``pedantic`` round over a short window rather than a multi-round
median; the recorded stats say ``rounds: 1`` and mean exactly what
they claim.
"""

import time

from repro.netsim.campus import make_fluid_campus
from repro.netsim.network import CampusNetwork
from repro.netsim.topology import TopologySpec, build_campus_topology

import pytest

SIM_SECONDS = 10.0          # simulated window per benchmark round
DISCRETE_SIM_10K = 2.0      # single-round window for the 10k discrete run
MIN_SPEEDUP_10K = 20.0      # acceptance floor, per simulated second

#: wall seconds per simulated second, recorded by the benchmark tests so
#: the speedup assertion can reuse their measurements instead of paying
#: for another discrete 10k run.
_TIMINGS = {}


def _discrete_spec(n_users):
    # departments x access x hosts == n_users exactly; wifi disabled so
    # the population size is the spec arithmetic, not spec arithmetic
    # plus access-point stragglers.
    per_access = 50
    departments = 4 if n_users <= 1_000 else 8
    access = n_users // (departments * per_access)
    return TopologySpec(
        name=f"bench-{n_users}", departments=departments,
        access_per_department=access, hosts_per_access=per_access,
        servers=4, wifi_aps=0, hosts_per_ap=0, internet_hosts=256,
    )


def _discrete_net(n_users):
    topo = build_campus_topology(_discrete_spec(n_users), seed=0)
    assert len(topo.hosts) == n_users
    net = CampusNetwork(topology=topo, seed=0)
    count = [0]
    net.add_packet_observer(lambda pkts: count.__setitem__(0, count[0] + len(pkts)))
    net.start_background_traffic()
    return net, count


def _fluid_engine(n_users):
    engine = make_fluid_campus("small", n_users=n_users, seed=0,
                               tick_seconds=SIM_SECONDS)
    count = [0]
    engine.add_packet_observer(
        lambda cols: count.__setitem__(0, count[0] + len(cols)))
    return engine, count


@pytest.fixture(scope="module")
def discrete_1k():
    return _discrete_net(1_000)


def test_perf_netsim_discrete_1k(benchmark, discrete_1k):
    net, count = discrete_1k

    def advance():
        wall = time.perf_counter()
        net.run_for(SIM_SECONDS)
        _TIMINGS["discrete_1k"] = \
            (time.perf_counter() - wall) / SIM_SECONDS

    benchmark(advance)
    assert count[0] > 0


def test_perf_netsim_fluid_1k(benchmark):
    engine, count = _fluid_engine(1_000)

    def advance():
        wall = time.perf_counter()
        engine.run(SIM_SECONDS)
        _TIMINGS["fluid_1k"] = (time.perf_counter() - wall) / SIM_SECONDS

    benchmark(advance)
    assert count[0] > 0


def test_perf_netsim_discrete_10k(benchmark):
    net, count = _discrete_net(10_000)

    def advance():
        wall = time.perf_counter()
        net.run_for(DISCRETE_SIM_10K)
        _TIMINGS["discrete_10k"] = \
            (time.perf_counter() - wall) / DISCRETE_SIM_10K

    # One round, deliberately: each simulated second costs ~10s of wall
    # time here, which is the number the fluid engine exists to replace.
    benchmark.pedantic(advance, rounds=1, iterations=1)
    assert count[0] > 0


def test_perf_netsim_fluid_10k(benchmark):
    engine, count = _fluid_engine(10_000)

    def advance():
        wall = time.perf_counter()
        engine.run(SIM_SECONDS)
        _TIMINGS["fluid_10k"] = (time.perf_counter() - wall) / SIM_SECONDS

    benchmark(advance)
    assert count[0] > 0


def test_perf_netsim_fluid_speedup_10k():
    """The acceptance floor: fluid >= 20x discrete at 10k users.

    Reuses the per-simulated-second timings the benchmark tests above
    recorded when the whole suite runs; measures its own (shorter)
    windows when invoked standalone.
    """
    discrete = _TIMINGS.get("discrete_10k")
    if discrete is None:
        net, _ = _discrete_net(10_000)
        wall = time.perf_counter()
        net.run_for(1.0)
        discrete = time.perf_counter() - wall
    fluid = _TIMINGS.get("fluid_10k")
    if fluid is None:
        engine, _ = _fluid_engine(10_000)
        engine.run(SIM_SECONDS)  # warm: cohort build amortizes out
        wall = time.perf_counter()
        engine.run(SIM_SECONDS)
        fluid = (time.perf_counter() - wall) / SIM_SECONDS
    speedup = discrete / fluid
    assert speedup >= MIN_SPEEDUP_10K, (
        f"fluid engine only {speedup:.1f}x faster than discrete at 10k "
        f"users ({discrete:.3f}s vs {fluid:.5f}s per simulated second); "
        f"acceptance floor is {MIN_SPEEDUP_10K:.0f}x")
