"""Query-planner performance benchmarks.

Three paired comparisons over one ~120k-packet store (4 sealed 30k
segments): selectivity-driven predicate reordering vs. declaration
order, stats-based segment pruning vs. zone-map-blind full masks, and
sketch-backed approximate counts vs. exact planned execution.  The
``*_unplanned``/``*_exact`` twins keep the baseline path honest in
``BENCH_substrate.json`` — the planner's win is the ratio between the
pair, and the 3x gate catches either side regressing.
"""

import pytest

from repro.datastore import DataStore, Query, within
from repro.netsim.packets import PacketRecord

N_PACKETS = 120_000
SEGMENT_CAPACITY = 30_000
#: dst_port 53 / protocol 17 match 1 row in 2000; everything else is
#: near-universal
RARE_EVERY = 2_000


def _packets():
    return [PacketRecord(
        timestamp=i * 0.001,
        src_ip=f"10.0.{(i // 64) % 8}.{i % 64}",
        dst_ip="10.9.0.1",
        src_port=40_000 + (i % 1000),
        dst_port=53 if i % RARE_EVERY == 0 else 80,
        protocol=17 if i % RARE_EVERY == 0 else 6,
        size=1400, payload_len=1372, flags=0, ttl=60, payload=b"",
        flow_id=i % 512, app="web", label="", direction="in",
    ) for i in range(N_PACKETS)]


def _build_store(with_stats: bool) -> DataStore:
    store = DataStore(segment_capacity=SEGMENT_CAPACITY)
    store.ingest_packets(_packets())
    for segment in store.segments("packets"):
        if not segment.sealed:
            segment.seal()
    if with_stats:
        store.build_stats()
    return store


@pytest.fixture(scope="module")
def planned_store() -> DataStore:
    return _build_store(with_stats=True)


@pytest.fixture(scope="module")
def unplanned_store() -> DataStore:
    return _build_store(with_stats=False)


#: declaration order is pessimal: the near-universal predicates come
#: first, the 0.05%-selective one last — exactly what stats reordering
#: plus gather evaluation fixes.
REORDER_QUERY = Query(
    collection="packets",
    where={"dst_ip": "10.9.0.1", "direction": "in", "app": "web",
           "protocol": 17, "dst_port": 53})
RARE_MATCHES = N_PACKETS // RARE_EVERY

#: dst_port 70 sits inside every segment's zone-map range [53, 80] but
#: occurs in no row: only the stats membership check can prune it, so
#: the unplanned twin pays a full mask over every segment.
PRUNE_QUERY = Query(collection="packets", where={"dst_port": 70})

#: counting a *common* value is where sketches pay off: the exact path
#: materializes ~120k matching rows, the stats path reads 4 counters.
COUNT_QUERY_APPROX = Query(collection="packets", where={"dst_port": 80},
                           approx=within(0.01))
COUNT_QUERY_EXACT = Query(collection="packets", where={"dst_port": 80})
COMMON_MATCHES = N_PACKETS - RARE_MATCHES


def test_perf_planner_reorder(benchmark, planned_store):
    result = benchmark(lambda: planned_store.query(REORDER_QUERY))
    assert len(result) == RARE_MATCHES


def test_perf_planner_reorder_unplanned(benchmark, unplanned_store):
    result = benchmark(lambda: unplanned_store.query(REORDER_QUERY))
    assert len(result) == RARE_MATCHES


def test_perf_planner_prune(benchmark, planned_store):
    result = benchmark(lambda: planned_store.query(PRUNE_QUERY))
    assert result == []


def test_perf_planner_prune_unplanned(benchmark, unplanned_store):
    result = benchmark(lambda: unplanned_store.query(PRUNE_QUERY))
    assert result == []


def test_perf_planner_approx(benchmark, planned_store):
    answer = benchmark(
        lambda: planned_store.count_matching(COUNT_QUERY_APPROX))
    assert answer.source == "sketch"
    assert answer.value == COMMON_MATCHES


def test_perf_planner_approx_exact(benchmark, planned_store):
    answer = benchmark(
        lambda: planned_store.count_matching(COUNT_QUERY_EXACT))
    assert answer.source == "exact"
    assert answer.value == COMMON_MATCHES
