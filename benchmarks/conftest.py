"""Shared benchmark fixtures.

Every experiment (E1-E15 + ablations, keyed in DESIGN.md) runs at
"bench scale":
a tiny campus and minutes of simulated time, enough for the *shape* of
each result to be stable across seeds.  The printed tables are the
artifacts EXPERIMENTS.md records.

Heavy shared artifacts (a collected attack day, a developed tool) are
session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CampusPlatform, DevelopmentLoop, PlatformConfig
from repro.events import (
    DnsAmplificationAttack,
    PortScanAttack,
    Scenario,
    SshBruteForceAttack,
)

BENCH_SEED = 1234


def attack_day(duration_s: float = 240.0, attack_gbps: float = 0.1,
               include_scan: bool = True) -> Scenario:
    """The standard evaluation day: background + DDoS (+ scan + brute)."""
    scenario = Scenario("bench-day", duration_s=duration_s)
    third = duration_s / 4.0
    scenario.add(DnsAmplificationAttack, third * 0.5, third * 0.6,
                 attack_gbps=attack_gbps, resolvers=10)
    if include_scan:
        scenario.add(PortScanAttack, third * 1.6, third * 0.5,
                     probes_per_s=40.0)
        scenario.add(SshBruteForceAttack, third * 2.7, third * 0.8,
                     attempts_per_s=4.0)
    return scenario


@pytest.fixture(scope="session")
def bench_platform():
    """A platform with one collected attack day."""
    platform = CampusPlatform(PlatformConfig(campus_profile="tiny",
                                             seed=BENCH_SEED))
    platform.collect(attack_day(), seed=BENCH_SEED)
    return platform


@pytest.fixture(scope="session")
def bench_dataset(bench_platform):
    return bench_platform.build_dataset()


@pytest.fixture(scope="session")
def ddos_dataset(bench_platform):
    return bench_platform.build_dataset().binarize("ddos-dns-amp")


@pytest.fixture(scope="session")
def bench_tool(ddos_dataset):
    """The developed (teacher->student->compiled) DDoS detector."""
    loop = DevelopmentLoop(teacher_name="forest", student_max_depth=4)
    tool, report = loop.develop(ddos_dataset, tool_name="amp-detector",
                                seed=BENCH_SEED)
    return tool, report
