"""E4 (§2 scale claim): concurrent tasks vs switch resources.

"while modern data plane technologies are critical for enabling the
real-time detection and mitigation of task-specific network events,
they are currently not capable of supporting this capability at scale;
i.e., executing hundreds or thousands of such tasks concurrently".

The bench compiles deployable classifiers of increasing size and packs
copies onto a Tofino-class resource model until a resource runs out.
The reproduced shape: tens-to-hundreds of small tasks fit; thousands
never do; the bottleneck is TCAM once trees get realistic.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.deploy import SwitchResourceModel, compile_tree
from repro.deploy.compiler import FeatureQuantizer
from repro.learning.models import DecisionTreeClassifier


def _compiled_classifier(depth: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = np.abs(rng.normal(size=(800, 8))) * [10, 1e4, 5, 1, 1, 100, 50, 1]
    y = ((X[:, 1] > np.median(X[:, 1])) ^ (X[:, 5] > np.median(X[:, 5]))
         ).astype(int)
    tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
    quantizer = FeatureQuantizer.for_features(X)
    return tree, compile_tree(tree, [f"f{i}" for i in range(8)], quantizer)


def test_e4_concurrent_task_scale(benchmark):
    model = SwitchResourceModel()

    def sweep():
        rows = []
        for depth in (2, 3, 4, 6, 8):
            tree, compiled = _compiled_classifier(depth)
            max_tasks = model.max_concurrent(compiled)
            report = model.fit([compiled])
            rows.append((depth, tree.n_leaves, compiled.n_entries,
                         compiled.tcam_entries, compiled.tcam_bits,
                         max_tasks,
                         model.fit([compiled] * (max_tasks + 1)).bottleneck))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table("E4 (§2) concurrent in-switch tasks vs model size "
                  "(Tofino-class: 12 stages, 6Mb TCAM)",
                  ["tree_depth", "leaves", "entries", "tcam_entries",
                   "tcam_bits", "max_concurrent_tasks", "bottleneck"])
    for row in rows:
        table.row(*row)
    table.print()

    max_by_depth = {r[0]: r[5] for r in rows}
    # small models: tens-to-hundreds concurrently; big models: a handful
    assert max_by_depth[2] >= 50
    assert max_by_depth[8] < max_by_depth[2]
    # the paper's point: "hundreds or thousands" is out of reach
    assert all(r[5] < 2000 for r in rows)
